"""Reproduction of "Humboldt: Metadata-Driven Extensible Data Discovery"
(Bäuerle, Demiralp, Stonebraker — VLDB 2024 TaDA workshop).

Humboldt generates interactive data-discovery UIs from a declarative
specification of metadata providers.  The quickest way in:

    from repro import WorkbookApp, study_catalog

    app = WorkbookApp(study_catalog())
    session = app.session("user-alex")
    session.open_home()
    result = session.search('type: table owned_by: "Alex" badged: endorsed')

Package layout:

* :mod:`repro.catalog` — the enterprise-catalog substrate;
* :mod:`repro.synth` — deterministic synthetic catalogs and workloads;
* :mod:`repro.metadata` — MinHash/LSH joinability, TF-IDF similarity,
  PCA embeddings;
* :mod:`repro.providers` — the metadata-provider framework and the
  built-in provider suite (Figure 2);
* :mod:`repro.core` — the paper's contribution: spec, ranking, query
  language, view generation, interface construction;
* :mod:`repro.workbook` — the headless host application;
* :mod:`repro.baselines` — hardcoded-UI and keyword-search baselines;
* :mod:`repro.study` — the simulated Section 7 user study.
"""

from repro.catalog import Artifact, ArtifactType, CatalogStore
from repro.core.interface import DiscoveryInterface
from repro.core.spec import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    SpecBuilder,
    Visibility,
    spec_from_json,
    spec_to_json,
    validate_spec,
)
from repro.providers import (
    BuiltinProviders,
    EndpointRegistry,
    ProviderRequest,
    ProviderResult,
    Representation,
    RequestContext,
    install_builtin_endpoints,
)
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog, study_catalog
from repro.workbook import Session, WorkbookApp

__version__ = "1.0.0"

__all__ = [
    "Artifact",
    "ArtifactType",
    "BuiltinProviders",
    "CatalogStore",
    "DiscoveryInterface",
    "EndpointRegistry",
    "HumboldtSpec",
    "ProviderRequest",
    "ProviderResult",
    "ProviderSpec",
    "RankingWeight",
    "Representation",
    "RequestContext",
    "Session",
    "SpecBuilder",
    "SynthConfig",
    "Visibility",
    "WorkbookApp",
    "__version__",
    "default_spec",
    "generate_catalog",
    "install_builtin_endpoints",
    "spec_from_json",
    "spec_to_json",
    "study_catalog",
    "validate_spec",
]
