"""Reproduction of "Humboldt: Metadata-Driven Extensible Data Discovery"
(Bäuerle, Demiralp, Stonebraker — VLDB 2024 TaDA workshop).

Humboldt generates interactive data-discovery UIs from a declarative
specification of metadata providers.  The quickest way in:

    from repro import WorkbookApp, study_catalog

    app = WorkbookApp(study_catalog())
    session = app.session("user-alex")
    session.open_home()
    result = session.search('type: table owned_by: "Alex" badged: endorsed')

Or, through the stable :class:`Discovery` facade (the single supported
entry point for single-catalog *and* federated deployments):

    with repro.Discovery.open(study_catalog()) as discovery:
        result = discovery.search("badged: endorsed")

**Public API.**  The names in ``__all__`` below are the supported
surface: entry points (``Discovery``, ``WorkbookApp``), the catalog
substrate (``CatalogStore``), federation (``FederatedCatalog``,
``CatalogRef``), the execution layer (``ExecutionEngine``,
``ExecutionPolicy``), query parsing/explaining (``parse_query``,
``explain``) and the spec/provider vocabulary.  Anything imported from
a deeper module is internal and may change without notice — internal
modules carry a "Stability: internal" note in their docstrings, and
``tests/test_public_api.py`` snapshots this surface.

Package layout:

* :mod:`repro.catalog` — the enterprise-catalog substrate;
* :mod:`repro.synth` — deterministic synthetic catalogs and workloads;
* :mod:`repro.metadata` — MinHash/LSH joinability, TF-IDF similarity,
  PCA embeddings;
* :mod:`repro.providers` — the metadata-provider framework and the
  built-in provider suite (Figure 2);
* :mod:`repro.core` — the paper's contribution: spec, ranking, query
  language, view generation, interface construction;
* :mod:`repro.workbook` — the headless host application;
* :mod:`repro.federation` — multi-catalog federation and the
  :class:`Discovery` facade;
* :mod:`repro.obs` — observability: request tracing (``Tracer``,
  span-tree rendering, exporters) and the label-aware metrics registry
  every serving layer reports into;
* :mod:`repro.baselines` — hardcoded-UI and keyword-search baselines;
* :mod:`repro.study` — the simulated Section 7 user study.
"""

from repro.catalog import Artifact, ArtifactType, CatalogStore
from repro.core.interface import DiscoveryInterface
from repro.core.query import parse_query
from repro.core.query.nlq import explain
from repro.federation import (
    CatalogRef,
    Discovery,
    FederatedCatalog,
    FederatedSearchResult,
)
from repro.core.spec import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    SpecBuilder,
    Visibility,
    spec_from_json,
    spec_to_json,
    validate_spec,
)
from repro.obs import (
    JsonlExporter,
    MetricsRegistry,
    RingBufferExporter,
    Tracer,
    default_registry,
    render_span_tree,
)
from repro.providers import (
    BuiltinProviders,
    EndpointRegistry,
    ProviderRequest,
    ProviderResult,
    Representation,
    RequestContext,
    install_builtin_endpoints,
)
from repro.providers.execution import ExecutionEngine, ExecutionPolicy
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog, study_catalog
from repro.workbook import Session, WorkbookApp

__version__ = "1.0.0"

__all__ = [
    "Artifact",
    "ArtifactType",
    "BuiltinProviders",
    "CatalogRef",
    "CatalogStore",
    "Discovery",
    "DiscoveryInterface",
    "EndpointRegistry",
    "ExecutionEngine",
    "ExecutionPolicy",
    "FederatedCatalog",
    "FederatedSearchResult",
    "HumboldtSpec",
    "JsonlExporter",
    "MetricsRegistry",
    "ProviderRequest",
    "ProviderResult",
    "ProviderSpec",
    "RankingWeight",
    "Representation",
    "RequestContext",
    "RingBufferExporter",
    "Session",
    "SpecBuilder",
    "SynthConfig",
    "Tracer",
    "Visibility",
    "WorkbookApp",
    "__version__",
    "default_registry",
    "default_spec",
    "explain",
    "generate_catalog",
    "install_builtin_endpoints",
    "parse_query",
    "render_span_tree",
    "spec_from_json",
    "spec_to_json",
    "study_catalog",
    "validate_spec",
]
