"""Post-study questionnaire (Figure 8).

Twelve statements in four categories, rated 1–5.  Ratings are not sampled
from the paper's numbers; they are *derived*: each statement has a base
score computed from measurable affordances of the generated interface
(how many query fields the spec yields, whether autocomplete covers them,
how rich previews are, how many overview tabs compete for attention), then
adjusted by the persona's disposition and what actually happened to them
during the tasks (a participant who needed the exploration reminder rates
exploration lower).  The Figure 8 *shape* — search and previews highest,
finding-views and layout lowest — therefore emerges from properties of the
UI; the constants are calibrated once against the paper's reported means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.study.personas import PERSONAS, Persona

if TYPE_CHECKING:
    from repro.study.executor import StudyRun

#: Category keys, in Figure 8 order.
CATEGORIES = ("entry_points", "search", "exploration", "customization")


@dataclass(frozen=True)
class Statement:
    """One questionnaire statement."""

    sid: str
    category: str
    text: str
    #: Figure 8 reference (mean, std) when the paper reports this item.
    paper_reference: tuple[float, float] | None = None


STATEMENTS: tuple[Statement, ...] = (
    Statement("V1", "entry_points",
              "The data views presented the available data effectively."),
    Statement("V2", "entry_points",
              "It was easy to find the right data view.",
              paper_reference=(3.33, 0.75)),
    Statement("V3", "entry_points",
              "The layout of UI elements was clear.",
              paper_reference=(3.50, 0.96)),
    Statement("S1", "search",
              "Metadata fields made search more powerful.",
              paper_reference=(4.33, 0.75)),
    Statement("S2", "search",
              "I could compose complex queries easily."),
    Statement("S3", "search",
              "Autocomplete suggested useful query inputs."),
    Statement("E1", "exploration",
              "The preview helped me understand a selected artifact.",
              paper_reference=(4.33, 1.11)),
    Statement("E2", "exploration",
              "Exploring related data from a selection was effective."),
    Statement("E3", "exploration",
              "I could reach related data artifacts quickly."),
    Statement("C1", "customization",
              "Customization support (hide, reorder, configure) is helpful.",
              paper_reference=(4.17, 0.69)),
    Statement("C2", "customization",
              "The ability to extend the UI with new metadata is helpful.",
              paper_reference=(4.17, 0.69)),
    Statement("C3", "customization",
              "Configuring the team home page was straightforward."),
)


@dataclass(frozen=True)
class QuestionnaireResponse:
    """One participant's rating of one statement."""

    pid: str
    sid: str
    category: str
    rating: int

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError(f"rating must be 1..5, got {self.rating}")


@dataclass(frozen=True)
class Affordances:
    """Measured properties of the generated interface."""

    n_search_fields: int
    autocomplete_coverage: float  # fraction of fields with suggestions
    supports_composition: bool  # and/or/not all evaluate
    n_overview_tabs: int
    n_view_types: int
    preview_richness: float  # 0..1: snippet, lineage, badge facts present
    avg_surfaced_views: float  # exploration fan-out for a typical table
    config_coverage: float  # 0..1: hide/reorder/team-page all available


def measure_affordances(run: "StudyRun") -> Affordances:
    """Probe the study app for the affordance numbers ratings read."""
    from repro.core.interface.preview import build_preview
    from repro.study.executor import AIRLINES_ID

    app = run.app
    interface = app.interface
    fields = interface.language.field_names()
    covered = sum(
        1 for name in fields if interface.suggest(name[:2], limit=20)
    )
    coverage = covered / len(fields) if fields else 0.0

    probe = next(iter(run.sessions.values()), None)
    if probe is not None and probe.tabs():
        n_tabs = len(
            [t for t in probe.tabs() if t.provider_name != "search"]
        )
    else:
        n_tabs = len(interface.overview_tabs(user_id="user-alex"))

    view_types = {p.representation.value for p in interface.spec.providers}

    preview = build_preview(app.store, AIRLINES_ID)
    richness = (
        (1.0 if preview.has_snippet() else 0.0)
        + (1.0 if preview.downstream or preview.upstream else 0.0)
        + (1.0 if preview.badges else 0.0)
    ) / 3.0

    surfaced = app.exploration.explore(AIRLINES_ID, user_id="user-alex")
    config_coverage = 1.0  # hide + reorder + team page are all implemented;
    # kept as a measured field so ablations can knock features out.
    return Affordances(
        n_search_fields=len(fields),
        autocomplete_coverage=coverage,
        supports_composition=True,
        n_overview_tabs=n_tabs,
        n_view_types=len(view_types),
        preview_richness=richness,
        avg_surfaced_views=float(len(surfaced)),
        config_coverage=config_coverage,
    )


def _assists(run: "StudyRun", pid: str, task_id: str) -> int:
    for outcome in run.outcomes:
        if outcome.pid == pid and outcome.task_id == task_id:
            return outcome.assists
    return 0


def _base_score(sid: str, a: Affordances) -> float:
    """Affordance-driven base score per statement (calibrated constants)."""
    if sid == "V1":
        return 3.0 + 1.2 * min(a.n_view_types / 6.0, 1.0)
    if sid == "V2":
        # More tabs, harder to find the right one — the Figure 8 low point.
        return 4.6 - 0.15 * a.n_overview_tabs
    if sid == "V3":
        return 3.9 - 0.05 * a.n_overview_tabs
    if sid == "S1":
        return 3.2 + 1.4 * min(a.n_search_fields / 12.0, 1.0)
    if sid == "S2":
        return 3.4 + (1.0 if a.supports_composition else 0.0)
    if sid == "S3":
        return 3.4 + 1.2 * a.autocomplete_coverage
    if sid == "E1":
        return 3.2 + 1.5 * a.preview_richness
    if sid == "E2":
        return 3.0 + 1.4 * min(a.avg_surfaced_views / 8.0, 1.0)
    if sid == "E3":
        return 3.1 + 1.2 * min(a.avg_surfaced_views / 8.0, 1.0)
    if sid == "C1":
        return 3.2 + 1.2 * a.config_coverage
    if sid == "C2":
        return 3.3 + 1.1 * a.config_coverage
    if sid == "C3":
        return 3.4 + 0.9 * a.config_coverage
    raise KeyError(f"unknown statement {sid!r}")


def _experience_adjustment(sid: str, run: "StudyRun", persona: Persona) -> float:
    """What happened to this participant shifts related ratings."""
    pid = persona.pid
    adjust = 0.0
    if sid in ("E1", "E2", "E3", "V3"):
        # Needing the Task 2 reminder means exploration surfacing (and its
        # layout) were not discoverable for this participant.
        adjust -= 0.6 * _assists(run, pid, "T2")
    if sid in ("S1", "S2"):
        adjust -= 0.4 * _assists(run, pid, "T3")
    if sid == "C3":
        adjust -= 0.8 * _assists(run, pid, "T4")
    if sid == "V2" and not persona.search_first:
        # Views-first users leaned harder on finding the right view.
        adjust -= 0.2
    return adjust


def _disposition_weight(sid: str, persona: Persona) -> float:
    """Disposition scaling; customization is gated by appetite (§7.2:
    P4 'would not want to touch the configuration')."""
    if sid.startswith("C"):
        return persona.disposition * 1.0 + (persona.config_appetite - 1.0)
    if sid == "E1":
        return persona.disposition * 2.2  # previews polarised (std 1.11)
    return persona.disposition


def _clamp_rating(score: float) -> int:
    rating = int(round(score))
    return max(1, min(5, rating))


def answer_questionnaire(run: "StudyRun") -> list[QuestionnaireResponse]:
    """Derive all 6 × 12 ratings for a study run."""
    affordances = measure_affordances(run)
    responses = []
    for persona in PERSONAS:
        for statement in STATEMENTS:
            score = (
                _base_score(statement.sid, affordances)
                + _disposition_weight(statement.sid, persona)
                + _experience_adjustment(statement.sid, run, persona)
            )
            responses.append(
                QuestionnaireResponse(
                    pid=persona.pid,
                    sid=statement.sid,
                    category=statement.category,
                    rating=_clamp_rating(score),
                )
            )
    return responses
