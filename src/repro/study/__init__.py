"""Simulated first-use study (Section 7).

The paper evaluates the generated UI with six sales engineers performing
four tasks and a 12-statement questionnaire.  We cannot recruit those
people; we simulate them.  Personas encode the behavioural traits the
paper reports (search-first vs. views-first starters, who needed which
reminder), the executor drives the *actual generated interface* through
the same session API a human front-end would call, and the questionnaire
model derives Likert ratings from measured UI affordances plus each
persona's study experience.  E1 reproduces the §7.2 task-outcome counts;
E2 reproduces the Figure 8 category statistics.
"""

from repro.study.executor import StudyRun, TaskExecutor, TaskOutcome, run_study
from repro.study.personas import PERSONAS, Persona
from repro.study.questionnaire import (
    CATEGORIES,
    STATEMENTS,
    QuestionnaireResponse,
    Statement,
    answer_questionnaire,
)
from repro.study.stats import CategoryStats, LikertStats, category_stats, likert_stats
from repro.study.tasks import TASKS, Task

__all__ = [
    "CATEGORIES",
    "CategoryStats",
    "LikertStats",
    "PERSONAS",
    "Persona",
    "QuestionnaireResponse",
    "STATEMENTS",
    "Statement",
    "StudyRun",
    "TASKS",
    "Task",
    "TaskExecutor",
    "TaskOutcome",
    "answer_questionnaire",
    "category_stats",
    "likert_stats",
    "run_study",
]
