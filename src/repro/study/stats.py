"""Likert statistics for questionnaire responses.

Figure 8 reports, per item and category, the mean and standard deviation
of the 5-point ratings plus the percentage of positive (≥4) and negative
(≤2) answers; these helpers compute the same quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.study.questionnaire import QuestionnaireResponse

#: Likert thresholds used by the diverging bars in Figure 8.
POSITIVE_MIN = 4
NEGATIVE_MAX = 2


@dataclass(frozen=True)
class LikertStats:
    """Summary of a set of 1–5 ratings."""

    n: int
    mean: float
    std: float
    percent_positive: float
    percent_negative: float
    percent_neutral: float


def likert_stats(ratings: list[int]) -> LikertStats:
    """Mean/std (population, as in the paper) and pos/neg/neutral shares."""
    if not ratings:
        return LikertStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    for rating in ratings:
        if not 1 <= rating <= 5:
            raise ValueError(f"rating out of range: {rating}")
    n = len(ratings)
    mean = sum(ratings) / n
    variance = sum((r - mean) ** 2 for r in ratings) / n
    positive = sum(1 for r in ratings if r >= POSITIVE_MIN)
    negative = sum(1 for r in ratings if r <= NEGATIVE_MAX)
    neutral = n - positive - negative
    return LikertStats(
        n=n,
        mean=round(mean, 2),
        std=round(math.sqrt(variance), 2),
        percent_positive=round(100.0 * positive / n, 1),
        percent_negative=round(100.0 * negative / n, 1),
        percent_neutral=round(100.0 * neutral / n, 1),
    )


@dataclass(frozen=True)
class CategoryStats:
    """Per-category and overall questionnaire statistics."""

    by_statement: dict[str, LikertStats]
    by_category: dict[str, LikertStats]
    overall: LikertStats


def statement_stats(
    responses: list[QuestionnaireResponse],
) -> dict[str, LikertStats]:
    ratings: dict[str, list[int]] = {}
    for response in responses:
        ratings.setdefault(response.sid, []).append(response.rating)
    return {sid: likert_stats(values) for sid, values in sorted(ratings.items())}


def category_stats(responses: list[QuestionnaireResponse]) -> CategoryStats:
    """Aggregate responses per statement, per category and overall."""
    by_category_ratings: dict[str, list[int]] = {}
    all_ratings: list[int] = []
    for response in responses:
        by_category_ratings.setdefault(response.category, []).append(
            response.rating
        )
        all_ratings.append(response.rating)
    return CategoryStats(
        by_statement=statement_stats(responses),
        by_category={
            category: likert_stats(values)
            for category, values in sorted(by_category_ratings.items())
        },
        overall=likert_stats(all_ratings),
    )
