"""Study report printing: paper-vs-measured tables for E1 and E2."""

from __future__ import annotations

from repro.study.executor import StudyRun
from repro.study.questionnaire import STATEMENTS, answer_questionnaire
from repro.study.stats import category_stats

#: Section 7.2 reference counts: (completed, assisted participants) of 6,
#: plus the Task 1 strategy split.
PAPER_TASK_RESULTS = {
    "T1": {"completed": 6, "assisted": 0},
    "T2": {"completed": 6, "assisted": 3},
    "T3": {"completed": 6, "assisted": 3},
    "T4": {"completed": 6, "assisted": 2},
}
PAPER_T1_SEARCH_FIRST = 3

#: Figure 8 reference: overall mean/std across all ratings.
PAPER_OVERALL = (3.97, 0.85)


def task_outcome_table(run: StudyRun) -> str:
    """E1: per-task completion/assists, paper vs. measured."""
    lines = [
        "E1 — Task outcomes (Section 7.2)",
        f"{'task':<6}{'completed':>18}{'assisted':>22}",
        f"{'':<6}{'paper':>9}{'ours':>9}{'paper':>11}{'ours':>11}",
    ]
    for task_id in ("T1", "T2", "T3", "T4"):
        outcomes = run.outcomes_for(task_id)
        completed = sum(o.completed for o in outcomes)
        assisted = run.assisted_participants(task_id)
        reference = PAPER_TASK_RESULTS[task_id]
        lines.append(
            f"{task_id:<6}{reference['completed']:>9}{completed:>9}"
            f"{reference['assisted']:>11}{assisted:>11}"
        )
    split = run.strategy_split("T1")
    lines.append(
        f"T1 strategy split: paper {PAPER_T1_SEARCH_FIRST} search-first / "
        f"{6 - PAPER_T1_SEARCH_FIRST} views-first; "
        f"ours {split.get('search-first', 0)} search-first / "
        f"{split.get('views-first', 0)} views-first"
    )
    return "\n".join(lines)


def questionnaire_table(run: StudyRun) -> str:
    """E2: Figure 8 per-statement and overall stats, paper vs. measured."""
    responses = answer_questionnaire(run)
    stats = category_stats(responses)
    lines = [
        "E2 — Post-study questionnaire (Figure 8)",
        f"{'stmt':<5}{'category':<14}{'mean':>6}{'std':>6}"
        f"{'pos%':>7}{'neg%':>7}{'paper mean':>12}{'paper std':>11}",
    ]
    for statement in STATEMENTS:
        stat = stats.by_statement[statement.sid]
        if statement.paper_reference:
            ref_mean, ref_std = statement.paper_reference
            reference = f"{ref_mean:>12.2f}{ref_std:>11.2f}"
        else:
            reference = f"{'—':>12}{'—':>11}"
        lines.append(
            f"{statement.sid:<5}{statement.category:<14}"
            f"{stat.mean:>6.2f}{stat.std:>6.2f}"
            f"{stat.percent_positive:>7.1f}{stat.percent_negative:>7.1f}"
            f"{reference}"
        )
    lines.append("-" * 68)
    for category, stat in stats.by_category.items():
        lines.append(
            f"{'':<5}{category:<14}{stat.mean:>6.2f}{stat.std:>6.2f}"
            f"{stat.percent_positive:>7.1f}{stat.percent_negative:>7.1f}"
        )
    overall = stats.overall
    lines.append(
        f"overall: mean {overall.mean:.2f} std {overall.std:.2f} "
        f"(paper: mean {PAPER_OVERALL[0]:.2f} std {PAPER_OVERALL[1]:.2f})"
    )
    return "\n".join(lines)


def figure8_chart(run: StudyRun, width: int = 30) -> str:
    """ASCII rendition of Figure 8's diverging bars.

    Each statement gets a bar centred on the neutral column: negative
    ratings (≤2) extend left, positive ratings (≥4) right, with the mean
    and std printed alongside — the same encoding as the paper's figure.
    """
    responses = answer_questionnaire(run)
    stats = category_stats(responses)
    half = width // 2
    lines = [
        "Figure 8 — questionnaire responses "
        "(◄ negative | neutral | positive ►)",
        f"{'stmt':<5}{'':{half}}|{'':{half}} {'mean':>5} {'std':>5}",
    ]
    for statement in STATEMENTS:
        stat = stats.by_statement[statement.sid]
        neg = int(round(stat.percent_negative / 100 * half))
        pos = int(round(stat.percent_positive / 100 * half))
        left = ("░" * neg).rjust(half)
        right = ("█" * pos).ljust(half)
        lines.append(
            f"{statement.sid:<5}{left}|{right} {stat.mean:>5.2f} "
            f"{stat.std:>5.2f}"
        )
    overall = stats.overall
    lines.append(
        f"{'all':<5}{'':{half}}|{'':{half}} {overall.mean:>5.2f} "
        f"{overall.std:>5.2f}"
    )
    return "\n".join(lines)


def strategy_effort_table(run: StudyRun) -> str:
    """UI actions spent on Task 1 by strategy — an instrumentation-only
    measurement the paper could not report (it had no event logs)."""
    per_strategy: dict[str, list[int]] = {}
    for outcome in run.outcomes_for("T1"):
        session = run.sessions[outcome.pid]
        searches = session.events.count("search")
        tabs = session.events.count("tab_selected")
        suggestions = session.events.count("suggestions_shown")
        actions = searches + tabs + suggestions
        per_strategy.setdefault(outcome.strategy, []).append(actions)
    lines = [f"{'T1 strategy':<15}{'participants':>13}"
             f"{'avg UI actions (whole session)':>32}"]
    for strategy, counts in sorted(per_strategy.items()):
        average = sum(counts) / len(counts)
        lines.append(f"{strategy:<15}{len(counts):>13}{average:>32.1f}")
    return "\n".join(lines)


def full_report(run: StudyRun) -> str:
    return "\n\n".join([
        task_outcome_table(run),
        strategy_effort_table(run),
        questionnaire_table(run),
        figure8_chart(run),
    ])
