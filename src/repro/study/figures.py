"""Figure rendering for the study results.

:func:`figure8_svg` regenerates Figure 8 as a standalone SVG: one row per
statement with a diverging stacked bar (negative left, neutral centre,
positive right) on the top axis and a mean±std dot-and-whisker on the
bottom axis — the same dual encoding the paper uses.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING

from repro.study.questionnaire import STATEMENTS, answer_questionnaire
from repro.study.stats import category_stats

if TYPE_CHECKING:
    from repro.study.executor import StudyRun

_ROW_H = 26
_BAR_H = 14
_LEFT = 160
_BAR_W = 280
_DOT_W = 170
_GAP = 40

_COLORS = {
    "negative": "#dc7633",
    "neutral": "#d5d8dc",
    "positive": "#2e86c1",
    "dot": "#1b2631",
}


def figure8_svg(run: "StudyRun") -> str:
    """Render the Figure 8 chart for *run* as an SVG document."""
    responses = answer_questionnaire(run)
    stats = category_stats(responses)

    rows = list(STATEMENTS)
    height = _ROW_H * (len(rows) + 3)
    width = _LEFT + _BAR_W + _GAP + _DOT_W + 20
    centre = _LEFT + _BAR_W / 2

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{_LEFT}" y="14" font-weight="bold">'
        f"% responses (◄ negative / positive ►)</text>",
        f'<text x="{_LEFT + _BAR_W + _GAP}" y="14" font-weight="bold">'
        f"mean ± std (1–5)</text>",
    ]

    for index, statement in enumerate(rows):
        stat = stats.by_statement[statement.sid]
        y = _ROW_H * (index + 1) + 10
        label = f"{statement.sid} · {statement.category}"
        parts.append(
            f'<text x="4" y="{y + _BAR_H - 3}">{html.escape(label)}</text>'
        )
        # diverging bar around the centre line
        neg_w = stat.percent_negative / 100 * (_BAR_W / 2)
        pos_w = stat.percent_positive / 100 * (_BAR_W / 2)
        parts.append(
            f'<rect x="{centre - neg_w:.1f}" y="{y}" width="{neg_w:.1f}" '
            f'height="{_BAR_H}" fill="{_COLORS["negative"]}"/>'
        )
        parts.append(
            f'<rect x="{centre:.1f}" y="{y}" width="{pos_w:.1f}" '
            f'height="{_BAR_H}" fill="{_COLORS["positive"]}"/>'
        )
        parts.append(
            f'<line x1="{centre}" y1="{y - 2}" x2="{centre}" '
            f'y2="{y + _BAR_H + 2}" stroke="#888" stroke-width="1"/>'
        )
        # mean ± std dot-and-whisker on a 1..5 axis
        axis_x = _LEFT + _BAR_W + _GAP
        scale = _DOT_W / 4.0  # likert span 1..5

        def to_x(value: float) -> float:
            return axis_x + (min(max(value, 1.0), 5.0) - 1.0) * scale

        whisker_y = y + _BAR_H / 2
        parts.append(
            f'<line x1="{to_x(stat.mean - stat.std):.1f}" y1="{whisker_y}" '
            f'x2="{to_x(stat.mean + stat.std):.1f}" y2="{whisker_y}" '
            f'stroke="{_COLORS["dot"]}" stroke-width="2"/>'
        )
        parts.append(
            f'<circle cx="{to_x(stat.mean):.1f}" cy="{whisker_y}" r="4" '
            f'fill="{_COLORS["dot"]}"/>'
        )
        parts.append(
            f'<text x="{axis_x + _DOT_W + 6}" y="{whisker_y + 4}">'
            f"{stat.mean:.2f}±{stat.std:.2f}</text>"
        )

    overall = stats.overall
    footer_y = _ROW_H * (len(rows) + 2)
    parts.append(
        f'<text x="4" y="{footer_y}" font-weight="bold">overall: '
        f"{overall.mean:.2f} ± {overall.std:.2f} "
        f"(paper: 3.97 ± 0.85)</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def save_figure8(run: "StudyRun", path) -> None:
    """Write the Figure 8 SVG to *path*."""
    from pathlib import Path

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(figure8_svg(run), encoding="utf-8")
