"""The four study tasks (Section 7.1), verbatim."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    """One study task."""

    task_id: str
    prompt: str  # the instruction given to participants, from the paper
    aspect: str  # the design goal it probes


TASKS: tuple[Task, ...] = (
    Task(
        task_id="T1",
        prompt="Find table AIRLINES, which has the endorsed tag.",
        aspect="expressivity: metadata-based overviews as entry points",
    ),
    Task(
        task_id="T2",
        prompt="Find other elements that are similar to the table "
               "w.r.t. type or badge.",
        aspect="composability: exploratory discovery from a selection",
    ),
    Task(
        task_id="T3",
        prompt="Find all workbooks created by user John Doe.",
        aspect="composability: metadata-composed search and filtering",
    ),
    Task(
        task_id="T4",
        prompt="Assume you are the administrator of A Team in your "
               "organization and set the team's home page to your "
               "preferred content.",
        aspect="configurability: team-level reconfiguration",
    ),
)


def task_by_id(task_id: str) -> Task:
    for task in TASKS:
        if task.task_id == task_id:
            return task
    raise KeyError(f"unknown task {task_id!r}")
