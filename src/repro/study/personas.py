"""Study personas.

Six simulated participants (P1–P6) matching the behavioural facts Section
7.2 reports:

* Task 1: three "jump-started with the keyword search", three "directly
  started from data discovery views";
* Task 2: three had to be reminded that views populate on selection;
* Task 3: half missed the first condition (did not filter to workbooks);
* Task 4: two needed help finding the team configuration setting.

Each trait is a persona flag the executor consults, so the aggregate
counts are reproduced *by construction of who the participants are*, while
task success itself still depends on the interface actually working.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Persona:
    """One simulated participant."""

    pid: str  # "P1".."P6"
    name: str
    #: preferred entry point for directed search (Task 1)
    search_first: bool
    #: knows that selecting an artifact populates exploration views (Task 2)
    explore_aware: bool
    #: includes every query condition on the first try (Task 3)
    thorough_query: bool
    #: finds the team-configuration surface unaided (Task 4)
    config_familiar: bool
    #: general disposition added to Likert ratings (-1.0 .. +1.0);
    #: sceptics exist in every study.
    disposition: float = 0.0
    #: how much the participant values configurability (§7.2: one would
    #: "not want to touch the configuration")
    config_appetite: float = 1.0


#: The six study participants.  Flag totals match §7.2: 3 search-first,
#: 3 needing the exploration reminder, 3 missing the first condition,
#: 2 needing configuration help.
PERSONAS: tuple[Persona, ...] = (
    Persona(
        pid="P1", name="Sasha", search_first=True, explore_aware=True,
        thorough_query=True, config_familiar=True, disposition=0.3,
    ),
    Persona(
        pid="P2", name="Jordan", search_first=False, explore_aware=False,
        thorough_query=True, config_familiar=False, disposition=0.0,
    ),
    Persona(
        pid="P3", name="Robin", search_first=True, explore_aware=True,
        thorough_query=False, config_familiar=True, disposition=0.2,
    ),
    Persona(
        pid="P4", name="Alexis", search_first=True, explore_aware=False,
        thorough_query=False, config_familiar=True, disposition=-0.4,
        config_appetite=0.3,
    ),
    Persona(
        pid="P5", name="Casey", search_first=False, explore_aware=True,
        thorough_query=False, config_familiar=False, disposition=0.1,
    ),
    Persona(
        pid="P6", name="Morgan", search_first=False, explore_aware=False,
        thorough_query=True, config_familiar=True, disposition=0.4,
    ),
)


def persona_by_id(pid: str) -> Persona:
    for persona in PERSONAS:
        if persona.pid == pid:
            return persona
    raise KeyError(f"unknown persona {pid!r}")
