"""Task execution: simulated participants driving the real interface.

Every step goes through the public :class:`~repro.workbook.session.Session`
API — opening tabs, typing queries (with autocomplete), selecting
artifacts, switching roles, configuring home pages.  Nothing is stubbed:
if the generated UI cannot complete a task, the outcome records a failure,
so E1 is a genuine end-to-end check of the interface, not a scripted
success.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.model import ArtifactType, Team, User
from repro.errors import ProviderError, StudyError
from repro.study.personas import PERSONAS, Persona
from repro.study.tasks import TASKS
from repro.synth.generator import study_catalog
from repro.workbook.app import WorkbookApp
from repro.workbook.session import Session

#: The target artifacts the tasks revolve around (from the study catalog).
AIRLINES_ID = "table-airlines"
JOHN_DOE_NAME = "John Doe"


@dataclass(frozen=True)
class TaskOutcome:
    """One participant's result on one task."""

    task_id: str
    pid: str
    completed: bool
    assists: int
    strategy: str = ""
    detail: str = ""


@dataclass
class StudyRun:
    """Everything a full study run produced."""

    app: WorkbookApp
    outcomes: list[TaskOutcome] = field(default_factory=list)
    sessions: dict[str, Session] = field(default_factory=dict)

    def outcomes_for(self, task_id: str) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.task_id == task_id]

    def completion_rate(self, task_id: str) -> float:
        outcomes = self.outcomes_for(task_id)
        if not outcomes:
            return 0.0
        return sum(o.completed for o in outcomes) / len(outcomes)

    def assist_count(self, task_id: str) -> int:
        return sum(o.assists for o in self.outcomes_for(task_id))

    def assisted_participants(self, task_id: str) -> int:
        return sum(1 for o in self.outcomes_for(task_id) if o.assists > 0)

    def strategy_split(self, task_id: str) -> dict[str, int]:
        split: dict[str, int] = {}
        for outcome in self.outcomes_for(task_id):
            if outcome.strategy:
                split[outcome.strategy] = split.get(outcome.strategy, 0) + 1
        return split


class TaskExecutor:
    """Runs the four §7.1 tasks for one persona on one session."""

    def __init__(self, app: WorkbookApp, persona: Persona, team_id: str):
        self.app = app
        self.persona = persona
        self.team_id = team_id
        user_id = f"user-{persona.pid.lower()}"
        self.session = app.session(user_id, team_id=team_id)

    # -- protocol ---------------------------------------------------------

    def run_all(self) -> list[TaskOutcome]:
        return [self.task1(), self.task2(), self.task3(), self.task4()]

    def _assist(self, detail: str) -> None:
        """The experimenter intervenes (a §7.2 'reminder')."""
        self.session.events.record("assist", detail=detail)

    # -- Task 1: find AIRLINES with the endorsed tag -----------------------------

    def task1(self) -> TaskOutcome:
        persona, session = self.persona, self.session
        session.open_home()
        if persona.search_first:
            # "Three participants jump-started with the keyword search and
            # later discovered the metadata-based views to complete the
            # task."  Simulated: a plain keyword attempt first, then the
            # Badges overview.
            session.suggest("badge")
            session.search("AIRLINES")
            strategy = "search-first"
        else:
            strategy = "views-first"
        found = self._find_via_badges_view()
        if not found and persona.search_first:
            # Fall back to the metadata query the search path enables.  A
            # provider outage shows the participant an error; the attempt
            # simply fails rather than aborting the study session.
            try:
                result = session.search("badged: endorsed AIRLINES")
            except ProviderError:
                result = None
            found = (result is not None
                     and AIRLINES_ID in result.artifact_ids())
            if found:
                session.select_artifact(AIRLINES_ID)
        completed = session.selection == AIRLINES_ID
        return TaskOutcome(
            task_id="T1",
            pid=persona.pid,
            completed=completed,
            assists=0,
            strategy=strategy,
            detail="located AIRLINES via the endorsed badge"
            if completed
            else "could not locate AIRLINES",
        )

    def _find_via_badges_view(self) -> bool:
        """Use the Badges categories overview to reach AIRLINES."""
        session = self.session
        try:
            tab = session.select_tab("badges")
        except KeyError:
            # The team home page may not carry the Badges view; browse the
            # full overview strip instead.
            session.open_browse()
            try:
                tab = session.select_tab("badges")
            except KeyError:
                return False
        view = tab.view
        group = getattr(view, "group", None)
        endorsed = group("endorsed") if group else None
        if endorsed is None or AIRLINES_ID not in endorsed.all_ids:
            return False
        session.select_artifact(AIRLINES_ID)
        return True

    # -- Task 2: similar elements w.r.t. type or badge ------------------------------

    def task2(self) -> TaskOutcome:
        persona, session = self.persona, self.session
        assists = 0
        if session.selection != AIRLINES_ID:
            session.select_artifact(AIRLINES_ID)
        if not persona.explore_aware:
            # "We reminded three participants that new data discovery views
            # might be populated on selecting a data artifact."
            self._assist(
                "reminded that views populate on selecting a data artifact"
            )
            assists = 1
        surfaced = session.explore_selection()
        by_type = [
            s for s in surfaced
            if s.inputs.get("artifact_type") == "table" and s.view.count() > 0
        ]
        by_badge = [
            s for s in surfaced
            if s.inputs.get("badge") == "endorsed" and s.view.count() > 0
        ]
        completed = bool(by_type or by_badge)
        found = sorted(
            {
                aid
                for s in by_type + by_badge
                for aid in s.view.artifact_ids()
                if aid != AIRLINES_ID
            }
        )
        return TaskOutcome(
            task_id="T2",
            pid=persona.pid,
            completed=completed,
            assists=assists,
            detail=f"found {len(found)} similar elements via "
                   f"{'type' if by_type else ''}"
                   f"{'+' if by_type and by_badge else ''}"
                   f"{'badge' if by_badge else ''}",
        )

    # -- Task 3: all workbooks created by John Doe ---------------------------------

    def task3(self) -> TaskOutcome:
        persona, session = self.persona, self.session
        store = self.app.store
        expected = {
            aid
            for aid in store.by_owner("user-john")
            if store.artifact(aid).artifact_type is ArtifactType.WORKBOOK
        }
        if not expected:
            raise StudyError("study catalog lacks John Doe's workbooks")
        assists = 0
        if not persona.thorough_query:
            # "Half of the participants missed the first condition and did
            # not filter out only workbooks."
            partial = session.search('created by: "John Doe"')
            partial_types = {
                store.artifact(aid).artifact_type
                for aid in partial.artifact_ids()
            }
            if partial_types != {ArtifactType.WORKBOOK}:
                self._assist("reminded to filter results to workbooks only")
                assists = 1
        session.suggest("type: ")
        result = session.search('type: workbook created by: "John Doe"')
        got = set(result.artifact_ids())
        completed = got == expected
        return TaskOutcome(
            task_id="T3",
            pid=persona.pid,
            completed=completed,
            assists=assists,
            detail=f"{len(got)}/{len(expected)} workbooks found",
        )

    # -- Task 4: configure the A Team home page ---------------------------------------

    def task4(self) -> TaskOutcome:
        persona, session = self.persona, self.session
        session.switch_role("team_admin")
        assists = 0
        if not persona.config_familiar:
            # "Two participants needed help finding the team configuration
            # setting but had no problem configuring a team's page."
            self._assist("helped find the team configuration setting")
            assists = 1
        panel = session.open_team_config(self.team_id)
        available = [row.name for row in panel.rows() if "overview" in row.surfaces]
        if persona.search_first:
            preferred = [n for n in ("recents", "most_viewed") if n in available]
        else:
            preferred = [n for n in ("team_popular", "badges") if n in available]
        if len(preferred) < 2:
            preferred = available[:2]
        session.configure_team_home_page(preferred, team_id=self.team_id)
        page = self.app.home_pages.page_for(self.team_id)
        completed = (
            page is not None and page.get("providers") == preferred
        )
        if completed:
            # Verify the page actually renders with the chosen providers.
            home = self.app.home_pages.home_page(
                self.team_id, user_id=session.user_id
            )
            completed = home.provider_names() == preferred
        return TaskOutcome(
            task_id="T4",
            pid=persona.pid,
            completed=completed,
            assists=assists,
            detail=f"home page set to {', '.join(preferred)}",
        )


def prepare_study_app(seed: int = 7) -> tuple[WorkbookApp, str]:
    """Build the study catalog and app, with participants on A Team.

    Returns the app and the A Team id.  Every persona gets a user who is
    an A Team admin (Task 4 has them assume that role).
    """
    store = study_catalog(seed=seed)
    a_team = next((t for t in store.teams() if t.name == "A Team"), None)
    if a_team is None:
        raise StudyError("study catalog is missing 'A Team'")
    participant_ids = []
    for persona in PERSONAS:
        user_id = f"user-{persona.pid.lower()}"
        store.add_user(
            User(
                id=user_id,
                name=persona.name,
                role="sales",
                team_ids=(a_team.id,),
            )
        )
        participant_ids.append(user_id)
    store.set_team(
        Team(
            id=a_team.id,
            name=a_team.name,
            admin_ids=a_team.admin_ids + tuple(participant_ids),
            member_ids=a_team.member_ids + tuple(participant_ids),
        )
    )
    # Give participants light usage history so Recents views are non-empty.
    for index, user_id in enumerate(participant_ids):
        store.record(AIRLINES_ID, user_id, "view")
        if index % 2 == 0:
            store.record("table-sales-numbers", user_id, "view")
    return (WorkbookApp(store), a_team.id)


def run_study(seed: int = 7) -> StudyRun:
    """Run the full four-task protocol for all six personas."""
    app, team_id = prepare_study_app(seed=seed)
    run = StudyRun(app=app)
    for persona in PERSONAS:
        executor = TaskExecutor(app, persona, team_id)
        run.outcomes.extend(executor.run_all())
        run.sessions[persona.pid] = executor.session
    expected_tasks = {t.task_id for t in TASKS}
    produced = {o.task_id for o in run.outcomes}
    if produced != expected_tasks:
        raise StudyError(f"tasks missing from run: {expected_tasks - produced}")
    return run
