"""Usage-workload generation.

Artifact popularity in real catalogs is heavily skewed — a handful of golden
tables receive most views.  We model that with a Zipf distribution over
artifacts (rank by creation order) and a uniform user mix, producing the
interaction metadata the "Recents", "Most Viewed" and "Popular with team"
providers surface.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.catalog.model import UsageEvent
from repro.catalog.store import CatalogStore
from repro.util.clock import DAY


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for usage generation."""

    seed: int = 11
    n_events: int = 4000
    zipf_s: float = 1.1  # skew exponent; higher = more concentrated
    view_share: float = 0.78
    open_share: float = 0.10
    edit_share: float = 0.07
    favorite_share: float = 0.05

    def __post_init__(self) -> None:
        total = (self.view_share + self.open_share + self.edit_share
                 + self.favorite_share)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"action shares must sum to 1, got {total}")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")


def zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalised Zipf weights ``1/rank**s`` for *n* ranks."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def generate_usage(store: CatalogStore, config: WorkloadConfig | None = None) -> int:
    """Replay a synthetic workload into *store*; returns events recorded.

    Events are timestamped between each artifact's creation and the current
    simulated time, so recency metadata stays causally consistent.
    """
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    artifacts = list(store.artifacts())
    users = store.users()
    if not artifacts or not users:
        return 0

    weights = zipf_weights(len(artifacts), config.zipf_s)
    # Cumulative weights are precomputed once: random.choices recomputes
    # them per call otherwise, turning the replay quadratic at scale.
    cum_weights = list(itertools.accumulate(weights))
    actions = ("view", "open", "edit", "favorite")
    action_cum = list(itertools.accumulate(
        (config.view_share, config.open_share,
         config.edit_share, config.favorite_share)
    ))
    now = store.clock.now()

    recorded = 0
    for _ in range(config.n_events):
        artifact = rng.choices(artifacts, cum_weights=cum_weights, k=1)[0]
        user = users[rng.randrange(len(users))]
        action = rng.choices(actions, cum_weights=action_cum, k=1)[0]
        start = min(artifact.created_at, now - 1.0)
        timestamp = rng.uniform(start, now)
        store.record_event(
            UsageEvent(artifact.id, user.id, action, timestamp)
        )
        recorded += 1
    return recorded


def burst_usage(
    store: CatalogStore,
    artifact_id: str,
    user_ids: list[str],
    views: int,
    within_days: float = 7.0,
    seed: int = 5,
) -> None:
    """Inject a recent burst of views (used to steer study fixtures)."""
    rng = random.Random(seed)
    now = store.clock.now()
    for index in range(views):
        user_id = user_ids[index % len(user_ids)]
        timestamp = now - rng.uniform(0.0, within_days) * DAY
        store.record_event(UsageEvent(artifact_id, user_id, "view", timestamp))
