"""Name corpora for the synthetic catalog.

The corpora are small but structured: every business domain carries its own
subject nouns and column pools, and a set of *key columns* is shared across
domains so that cross-domain joins exist — the joinability provider needs
real value overlap to find.
"""

from __future__ import annotations

FIRST_NAMES = (
    "Ada", "Alex", "Amara", "Ben", "Carla", "Chen", "Dana", "Elena",
    "Femi", "Grace", "Hiro", "Ines", "Jonas", "Kai", "Lena", "Mei",
    "Mike", "Nadia", "Omar", "Priya", "Quinn", "Rosa", "Sam", "Tariq",
    "Uma", "Viktor", "Wes", "Xena", "Yara", "Zoe",
)

LAST_NAMES = (
    "Abebe", "Bauer", "Costa", "Dubois", "Eriksen", "Fischer", "Garcia",
    "Haddad", "Ivanov", "Jensen", "Kimura", "Lindgren", "Moreno", "Nakamura",
    "Okafor", "Petrov", "Quispe", "Rossi", "Singh", "Tanaka", "Ueda",
    "Vargas", "Weber", "Xu", "Yilmaz", "Zhang",
)

ROLES = ("analyst", "engineer", "manager", "sales", "designer")

TEAM_NAMES = (
    "A Team", "Marketing", "Sales Engineering", "Finance Ops",
    "Growth", "Data Platform", "Customer Success", "Product Analytics",
    "Supply Chain", "Revenue Ops",
)

BADGES = ("endorsed", "certified", "warning", "deprecated")

#: Columns shared across domains; these create join paths.
KEY_COLUMNS = (
    ("customer_id", "integer"),
    ("order_id", "integer"),
    ("product_id", "integer"),
    ("account_id", "integer"),
    ("region_id", "integer"),
    ("event_date", "date"),
)

#: domain -> (subject nouns, domain-specific column pool)
DOMAINS: dict[str, tuple[tuple[str, ...], tuple[tuple[str, str], ...]]] = {
    "sales": (
        ("orders", "pipeline", "quota", "deals", "revenue", "leads",
         "opportunities", "bookings", "renewals", "churn"),
        (
            ("deal_size", "float"), ("stage", "string"), ("close_date", "date"),
            ("rep_name", "string"), ("discount", "float"), ("won", "boolean"),
        ),
    ),
    "marketing": (
        ("campaigns", "attribution", "impressions", "clicks", "conversion",
         "spend", "funnels", "segments", "cohorts", "emails"),
        (
            ("channel", "string"), ("cost", "float"), ("ctr", "float"),
            ("audience", "string"), ("campaign_name", "string"),
        ),
    ),
    "finance": (
        ("ledger", "invoices", "payments", "budget", "forecast",
         "expenses", "payroll", "balance", "tax", "assets"),
        (
            ("amount", "float"), ("currency", "string"), ("due_date", "date"),
            ("cost_center", "string"), ("approved", "boolean"),
        ),
    ),
    "product": (
        ("usage", "signups", "retention", "features", "sessions",
         "errors", "latency", "adoption", "feedback", "experiments"),
        (
            ("feature_name", "string"), ("duration_ms", "integer"),
            ("platform", "string"), ("version", "string"), ("active", "boolean"),
        ),
    ),
    "operations": (
        ("inventory", "shipments", "suppliers", "warehouses", "returns",
         "logistics", "fleet", "capacity", "incidents", "audits"),
        (
            ("sku", "string"), ("quantity", "integer"), ("warehouse", "string"),
            ("shipped_date", "date"), ("carrier", "string"),
        ),
    ),
    "hr": (
        ("headcount", "recruiting", "onboarding", "attrition", "surveys",
         "compensation", "reviews", "training", "benefits", "offers"),
        (
            ("department", "string"), ("level", "integer"), ("salary", "float"),
            ("start_date", "date"), ("remote", "boolean"),
        ),
    ),
}

TABLE_SUFFIXES = ("raw", "clean", "daily", "monthly", "v2", "final", "staging", "agg")

TAGS_BY_DOMAIN = {
    "sales": ("sales", "revenue", "crm"),
    "marketing": ("marketing", "growth", "campaigns"),
    "finance": ("finance", "accounting", "reporting"),
    "product": ("product", "telemetry", "engagement"),
    "operations": ("ops", "supply-chain", "logistics"),
    "hr": ("hr", "people", "internal"),
}

VIZ_KINDS = ("bar chart", "line chart", "scatter plot", "pivot", "map", "funnel")

DESCRIPTION_TEMPLATES = (
    "Tracks {subject} for the {domain} org, refreshed daily.",
    "Source of truth for {domain} {subject}.",
    "Derived {subject} metrics used in weekly {domain} reviews.",
    "Historical {subject} snapshots for {domain} planning.",
    "Ad-hoc exploration of {domain} {subject}.",
)
