"""Deterministic synthetic catalog generator.

``generate_catalog(SynthConfig(seed=7, n_tables=200))`` always yields the
same catalog: users, teams, domain-flavoured tables with overlapping key
columns, derived artifacts with lineage, badges, tags and a Zipf usage log.

``study_catalog()`` layers the specific entities the paper's user study
references on top (the AIRLINES table with the *endorsed* badge, users Alex,
Mike and John Doe, the "A Team"), so the study tasks of Section 7.1 can be
executed verbatim.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field

from repro.catalog import IngestorRegistry
from repro.catalog.model import Artifact, ArtifactType, Column, Team, User
from repro.catalog.store import CatalogStore
from repro.synth import names
from repro.synth.workload import WorkloadConfig, generate_usage
from repro.util.clock import DAY, SimulationClock
from repro.util.ids import IdFactory

#: Bumped when generation logic changes output for an unchanged config,
#: so ingestion fingerprints notice code drift as well as config drift.
GENERATOR_REVISION = 1


@dataclass(frozen=True)
class SynthConfig:
    """Knobs for catalog generation; defaults give a small demo catalog."""

    seed: int = 7
    n_users: int = 24
    n_teams: int = 4
    n_tables: int = 120
    dataset_ratio: float = 0.3  # fraction of tables with a derived dataset
    viz_ratio: float = 0.5  # visualizations per table (expected)
    n_dashboards: int = 12
    n_workbooks: int = 18
    n_documents: int = 6
    badge_ratio: float = 0.15  # fraction of artifacts receiving a badge
    horizon_days: float = 365.0  # catalog age
    usage_events: int = 4000
    key_value_pool: int = 2000  # shared id pool size for join overlap
    samples_per_column: int = 40

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_teams < 1 or self.n_tables < 1:
            raise ValueError("n_users, n_teams and n_tables must be >= 1")
        if not 0 <= self.badge_ratio <= 1:
            raise ValueError("badge_ratio must be in [0, 1]")


@dataclass
class _Build:
    """Mutable state threaded through the generation passes."""

    config: SynthConfig
    rng: random.Random
    store: CatalogStore
    ids: IdFactory
    now: float
    tables: list[Artifact] = field(default_factory=list)
    datasets: list[Artifact] = field(default_factory=list)
    visualizations: list[Artifact] = field(default_factory=list)


def synth_fingerprint(config: SynthConfig,
                      fields: tuple[str, ...] | None = None) -> str:
    """Content fingerprint of *config* (optionally a subset of fields).

    Two configs produce the same catalog iff they fingerprint the same:
    the digest covers every config field that feeds generation plus
    :data:`GENERATOR_REVISION` for the code itself.
    """
    payload = asdict(config)
    if fields is not None:
        payload = {name: payload[name] for name in fields}
    payload["__generator__"] = GENERATOR_REVISION
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def synth_ingestors(config: SynthConfig) -> IngestorRegistry:
    """The generator as an ingestion pipeline (see :mod:`repro.catalog.ingest`).

    Two ingestors with independent fingerprints: ``synth:entities``
    (people, artifacts, lineage, badges) and ``synth:usage`` (the Zipf
    event workload, which only depends on the seed and event count).
    Applying the registry to an already-populated persistent store skips
    whatever already ran and refuses changed configurations.
    """
    registry = IngestorRegistry()
    entity_fields = tuple(
        name for name in asdict(config) if name != "usage_events"
    )
    registry.register(
        "synth:entities",
        synth_fingerprint(config, entity_fields),
        lambda store: _ingest_entities(config, store),
    )
    registry.register(
        "synth:usage",
        synth_fingerprint(config, ("seed", "usage_events", "horizon_days")),
        lambda store: _ingest_usage(config, store),
    )
    return registry


def _ingest_entities(config: SynthConfig, store: CatalogStore) -> None:
    rng = random.Random(config.seed)
    now = store.clock.epoch + config.horizon_days * DAY
    build = _Build(config=config, rng=rng, store=store, ids=IdFactory(), now=now)
    _make_people(build)
    _make_tables(build)
    _make_derived(build)
    _grant_badges(build)


def _ingest_usage(config: SynthConfig, store: CatalogStore) -> None:
    now = store.clock.epoch + config.horizon_days * DAY
    if now > store.clock.now():
        store.clock.advance(seconds=now - store.clock.now())
    generate_usage(
        store,
        WorkloadConfig(seed=config.seed + 1, n_events=config.usage_events),
    )


def generate_catalog(config: SynthConfig | None = None,
                     store: CatalogStore | None = None) -> CatalogStore:
    """Generate a full synthetic catalog from *config*.

    With *store* given (e.g. ``CatalogStore.open(path)``), generation runs
    as incremental ingestion into it: already-ingested passes are skipped
    by fingerprint, and a store populated from a different config is
    rejected rather than silently mixed.
    """
    config = config or SynthConfig()
    if store is None:
        store = CatalogStore(clock=SimulationClock())
    synth_ingestors(config).ingest_into(store)
    return store


def study_catalog(seed: int = 7, n_tables: int = 80) -> CatalogStore:
    """A catalog containing the exact entities the paper's study tasks use.

    Adds, on top of a generated base catalog:

    * users **Alex**, **Mike** (manager) and **John Doe** (sales);
    * table **AIRLINES** owned by Alex, with the ``endorsed`` badge granted
      by Mike (Task 1);
    * peer tables sharing AIRLINES' type and badge (Task 2);
    * workbooks created by John Doe (Task 3);
    * table **SALES_NUMBERS** matching the paper's flagship query
      ``type: table owned_by: "Alex" badged: endorsed badged_by: "Mike" & "sales"``.
    """
    config = SynthConfig(seed=seed, n_tables=n_tables)
    store = generate_catalog(config)
    clock = store.clock
    a_team = next((t for t in store.teams() if t.name == "A Team"), None)
    team_ids = (a_team.id,) if a_team else ()

    alex = store.add_user(User(id="user-alex", name="Alex", role="analyst",
                               team_ids=team_ids))
    mike = store.add_user(User(id="user-mike", name="Mike", role="manager",
                               team_ids=team_ids))
    john = store.add_user(User(id="user-john", name="John Doe", role="sales"))

    created = clock.now() - 30 * DAY
    airlines = store.add_artifact(
        Artifact(
            id="table-airlines",
            name="AIRLINES",
            artifact_type=ArtifactType.TABLE,
            description="Carrier, route and on-time statistics for all airlines.",
            owner_id=alex.id,
            team_ids=team_ids,
            created_at=created,
            tags=("travel", "reference"),
            columns=(
                Column("airline_id", "integer",
                       tuple(f"id-{i}" for i in range(0, 40))),
                Column("carrier", "string", ("UA", "AA", "DL", "WN", "B6")),
                Column("origin", "string", ("SFO", "JFK", "ORD", "SEA")),
                Column("dest", "string", ("LAX", "BOS", "DEN", "ATL")),
                Column("flight_date", "date"),
            ),
        )
    )
    store.grant_badge(airlines.id, "endorsed", mike.id, at=created + DAY)

    sales_numbers = store.add_artifact(
        Artifact(
            id="table-sales-numbers",
            name="SALES_NUMBERS",
            artifact_type=ArtifactType.TABLE,
            description="Quarterly sales numbers by region and product line.",
            owner_id=alex.id,
            team_ids=team_ids,
            created_at=created,
            tags=("sales", "revenue"),
            columns=(
                Column("region_id", "integer",
                       tuple(f"id-{i}" for i in range(10, 50))),
                Column("quarter", "string", ("Q1", "Q2", "Q3", "Q4")),
                Column("revenue", "float"),
            ),
        )
    )
    store.grant_badge(sales_numbers.id, "endorsed", mike.id, at=created + DAY)

    # Task 2 needs peers similar w.r.t. type and badge.
    peers = ("AIRPORTS", "AIRCRAFT", "ROUTES")
    for index, name in enumerate(peers):
        peer = store.add_artifact(
            Artifact(
                id=f"table-{name.lower()}",
                name=name,
                artifact_type=ArtifactType.TABLE,
                description=f"Reference data: {name.lower()}.",
                owner_id=alex.id if index % 2 == 0 else mike.id,
                team_ids=team_ids,
                created_at=created + index * DAY,
                tags=("travel", "reference"),
                columns=(
                    Column("airline_id", "integer",
                           tuple(f"id-{i}" for i in range(20, 60))),
                    Column("name", "string"),
                ),
            )
        )
        if index < 2:
            store.grant_badge(peer.id, "endorsed", mike.id,
                              at=created + (index + 1) * DAY)
        store.lineage.add_edge(airlines.id, peer.id, "joins")

    # Task 3: workbooks created by John Doe (plus a decoy dashboard).
    workbook_names = ("Q1 Sales Review", "Churn Deep Dive", "Pipeline Health")
    for index, name in enumerate(workbook_names):
        store.add_artifact(
            Artifact(
                id=f"workbook-john-{index + 1}",
                name=name,
                artifact_type=ArtifactType.WORKBOOK,
                description=f"Workbook by John Doe: {name.lower()}.",
                owner_id=john.id,
                created_at=created + index * DAY,
                tags=("sales",),
            )
        )
    store.add_artifact(
        Artifact(
            id="dashboard-john-1",
            name="Sales Dashboard",
            artifact_type=ArtifactType.DASHBOARD,
            description="Dashboard by John Doe (not a workbook).",
            owner_id=john.id,
            created_at=created,
            tags=("sales",),
        )
    )

    # Give study artifacts some usage so ranked views surface them.
    for artifact_id in ("table-airlines", "table-sales-numbers",
                        "workbook-john-1"):
        for actor in (alex.id, mike.id, john.id):
            store.record(artifact_id, actor, "view",
                         at=clock.now() - DAY)
    store.record("table-airlines", alex.id, "favorite", at=clock.now() - DAY)
    return store


# -- generation passes --------------------------------------------------------


def _make_people(build: _Build) -> None:
    config, rng = build.config, build.rng
    team_names = list(names.TEAM_NAMES[: config.n_teams])
    while len(team_names) < config.n_teams:
        team_names.append(f"Team {len(team_names) + 1}")
    team_ids = [build.ids.next("team") for _ in team_names]

    user_specs: list[tuple[str, str, str, tuple[str, ...]]] = []
    memberships: dict[str, list[str]] = {tid: [] for tid in team_ids}
    for index in range(config.n_users):
        first = names.FIRST_NAMES[index % len(names.FIRST_NAMES)]
        last = names.LAST_NAMES[(index // len(names.FIRST_NAMES) + index)
                                % len(names.LAST_NAMES)]
        full = f"{first} {last}"
        role = names.ROLES[index % len(names.ROLES)]
        n_memberships = 1 if rng.random() < 0.7 else 2
        joined = rng.sample(team_ids, k=min(n_memberships, len(team_ids)))
        user_id = build.ids.next("user")
        user_specs.append((user_id, full, role, tuple(joined)))
        for team_id in joined:
            memberships[team_id].append(user_id)

    for user_id, full, role, joined in user_specs:
        build.store.add_user(User(id=user_id, name=full, role=role,
                                  team_ids=joined))
    for team_id, team_name in zip(team_ids, team_names):
        members = memberships[team_id]
        admins = tuple(members[:1])
        build.store.add_team(Team(id=team_id, name=team_name,
                                  admin_ids=admins,
                                  member_ids=tuple(members)))


def _random_timestamp(build: _Build) -> float:
    """A creation time within the catalog horizon, at least a day old."""
    age_days = build.rng.uniform(1.0, build.config.horizon_days - 1.0)
    return build.now - age_days * DAY


def _pick_owner(build: _Build) -> User:
    users = build.store.users()
    return users[build.rng.randrange(len(users))]


def _key_samples(build: _Build, column_name: str) -> tuple[str, ...]:
    """Sample values for a shared key column, drawn from a per-key window.

    Every key column name owns a window of the global id pool; tables
    sample ~half the window, so two tables sharing a key column overlap
    with Jaccard ≈ 0.3 — comfortably above the joinability threshold —
    while unrelated columns share nothing.
    """
    pool = build.config.key_value_pool
    window = min(80, pool)
    offset = (sum(ord(ch) for ch in column_name) * 131) % max(pool - window, 1)
    count = min(build.config.samples_per_column, window)
    values = build.rng.sample(range(offset, offset + window), count)
    return tuple(f"{column_name[:3]}-{v}" for v in sorted(values))


def _make_tables(build: _Build) -> None:
    config, rng = build.config, build.rng
    domains = list(names.DOMAINS)
    for index in range(config.n_tables):
        domain = domains[index % len(domains)]
        subjects, column_pool = names.DOMAINS[domain]
        subject = subjects[(index // len(domains)) % len(subjects)]
        parts = [domain, subject]
        if rng.random() < 0.5:
            parts.append(names.TABLE_SUFFIXES[rng.randrange(len(names.TABLE_SUFFIXES))])
        table_name = "_".join(parts).upper()

        key_cols = rng.sample(names.KEY_COLUMNS, k=rng.randint(2, 3))
        domain_cols = rng.sample(column_pool, k=min(rng.randint(3, 5),
                                                    len(column_pool)))
        columns = tuple(
            Column(name, dtype, _key_samples(build, name))
            for name, dtype in key_cols
        ) + tuple(Column(name, dtype) for name, dtype in domain_cols)

        owner = _pick_owner(build)
        description = names.DESCRIPTION_TEMPLATES[
            rng.randrange(len(names.DESCRIPTION_TEMPLATES))
        ].format(subject=subject, domain=domain)
        artifact = Artifact(
            id=build.ids.next("table"),
            name=table_name,
            artifact_type=ArtifactType.TABLE,
            description=description,
            owner_id=owner.id,
            team_ids=owner.team_ids[:1],
            created_at=_random_timestamp(build),
            tags=names.TAGS_BY_DOMAIN[domain],
            columns=columns,
        )
        build.store.add_artifact(artifact)
        build.tables.append(artifact)


def _make_derived(build: _Build) -> None:
    config, rng, store = build.config, build.rng, build.store

    for table in build.tables:
        if rng.random() >= config.dataset_ratio:
            continue
        owner = _pick_owner(build)
        dataset = Artifact(
            id=build.ids.next("dataset"),
            name=f"{table.name.title().replace('_', ' ')} Dataset",
            artifact_type=ArtifactType.DATASET,
            description=f"Curated dataset derived from {table.name}.",
            owner_id=owner.id,
            team_ids=owner.team_ids[:1],
            created_at=min(table.created_at + DAY, build.now - DAY),
            tags=table.tags,
            columns=table.columns[: max(2, len(table.columns) - 2)],
        )
        store.add_artifact(dataset)
        store.lineage.add_edge(table.id, dataset.id, "derives")
        build.datasets.append(dataset)

    viz_sources = build.tables + build.datasets
    n_viz = int(len(build.tables) * config.viz_ratio)
    for _ in range(n_viz):
        source = viz_sources[rng.randrange(len(viz_sources))]
        kind = names.VIZ_KINDS[rng.randrange(len(names.VIZ_KINDS))]
        owner = _pick_owner(build)
        viz = Artifact(
            id=build.ids.next("viz"),
            name=f"{source.name.title().replace('_', ' ')} {kind.title()}",
            artifact_type=ArtifactType.VISUALIZATION,
            description=f"A {kind} over {source.name}.",
            owner_id=owner.id,
            team_ids=owner.team_ids[:1],
            created_at=min(source.created_at + 2 * DAY, build.now - DAY),
            tags=source.tags,
        )
        store.add_artifact(viz)
        store.lineage.add_edge(source.id, viz.id, "derives")
        build.visualizations.append(viz)

    for _ in range(config.n_dashboards):
        if not build.visualizations:
            break
        k = min(rng.randint(2, 5), len(build.visualizations))
        embedded = rng.sample(build.visualizations, k=k)
        owner = _pick_owner(build)
        earliest = max(v.created_at for v in embedded)
        dashboard = Artifact(
            id=build.ids.next("dashboard"),
            name=f"{owner.name.split()[0]}'s "
                 f"{embedded[0].tags[0].title() if embedded[0].tags else 'Team'} "
                 f"Dashboard",
            artifact_type=ArtifactType.DASHBOARD,
            description="Dashboard embedding "
                        + ", ".join(v.name for v in embedded[:2]) + ".",
            owner_id=owner.id,
            team_ids=owner.team_ids[:1],
            created_at=min(earliest + DAY, build.now - DAY),
            tags=embedded[0].tags,
        )
        store.add_artifact(dashboard)
        for viz in embedded:
            store.lineage.add_edge(viz.id, dashboard.id, "embeds")

    for _ in range(config.n_workbooks):
        k = min(rng.randint(1, 3), len(build.tables))
        sources = rng.sample(build.tables, k=k)
        owner = _pick_owner(build)
        workbook = Artifact(
            id=build.ids.next("workbook"),
            name=f"{sources[0].name.title().replace('_', ' ')} Analysis",
            artifact_type=ArtifactType.WORKBOOK,
            description="Workbook analysing "
                        + ", ".join(s.name for s in sources) + ".",
            owner_id=owner.id,
            team_ids=owner.team_ids[:1],
            created_at=min(max(s.created_at for s in sources) + DAY,
                           build.now - DAY),
            tags=sources[0].tags,
        )
        store.add_artifact(workbook)
        for source in sources:
            store.lineage.add_edge(source.id, workbook.id, "derives")

    for index in range(config.n_documents):
        owner = _pick_owner(build)
        store.add_artifact(
            Artifact(
                id=build.ids.next("doc"),
                name=f"Runbook {index + 1}",
                artifact_type=ArtifactType.DOCUMENT,
                description="Operational notes and data dictionary excerpts.",
                owner_id=owner.id,
                team_ids=owner.team_ids[:1],
                created_at=_random_timestamp(build),
                tags=("docs",),
            )
        )


def _grant_badges(build: _Build) -> None:
    config, rng, store = build.config, build.rng, build.store
    managers = [u for u in store.users() if u.role == "manager"]
    if not managers:
        managers = store.users()[:1]
    artifact_ids = store.artifact_ids()
    n_badged = int(len(artifact_ids) * config.badge_ratio)
    chosen = rng.sample(artifact_ids, k=min(n_badged, len(artifact_ids)))
    for artifact_id in chosen:
        badge = names.BADGES[rng.randrange(len(names.BADGES))]
        grantor = managers[rng.randrange(len(managers))]
        artifact = store.artifact(artifact_id)
        granted_at = min(artifact.created_at + DAY, build.now)
        store.grant_badge(artifact_id, badge, grantor.id, at=granted_at)
