"""Synthetic enterprise catalog generation.

The paper evaluates Humboldt against Sigma Computing's production catalog,
which we cannot ship.  This package generates deterministic, realistic
substitutes: domain-flavoured tables with overlapping key columns (so
joinability has signal), derived datasets/visualizations/dashboards with
lineage, users, teams, badges and Zipf-distributed usage logs.
"""

from repro.synth.generator import (
    SynthConfig,
    generate_catalog,
    study_catalog,
    synth_fingerprint,
    synth_ingestors,
)
from repro.synth.workload import WorkloadConfig, generate_usage

__all__ = [
    "SynthConfig",
    "WorkloadConfig",
    "generate_catalog",
    "generate_usage",
    "study_catalog",
    "synth_fingerprint",
    "synth_ingestors",
]
