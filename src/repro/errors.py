"""Exception hierarchy for the Humboldt reproduction.

All library-raised exceptions derive from :class:`HumboldtError` so callers
can catch one base type.  Specific subclasses carry enough context to render
actionable messages in a UI or log.
"""

from __future__ import annotations


class HumboldtError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(HumboldtError):
    """Base class for catalog-store errors."""


class UnknownEntityError(CatalogError, KeyError):
    """An entity id was looked up but does not exist in the catalog."""

    def __init__(self, kind: str, entity_id: str):
        self.kind = kind
        self.entity_id = entity_id
        super().__init__(f"unknown {kind}: {entity_id!r}")

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return f"unknown {self.kind}: {self.entity_id!r}"


class DuplicateEntityError(CatalogError):
    """An entity with the same id was registered twice."""

    def __init__(self, kind: str, entity_id: str):
        self.kind = kind
        self.entity_id = entity_id
        super().__init__(f"duplicate {kind}: {entity_id!r}")


class SpecError(HumboldtError):
    """Base class for specification errors."""


class SpecValidationError(SpecError):
    """A Humboldt specification failed validation.

    Collects every violation found so UIs can present all problems at once
    rather than one per round trip.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        joined = "; ".join(self.problems)
        super().__init__(f"invalid Humboldt specification: {joined}")


class UnknownProviderError(SpecError, KeyError):
    """A provider name was referenced but is not registered or specified."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unknown metadata provider: {name!r}")

    def __str__(self) -> str:
        return f"unknown metadata provider: {self.name!r}"


class ProviderError(HumboldtError):
    """A metadata provider failed while fetching data."""

    def __init__(self, provider: str, message: str):
        self.provider = provider
        super().__init__(f"provider {provider!r}: {message}")


class ProviderTimeoutError(ProviderError):
    """A metadata provider exceeded its latency budget.

    Timeouts are transient by definition, so the execution layer's retry
    middleware treats them as retryable (unlike contract violations).
    """


class CircuitOpenError(ProviderError):
    """A fetch was rejected because the endpoint's circuit breaker is open.

    The endpoint was *not* invoked — the breaker tripped on earlier
    consecutive failures and is still within its reset timeout.  Carries
    ``retry_after_s``, the seconds until the breaker will admit a
    half-open probe.
    """

    def __init__(self, provider: str, retry_after_s: float = 0.0):
        self.retry_after_s = retry_after_s
        super().__init__(
            provider,
            f"circuit breaker open (retry in {retry_after_s:.1f}s)",
        )


class DeadlineExceededError(ProviderError):
    """A fetch was skipped because the request's deadline budget was spent.

    The endpoint was *not* invoked; retrying within the same request
    cannot succeed, so the execution layer treats this as non-transient.
    """

    def __init__(self, provider: str, budget_ms: float = 0.0):
        self.budget_ms = budget_ms
        super().__init__(
            provider,
            f"request deadline exceeded ({budget_ms:.0f}ms budget spent)",
        )


class MissingInputError(ProviderError):
    """A provider requiring an input value was queried without it."""

    def __init__(self, provider: str, input_name: str):
        self.input_name = input_name
        super().__init__(provider, f"missing required input {input_name!r}")


class RepresentationError(ProviderError):
    """A provider returned data that does not match its declared representation."""


class QueryError(HumboldtError):
    """Base class for query-language errors."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed.

    Carries the character position so interactive callers can underline the
    offending token.
    """

    def __init__(self, message: str, position: int, text: str = ""):
        self.position = position
        self.text = text
        super().__init__(f"{message} (at position {position})")


class QueryCompileError(QueryError):
    """A syntactically valid query referenced unknown fields or providers."""


class ConfigurationError(HumboldtError):
    """An interface-customization operation was invalid."""


class StudyError(HumboldtError):
    """A simulated user-study run was misconfigured."""
