"""2-D embedding projections for the embedding view (Figure 6, bottom-right).

The paper's embedding view "expects the x and y coordinates to be included
in the data artifact's metadata" and anticipates learned representations.
We compute honest coordinates: artifact features (hashed text features plus
usage statistics) are standardised and projected to 2-D with PCA via
:func:`numpy.linalg.svd`, with a deterministic sign convention.
"""

from __future__ import annotations

import math

import numpy as np

from repro.catalog.store import CatalogStore
from repro.metadata.sketches import stable_hash
from repro.util.textutil import tokenize

#: Dimensionality of the hashed bag-of-words block.
HASHED_TEXT_DIMS = 48
#: Usage/recency feature block size.
USAGE_DIMS = 4


class EmbeddingIndex:
    """Computes and caches (x, y) coordinates for every artifact."""

    def __init__(self, store: CatalogStore, text_dims: int = HASHED_TEXT_DIMS):
        if text_dims < 2:
            raise ValueError("text_dims must be >= 2")
        self.store = store
        self.text_dims = text_dims
        self._coords: dict[str, tuple[float, float]] | None = None

    def build(self) -> "EmbeddingIndex":
        """Compute the projection; idempotent until :meth:`invalidate`."""
        if self._coords is not None:
            return self
        ids = self.store.artifact_ids()
        if not ids:
            self._coords = {}
            return self
        matrix = np.zeros((len(ids), self.text_dims + USAGE_DIMS))
        for row, artifact_id in enumerate(ids):
            matrix[row] = self._features(artifact_id)
        projected = self._pca_2d(matrix)
        self._coords = {
            artifact_id: (float(projected[row, 0]), float(projected[row, 1]))
            for row, artifact_id in enumerate(ids)
        }
        return self

    def invalidate(self) -> None:
        """Force recomputation on next access (after catalog mutation)."""
        self._coords = None

    def coordinates(self, artifact_id: str) -> tuple[float, float]:
        """The (x, y) position of *artifact_id*; (0, 0) if unknown."""
        self.build()
        assert self._coords is not None
        return self._coords.get(artifact_id, (0.0, 0.0))

    def all_coordinates(self) -> dict[str, tuple[float, float]]:
        self.build()
        assert self._coords is not None
        return dict(self._coords)

    # -- internals ---------------------------------------------------------

    def _features(self, artifact_id: str) -> np.ndarray:
        artifact = self.store.artifact(artifact_id)
        vector = np.zeros(self.text_dims + USAGE_DIMS)
        tokens = tokenize(artifact.searchable_text())
        tokens.append(f"type:{artifact.artifact_type.value}")
        for token in tokens:
            slot = stable_hash(token) % self.text_dims
            # Signed hashing reduces collisions' bias.
            sign = 1.0 if stable_hash("#" + token) % 2 == 0 else -1.0
            vector[slot] += sign
        stats = self.store.usage_stats(artifact_id)
        age_days = max(self.store.clock.days_since(artifact.created_at), 0.0)
        vector[self.text_dims + 0] = math.log1p(stats.view_count)
        vector[self.text_dims + 1] = math.log1p(stats.favorite_count)
        vector[self.text_dims + 2] = math.log1p(stats.unique_viewers)
        vector[self.text_dims + 3] = math.log1p(age_days)
        return vector

    @staticmethod
    def _pca_2d(matrix: np.ndarray) -> np.ndarray:
        """Project rows of *matrix* onto their top-2 principal components."""
        centered = matrix - matrix.mean(axis=0, keepdims=True)
        scale = centered.std(axis=0, keepdims=True)
        scale[scale == 0.0] = 1.0
        standardized = centered / scale
        n_rows = standardized.shape[0]
        if n_rows == 1:
            return np.zeros((1, 2))
        _, _, vt = np.linalg.svd(standardized, full_matrices=False)
        components = vt[:2]
        if components.shape[0] < 2:  # degenerate: rank-1 data
            components = np.vstack(
                [components, np.zeros((2 - components.shape[0],
                                       components.shape[1]))]
            )
        # Deterministic sign: make the largest-magnitude loading positive.
        for axis in range(2):
            pivot = np.argmax(np.abs(components[axis]))
            if components[axis, pivot] < 0:
                components[axis] = -components[axis]
        return standardized @ components.T
