"""TF-IDF vectorisation and cosine similarity over artifact text.

Backs the semantic-similarity provider and the keyword-search baseline's
relevance ordering.  Vectors are sparse dicts — catalogs have short
documents and large vocabularies, so dense matrices would waste memory.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, defaultdict
from typing import Hashable

from repro.util.textutil import tokenize

SparseVector = dict[str, float]


def cosine(left: SparseVector, right: SparseVector) -> float:
    """Cosine similarity of two sparse vectors (0.0 if either is empty)."""
    if not left or not right:
        return 0.0
    if len(left) > len(right):
        left, right = right, left
    dot = sum(weight * right.get(term, 0.0) for term, weight in left.items())
    if dot == 0.0:
        return 0.0
    norm_left = math.sqrt(sum(w * w for w in left.values()))
    norm_right = math.sqrt(sum(w * w for w in right.values()))
    return dot / (norm_left * norm_right)


class TfIdfIndex:
    """An incrementally built TF-IDF index with top-k similarity queries.

    IDF weights are computed lazily from document frequencies on first
    query after a mutation, so bulk loading stays linear.
    """

    def __init__(self) -> None:
        self._term_counts: dict[Hashable, Counter[str]] = {}
        self._df: Counter[str] = Counter()
        self._vectors: dict[Hashable, SparseVector] | None = None
        self._norms: dict[Hashable, float] | None = None
        self._postings: dict[str, set[Hashable]] = defaultdict(set)

    def __len__(self) -> int:
        return len(self._term_counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._term_counts

    def add(self, key: Hashable, text: str) -> None:
        """Index *text* under *key* (re-adding replaces the document)."""
        if key in self._term_counts:
            self.remove(key)
        counts = Counter(tokenize(text))
        self._term_counts[key] = counts
        for term in counts:
            self._df[term] += 1
            self._postings[term].add(key)
        self._vectors = None

    def remove(self, key: Hashable) -> None:
        """Drop a document (no-op if absent)."""
        counts = self._term_counts.pop(key, None)
        if counts is None:
            return
        for term in counts:
            self._df[term] -= 1
            if self._df[term] <= 0:
                del self._df[term]
            self._postings[term].discard(key)
        self._vectors = None

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of *term*."""
        n_docs = len(self._term_counts)
        if n_docs == 0:
            return 0.0
        return math.log((1 + n_docs) / (1 + self._df.get(term, 0))) + 1.0

    def vector(self, key: Hashable) -> SparseVector:
        """The TF-IDF vector of an indexed document (empty if unknown)."""
        self._ensure_vectors()
        assert self._vectors is not None
        return dict(self._vectors.get(key, {}))

    def vector_for_text(self, text: str) -> SparseVector:
        """TF-IDF vector of arbitrary query text using the corpus IDF."""
        counts = Counter(tokenize(text))
        return {term: tf * self.idf(term) for term, tf in counts.items()}

    def similar(
        self, key: Hashable, limit: int = 10, min_score: float = 0.0
    ) -> list[tuple[Hashable, float]]:
        """Documents most similar to the indexed document *key*."""
        self._ensure_vectors()
        assert self._vectors is not None
        query = self._vectors.get(key)
        if not query:
            return []
        results = self._rank(query, exclude=key, limit=limit,
                             min_score=min_score)
        return results

    def search(
        self, text: str, limit: int = 10, min_score: float = 0.0
    ) -> list[tuple[Hashable, float]]:
        """Documents most similar to free *text*."""
        query = self.vector_for_text(text)
        if not query:
            return []
        self._ensure_vectors()
        return self._rank(query, exclude=None, limit=limit, min_score=min_score)

    def _rank(
        self,
        query: SparseVector,
        exclude: Hashable | None,
        limit: int,
        min_score: float,
    ) -> list[tuple[Hashable, float]]:
        assert self._vectors is not None and self._norms is not None
        # The query norm is a constant of this call; document norms were
        # precomputed alongside the vectors, so scoring a candidate is one
        # sparse dot product — not two norm recomputations per pair.
        query_norm = math.sqrt(sum(w * w for w in query.values()))
        if query_norm == 0.0:
            return []
        # Candidate generation via postings: only documents sharing a term.
        candidates: set[Hashable] = set()
        for term in query:
            candidates.update(self._postings.get(term, ()))
        candidates.discard(exclude)
        scored = []
        for key in candidates:
            vector = self._vectors[key]
            dot = sum(
                weight * vector.get(term, 0.0)
                for term, weight in query.items()
            )
            if dot == 0.0:
                continue
            score = dot / (query_norm * self._norms[key])
            if score > min_score:
                scored.append((key, score))
        # Heap-select the head instead of sorting every candidate: top-k
        # out of c candidates is O(c log k), and similarity queries ask
        # for ~10 of potentially thousands.
        return heapq.nsmallest(
            limit, scored, key=lambda pair: (-pair[1], str(pair[0]))
        )

    def _ensure_vectors(self) -> None:
        if self._vectors is not None:
            return
        vectors: dict[Hashable, SparseVector] = {}
        norms: dict[Hashable, float] = {}
        for key, counts in self._term_counts.items():
            vector = {term: tf * self.idf(term) for term, tf in counts.items()}
            vectors[key] = vector
            norms[key] = math.sqrt(sum(w * w for w in vector.values()))
        self._vectors = vectors
        self._norms = norms
