"""Artifact similarity measures and their ensemble.

Three relatedness signals, mirroring the measures the paper's related-work
section catalogues:

* :class:`SemanticSimilarity` — TF-IDF cosine over names/descriptions/tags
  (Seeping-Semantics style);
* :class:`SchemaSimilarity` — column name/dtype overlap, a unionability
  proxy (Das Sarma et al.);
* :class:`EnsembleSimilarity` — weighted combination (D3L/Voyager style),
  the repo's ablation target "ensemble vs. single measure".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.model import Artifact
from repro.catalog.store import CatalogStore
from repro.metadata.text import TfIdfIndex


@dataclass(frozen=True)
class SimilarityHit:
    """A scored related artifact."""

    artifact_id: str
    score: float
    source: str  # which measure produced the score


class SemanticSimilarity:
    """TF-IDF cosine similarity over artifact text."""

    name = "semantic"

    def __init__(self, store: CatalogStore):
        self.store = store
        self._index = TfIdfIndex()
        self._built = False

    def build(self) -> "SemanticSimilarity":
        if self._built:
            return self
        for artifact in self.store.artifacts():
            self._index.add(artifact.id, artifact.searchable_text())
        self._built = True
        return self

    def add_artifact(self, artifact: Artifact) -> None:
        self._index.add(artifact.id, artifact.searchable_text())

    def similar(self, artifact_id: str, limit: int = 10) -> list[SimilarityHit]:
        self.build()
        return [
            SimilarityHit(str(key), round(score, 4), self.name)
            for key, score in self._index.similar(artifact_id, limit=limit)
        ]

    def search(self, text: str, limit: int = 10) -> list[SimilarityHit]:
        """Relevance-ranked free-text search (used by the keyword baseline)."""
        self.build()
        return [
            SimilarityHit(str(key), round(score, 4), self.name)
            for key, score in self._index.search(text, limit=limit)
        ]


class SchemaSimilarity:
    """Unionability proxy: Jaccard over typed column-name sets."""

    name = "schema"

    def __init__(self, store: CatalogStore):
        self.store = store

    def _column_set(self, artifact: Artifact) -> set[tuple[str, str]]:
        return {(c.name.lower(), c.dtype) for c in artifact.columns}

    def similar(self, artifact_id: str, limit: int = 10) -> list[SimilarityHit]:
        query = self.store.artifact(artifact_id)
        query_cols = self._column_set(query)
        if not query_cols:
            return []
        hits = []
        for other in self.store.artifacts():
            if other.id == artifact_id or not other.columns:
                continue
            other_cols = self._column_set(other)
            union = len(query_cols | other_cols)
            if union == 0:
                continue
            score = len(query_cols & other_cols) / union
            if score > 0.0:
                hits.append(SimilarityHit(other.id, round(score, 4), self.name))
        hits.sort(key=lambda h: (-h.score, h.artifact_id))
        return hits[:limit]


class EnsembleSimilarity:
    """Weighted combination of similarity measures.

    ``weights`` maps measure name to weight; measures missing a candidate
    contribute zero.  This mirrors the ensemble approach (D3L, Voyager) the
    paper cites as improving over single-measure systems.
    """

    name = "ensemble"

    def __init__(
        self,
        store: CatalogStore,
        weights: dict[str, float] | None = None,
    ):
        self.store = store
        self.semantic = SemanticSimilarity(store)
        self.schema = SchemaSimilarity(store)
        self.weights = dict(weights or {"semantic": 0.6, "schema": 0.4})
        unknown = set(self.weights) - {"semantic", "schema"}
        if unknown:
            raise ValueError(f"unknown similarity measures: {sorted(unknown)}")

    def build(self) -> "EnsembleSimilarity":
        self.semantic.build()
        return self

    def similar(self, artifact_id: str, limit: int = 10) -> list[SimilarityHit]:
        pool = max(limit * 3, 20)
        combined: dict[str, float] = {}
        for measure in (self.semantic, self.schema):
            weight = self.weights.get(measure.name, 0.0)
            if weight == 0.0:
                continue
            for hit in measure.similar(artifact_id, limit=pool):
                combined[hit.artifact_id] = (
                    combined.get(hit.artifact_id, 0.0) + weight * hit.score
                )
        hits = [
            SimilarityHit(aid, round(score, 4), self.name)
            for aid, score in combined.items()
        ]
        hits.sort(key=lambda h: (-h.score, h.artifact_id))
        return hits[:limit]
