"""Metadata-computation substrate.

The paper treats relevance computation as orthogonal to Humboldt but relies
on providers that serve relatedness metadata (joinability, similarity,
embeddings).  This package implements those computations for real:

* :mod:`repro.metadata.sketches` — MinHash signatures and LSH banding, the
  Aurum-style machinery behind the joinability provider;
* :mod:`repro.metadata.text` — TF-IDF vectors and cosine similarity for
  semantic relatedness;
* :mod:`repro.metadata.joinability` — a column-sketch index answering
  "what joins to this table?";
* :mod:`repro.metadata.similarity` — semantic + schema (unionability)
  similarity and their ensemble;
* :mod:`repro.metadata.embedding` — 2-D PCA projections of artifact
  features for the embedding view.
"""

from repro.metadata.embedding import EmbeddingIndex
from repro.metadata.joinability import JoinabilityIndex, JoinEdge
from repro.metadata.similarity import (
    EnsembleSimilarity,
    SchemaSimilarity,
    SemanticSimilarity,
)
from repro.metadata.sketches import MinHasher, MinHashSignature, LshIndex
from repro.metadata.text import TfIdfIndex

__all__ = [
    "EmbeddingIndex",
    "EnsembleSimilarity",
    "JoinEdge",
    "JoinabilityIndex",
    "LshIndex",
    "MinHashSignature",
    "MinHasher",
    "SchemaSimilarity",
    "SemanticSimilarity",
    "TfIdfIndex",
]
