"""Joinability index over catalog columns.

For every table/dataset column with sample values we keep a MinHash sketch
in an LSH index.  "What joins to table X?" then reduces to: for each of X's
key-like columns, fetch LSH candidates, estimate Jaccard, and aggregate the
best column pair per candidate table.  The result feeds the joinability
graph provider of Figure 3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.catalog.model import Artifact, ArtifactType
from repro.catalog.store import CatalogStore
from repro.metadata.sketches import LshIndex, MinHasher

#: Artifact types that carry columns worth sketching.
SKETCHABLE_TYPES = (ArtifactType.TABLE, ArtifactType.DATASET)

ColumnKey = tuple[str, str]  # (artifact_id, column_name)


@dataclass(frozen=True)
class JoinEdge:
    """A joinability edge between two artifacts via a best column pair."""

    src: str
    dst: str
    src_column: str
    dst_column: str
    score: float  # estimated Jaccard of the column value sets


class JoinabilityIndex:
    """Sketch-backed join discovery over a catalog."""

    def __init__(
        self,
        store: CatalogStore,
        num_perm: int = 64,
        bands: int = 32,
        threshold: float = 0.2,
        min_samples: int = 3,
    ):
        self.store = store
        self.threshold = threshold
        self.min_samples = min_samples
        self._hasher = MinHasher(num_perm=num_perm)
        self._lsh = LshIndex(num_perm=num_perm, bands=bands)
        self._columns_of: dict[str, list[str]] = defaultdict(list)
        self._built = False

    @property
    def sketch_count(self) -> int:
        return len(self._lsh)

    def build(self) -> "JoinabilityIndex":
        """Sketch every sample-bearing column; idempotent."""
        if self._built:
            return self
        for artifact in self.store.artifacts():
            self.add_artifact(artifact)
        self._built = True
        return self

    def add_artifact(self, artifact: Artifact) -> int:
        """Index one artifact's columns; returns how many were sketched."""
        if artifact.artifact_type not in SKETCHABLE_TYPES:
            return 0
        added = 0
        for column in artifact.columns:
            if len(column.sample_values) < self.min_samples:
                continue
            signature = self._hasher.signature(column.sample_values)
            key: ColumnKey = (artifact.id, column.name)
            self._lsh.add(key, signature)
            self._columns_of[artifact.id].append(column.name)
            added += 1
        return added

    def remove_artifact(self, artifact_id: str) -> None:
        for column_name in self._columns_of.pop(artifact_id, ()):
            self._lsh.remove((artifact_id, column_name))

    def joinable(
        self, artifact_id: str, limit: int = 10
    ) -> list[JoinEdge]:
        """Best join partners of *artifact_id*, strongest column pair each."""
        self.build()
        artifact = self.store.artifact(artifact_id)
        best: dict[str, JoinEdge] = {}
        for column in artifact.columns:
            key: ColumnKey = (artifact.id, column.name)
            signature = self._lsh.signature_of(key)
            if signature is None:
                continue
            for (other_id, other_column), score in self._lsh.query(
                signature, threshold=self.threshold
            ):
                if other_id == artifact_id:
                    continue
                current = best.get(other_id)
                if current is None or score > current.score:
                    best[other_id] = JoinEdge(
                        src=artifact_id,
                        dst=other_id,
                        src_column=column.name,
                        dst_column=other_column,
                        score=round(score, 4),
                    )
        edges = sorted(best.values(), key=lambda e: (-e.score, e.dst))
        return edges[:limit]

    def join_graph(
        self, artifact_id: str, depth: int = 1, limit_per_node: int = 6
    ) -> tuple[list[str], list[JoinEdge]]:
        """Nodes and edges of the join neighbourhood around *artifact_id*.

        This is exactly the payload the Figure 3 provider returns: a graph
        of joinable tables for the input table.
        """
        self.build()
        nodes = {artifact_id}
        edges: list[JoinEdge] = []
        frontier = [artifact_id]
        seen_edges: set[tuple[str, str]] = set()
        for _ in range(depth):
            next_frontier: list[str] = []
            for node in frontier:
                if not self.store.has_artifact(node):
                    continue
                for edge in self.joinable(node, limit=limit_per_node):
                    pair = tuple(sorted((edge.src, edge.dst)))
                    if pair in seen_edges:
                        continue
                    seen_edges.add(pair)
                    edges.append(edge)
                    if edge.dst not in nodes:
                        nodes.add(edge.dst)
                        next_frontier.append(edge.dst)
            frontier = next_frontier
        return (sorted(nodes), edges)
