"""MinHash sketches and LSH banding.

These are the standard building blocks for scalable value-overlap
(joinability) detection over warehouse columns, as used by Aurum-style data
discovery systems.  Hashing is deterministic across processes: value hashing
uses CRC32 and the permutation family is universal hashing with parameters
drawn from a seeded generator.
"""

from __future__ import annotations

import random
import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def stable_hash(value: str) -> int:
    """Deterministic 32-bit hash of *value* (CRC32; not salted like ``hash``)."""
    return zlib.crc32(value.encode("utf-8")) & _MAX_HASH


@dataclass(frozen=True)
class MinHashSignature:
    """A fixed-length MinHash signature of a value set."""

    values: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.values)

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimate Jaccard similarity against *other* (same hasher required)."""
        if len(self.values) != len(other.values):
            raise ValueError(
                f"signature lengths differ: {len(self.values)} vs "
                f"{len(other.values)}"
            )
        if not self.values:
            return 0.0
        matches = sum(a == b for a, b in zip(self.values, other.values))
        return matches / len(self.values)


class MinHasher:
    """Computes MinHash signatures with *num_perm* universal hash functions."""

    def __init__(self, num_perm: int = 64, seed: int = 1):
        if num_perm < 1:
            raise ValueError("num_perm must be >= 1")
        self.num_perm = num_perm
        rng = random.Random(seed)
        self._a = np.array(
            [rng.randrange(1, _MERSENNE_PRIME) for _ in range(num_perm)],
            dtype=np.uint64,
        )
        self._b = np.array(
            [rng.randrange(0, _MERSENNE_PRIME) for _ in range(num_perm)],
            dtype=np.uint64,
        )

    def signature(self, values: Iterable[str]) -> MinHashSignature:
        """MinHash signature of the set of *values* (empty set → all-max)."""
        hashes = np.fromiter(
            (stable_hash(v) for v in set(values)), dtype=np.uint64
        )
        if hashes.size == 0:
            return MinHashSignature(tuple([_MAX_HASH] * self.num_perm))
        # (num_perm, n) universal hashes, then min over the value axis.
        products = (self._a[:, None] * hashes[None, :] + self._b[:, None])
        permuted = (products % _MERSENNE_PRIME) & _MAX_HASH
        mins = permuted.min(axis=1)
        return MinHashSignature(tuple(int(m) for m in mins))


def exact_jaccard(left: set[str], right: set[str]) -> float:
    """Exact Jaccard similarity of two string sets."""
    if not left and not right:
        return 0.0
    union = len(left | right)
    return len(left & right) / union if union else 0.0


def containment(query: set[str], candidate: set[str]) -> float:
    """|query ∩ candidate| / |query| — the join-coverage measure."""
    if not query:
        return 0.0
    return len(query & candidate) / len(query)


class LshIndex:
    """Banded LSH over MinHash signatures for near-neighbour candidate lookup.

    With *bands* bands of ``num_perm / bands`` rows each, two signatures
    collide in at least one band with probability ``1-(1-j^r)^b`` for
    Jaccard ``j`` — the usual S-curve that makes candidate generation
    sub-quadratic.
    """

    def __init__(self, num_perm: int = 64, bands: int = 16):
        if num_perm % bands != 0:
            raise ValueError(
                f"bands ({bands}) must divide num_perm ({num_perm})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self._buckets: list[dict[tuple[int, ...], set[Hashable]]] = [
            defaultdict(set) for _ in range(bands)
        ]
        self._signatures: dict[Hashable, MinHashSignature] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    def add(self, key: Hashable, signature: MinHashSignature) -> None:
        """Index *signature* under *key* (re-adding replaces)."""
        if len(signature) != self.num_perm:
            raise ValueError(
                f"signature length {len(signature)} != num_perm {self.num_perm}"
            )
        if key in self._signatures:
            self.remove(key)
        self._signatures[key] = signature
        for band, band_key in enumerate(self._band_keys(signature)):
            self._buckets[band][band_key].add(key)

    def remove(self, key: Hashable) -> None:
        """Drop *key* from the index (no-op if absent)."""
        signature = self._signatures.pop(key, None)
        if signature is None:
            return
        for band, band_key in enumerate(self._band_keys(signature)):
            self._buckets[band][band_key].discard(key)

    def signature_of(self, key: Hashable) -> MinHashSignature | None:
        return self._signatures.get(key)

    def candidates(self, signature: MinHashSignature) -> set[Hashable]:
        """Keys sharing at least one LSH band with *signature*."""
        found: set[Hashable] = set()
        for band, band_key in enumerate(self._band_keys(signature)):
            found.update(self._buckets[band].get(band_key, ()))
        return found

    def query(
        self, signature: MinHashSignature, threshold: float = 0.5
    ) -> list[tuple[Hashable, float]]:
        """Candidates whose estimated Jaccard ≥ *threshold*, best first."""
        scored = []
        for key in self.candidates(signature):
            estimate = signature.jaccard(self._signatures[key])
            if estimate >= threshold:
                scored.append((key, estimate))
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored

    def _band_keys(self, signature: MinHashSignature):
        for band in range(self.bands):
            start = band * self.rows
            yield tuple(signature.values[start : start + self.rows])
