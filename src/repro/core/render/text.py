"""Plain-text renderers.

One function per view type plus composite renderers for tab strips and
previews, reproducing the Figure 7 layout in a terminal.  All output is
deterministic so examples can be snapshot-tested.
"""

from __future__ import annotations

from repro.core.interface.discovery import Tab
from repro.core.interface.preview import PreviewPane
from repro.core.views.base import ArtifactCard, View
from repro.core.views.categories import CategoriesView
from repro.core.views.embedding import EmbeddingView
from repro.core.views.graph import GraphView
from repro.core.views.hierarchy import HierarchyView, TreeNode
from repro.core.views.listing import ListView, TilesView
from repro.util.textutil import truncate

_CARD_WIDTH = 26


def _card_line(card: ArtifactCard) -> str:
    badges = f" [{','.join(card.badges)}]" if card.badges else ""
    return (
        f"{truncate(card.name, 34):<34} {card.artifact_type:<13} "
        f"{truncate(card.owner_name, 16):<16} views={card.view_count:<5}"
        f"{badges}"
    )


def render_view_text(view: View, max_items: int = 12) -> str:
    """Render any view type to text.

    Degraded views (stale cache served under an open breaker, spent
    deadline) carry an explicit marker in the header so a partial or old
    view is never mistaken for the full, fresh picture.
    """
    header = f"== {view.title} ({view.representation}) =="
    if view.degraded:
        marker = "STALE" if view.stale else "DEGRADED"
        header += f" !! {marker}"
        if view.notice:
            header += f": {view.notice}"
    if isinstance(view, TilesView):
        body = _render_tiles(view, max_items)
    elif isinstance(view, ListView):
        body = _render_list(view, max_items)
    elif isinstance(view, HierarchyView):
        body = _render_hierarchy(view, max_items)
    elif isinstance(view, GraphView):
        body = _render_graph(view, max_items)
    elif isinstance(view, CategoriesView):
        body = _render_categories(view, max_items)
    elif isinstance(view, EmbeddingView):
        body = _render_embedding(view)
    else:
        body = f"({view.count()} artifacts)"
    return f"{header}\n{body}"


def _render_tiles(view: TilesView, max_items: int) -> str:
    lines = []
    shown = 0
    for row in view.rows():
        cells = []
        for card in row:
            if shown >= max_items:
                break
            label = truncate(card.name, _CARD_WIDTH - 2)
            cells.append(f"[{label:<{_CARD_WIDTH - 2}}]")
            shown += 1
        if cells:
            lines.append(" ".join(cells))
        if shown >= max_items:
            break
    remaining = len(view.cards) - shown
    if remaining > 0:
        lines.append(f"... and {remaining} more tiles")
    return "\n".join(lines) if lines else "(empty)"


def _render_list(view: ListView, max_items: int) -> str:
    if not view.cards:
        return "(empty)"
    lines = [_card_line(card) for card in view.cards[:max_items]]
    remaining = len(view.cards) - max_items
    if remaining > 0:
        lines.append(f"... and {remaining} more rows")
    return "\n".join(lines)


def _render_hierarchy(view: HierarchyView, max_items: int) -> str:
    lines: list[str] = []

    def walk(node: TreeNode, indent: int) -> None:
        if len(lines) >= max_items:
            return
        prefix = "  " * indent + ("└─ " if indent else "")
        lines.append(f"{prefix}{node.card.name} ({node.card.artifact_type})")
        for child in node.children:
            walk(child, indent + 1)

    for root in view.roots:
        walk(root, 0)
    if not lines:
        return "(empty)"
    total = view.count()
    if total > max_items:
        lines.append(f"... {total - max_items} more nodes")
    return "\n".join(lines)


def _render_graph(view: GraphView, max_items: int) -> str:
    if not view.cards:
        return "(empty)"
    lines = [f"nodes: {len(view.cards)}  edges: {len(view.edges)}"]
    for edge in view.edges[:max_items]:
        src = next(c.name for c in view.cards if c.artifact_id == edge.src)
        dst = next(c.name for c in view.cards if c.artifact_id == edge.dst)
        label = f" [{edge.label}]" if edge.label else ""
        lines.append(f"  {src} --({edge.weight:.2f}){label}--> {dst}")
    if len(view.edges) > max_items:
        lines.append(f"  ... {len(view.edges) - max_items} more edges")
    return "\n".join(lines)


def _render_categories(view: CategoriesView, max_items: int) -> str:
    if not view.groups:
        return "(empty)"
    lines = []
    for group in view.groups[:max_items]:
        preview = ", ".join(c.name for c in group.preview[:3])
        lines.append(f"{group.name:<16} ({group.total:>4})  {preview}")
    return "\n".join(lines)


def _render_embedding(view: EmbeddingView, width: int = 60, height: int = 16) -> str:
    """ASCII scatter plot of the embedding."""
    if not view.points:
        return "(empty)"
    min_x, min_y, max_x, max_y = view.bounds()
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for point in view.points:
        col = int((point.x - min_x) / span_x * (width - 1))
        row = int((point.y - min_y) / span_y * (height - 1))
        grid[height - 1 - row][col] = "●"
    lines = ["".join(row) for row in grid]
    lines.append(f"({len(view.points)} artifacts)")
    return "\n".join(lines)


def render_tabs_text(tabs: list[Tab], active: int = 0, max_items: int = 10) -> str:
    """The Figure 7B/C layout: a tab strip plus the active tab's view."""
    if not tabs:
        return "(no views available)"
    strip = " | ".join(
        f"*{tab.title}*" if index == active else tab.title
        for index, tab in enumerate(tabs)
    )
    active_tab = tabs[min(active, len(tabs) - 1)]
    return f"[ {strip} ]\n{render_view_text(active_tab.view, max_items)}"


def render_screen_text(
    session,
    query: str = "",
    max_items: int = 8,
) -> str:
    """The full Figure 7 screen: (A) search bar, (B) tab strip, (C) active
    view, (D) preview of the current selection.

    *session* is a :class:`repro.workbook.session.Session`; imported
    structurally to avoid a render → workbook dependency cycle.
    """
    parts = [f"search> {query or '(type to search; Figure 7A)'}"]
    tabs = session.tabs()
    if tabs:
        active = next(
            (i for i, tab in enumerate(tabs)
             if tab.view is session.active_view()),
            0,
        )
        parts.append(render_tabs_text(tabs, active=active,
                                      max_items=max_items))
    else:
        parts.append("(no views — open the home screen first)")
    if session.selection:
        from repro.core.interface.preview import build_preview

        preview = build_preview(session.app.store, session.selection)
        parts.append(render_preview_text(preview))
    return "\n\n".join(parts)


def render_preview_text(preview: PreviewPane) -> str:
    """The Figure 7D preview pane."""
    lines = [
        f"┌─ {preview.name} ({preview.artifact_type})",
        f"│ owner: {preview.owner_name or '-'}   views: {preview.view_count}"
        f"   favorites: {preview.favorite_count}",
        f"│ created {preview.created_days_ago:.0f} days ago",
    ]
    if preview.badges:
        lines.append(f"│ badges: {', '.join(preview.badges)}")
    if preview.tags:
        lines.append(f"│ tags: {', '.join(preview.tags)}")
    if preview.description:
        lines.append(f"│ {truncate(preview.description, 70)}")
    if preview.has_snippet():
        lines.append("│ " + " | ".join(f"{c[:12]:<12}" for c in preview.columns))
        for row in preview.snippet:
            lines.append(
                "│ " + " | ".join(f"{cell[:12]:<12}" for cell in row)
            )
    if preview.upstream:
        lines.append(f"│ upstream: {', '.join(preview.upstream[:4])}")
    if preview.downstream:
        lines.append(f"│ downstream: {', '.join(preview.downstream[:4])}")
    lines.append("└" + "─" * 40)
    return "\n".join(lines)
