"""HTML renderers.

Produce self-contained HTML (inline CSS, inline SVG for graphs and
embeddings) so a generated interface can be opened in a browser — the
closest headless Python gets to the Figure 6/7 screenshots.
"""

from __future__ import annotations

import html

from repro.core.interface.discovery import Tab
from repro.core.views.base import ArtifactCard, View
from repro.core.views.categories import CategoriesView
from repro.core.views.embedding import EmbeddingView
from repro.core.views.graph import GraphView
from repro.core.views.hierarchy import HierarchyView, TreeNode
from repro.core.views.listing import ListView, TilesView

_CSS = """
body { font-family: sans-serif; margin: 1.5rem; color: #222; }
.tabs { display: flex; gap: .5rem; margin-bottom: 1rem; flex-wrap: wrap; }
.tab { padding: .4rem .8rem; border-radius: .4rem; background: #eee; }
.tab.active { background: #2563eb; color: white; }
.tiles { display: grid; grid-template-columns: repeat(4, 1fr); gap: .6rem; }
.card { border: 1px solid #ddd; border-radius: .5rem; padding: .6rem; }
.card h4 { margin: 0 0 .3rem 0; font-size: .95rem; }
.card .meta { color: #666; font-size: .8rem; }
.badge { background: #fde68a; border-radius: .3rem; padding: 0 .3rem;
         font-size: .75rem; margin-right: .2rem; }
table.list { border-collapse: collapse; width: 100%; }
table.list th, table.list td { border-bottom: 1px solid #eee;
  text-align: left; padding: .3rem .6rem; font-size: .9rem; }
ul.tree { list-style: none; }
.category { margin-bottom: .8rem; }
.category .count { color: #666; }
.stale { background: #fecaca; color: #7f1d1d; border-radius: .3rem;
         padding: 0 .4rem; font-size: .75rem; margin-left: .4rem; }
svg { border: 1px solid #eee; border-radius: .5rem; }
"""


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _card_html(card: ArtifactCard) -> str:
    badges = "".join(f'<span class="badge">{_esc(b)}</span>' for b in card.badges)
    return (
        f'<div class="card"><h4>{_esc(card.name)}</h4>'
        f'<div class="meta">{_esc(card.artifact_type)} · '
        f"{_esc(card.owner_name)} · {card.view_count} views</div>"
        f"{badges}</div>"
    )


def render_view_html(view: View, max_items: int = 24) -> str:
    """Render one view as an HTML fragment.

    Degraded views get a visible chip (plus the notice as a tooltip) so
    stale or partial data is never presented as fresh.
    """
    badge = ""
    if view.degraded:
        label = "stale" if view.stale else "degraded"
        badge = (
            f'<span class="stale" title="{_esc(view.notice)}">{label}</span>'
        )
    title = (
        f"<h3>{_esc(view.title)} "
        f"<small>({_esc(view.representation)})</small>{badge}</h3>"
    )
    if isinstance(view, TilesView):
        body = '<div class="tiles">' + "".join(
            _card_html(c) for c in view.cards[:max_items]
        ) + "</div>"
    elif isinstance(view, ListView):
        rows = "".join(
            f"<tr><td>{_esc(c.name)}</td><td>{_esc(c.artifact_type)}</td>"
            f"<td>{_esc(c.owner_name)}</td><td>{c.view_count}</td>"
            f"<td>{_esc(', '.join(c.badges))}</td></tr>"
            for c in view.cards[:max_items]
        )
        body = (
            '<table class="list"><tr><th>Name</th><th>Type</th>'
            "<th>Owner</th><th>Views</th><th>Badges</th></tr>"
            f"{rows}</table>"
        )
    elif isinstance(view, HierarchyView):
        body = "".join(_tree_html(root) for root in view.roots)
    elif isinstance(view, GraphView):
        body = _graph_svg(view)
    elif isinstance(view, CategoriesView):
        body = "".join(
            f'<div class="category"><strong>{_esc(g.name)}</strong> '
            f'<span class="count">({g.total})</span><div class="tiles">'
            + "".join(_card_html(c) for c in g.preview)
            + "</div></div>"
            for g in view.groups[:max_items]
        )
    elif isinstance(view, EmbeddingView):
        body = _embedding_svg(view)
    else:
        body = f"<p>{view.count()} artifacts</p>"
    return f"<section>{title}{body}</section>"


def _tree_html(node: TreeNode) -> str:
    children = "".join(_tree_html(child) for child in node.children)
    child_list = f'<ul class="tree">{children}</ul>' if children else ""
    return (
        f'<ul class="tree"><li>{_esc(node.card.name)} '
        f"<small>({_esc(node.card.artifact_type)})</small>{child_list}</li></ul>"
    )


def _graph_svg(view: GraphView, size: int = 480) -> str:
    positions = view.layout()
    if not positions:
        return "<p>(empty graph)</p>"

    def scale(xy: tuple[float, float]) -> tuple[float, float]:
        pad = 40
        return (
            pad + (xy[0] + 1) / 2 * (size - 2 * pad),
            pad + (xy[1] + 1) / 2 * (size - 2 * pad),
        )

    parts = [f'<svg width="{size}" height="{size}">']
    for edge in view.edges:
        (x1, y1), (x2, y2) = scale(positions[edge.src]), scale(positions[edge.dst])
        parts.append(
            f'<line x1="{x1:.0f}" y1="{y1:.0f}" x2="{x2:.0f}" y2="{y2:.0f}" '
            f'stroke="#94a3b8" stroke-width="{1 + 2 * edge.weight:.1f}"/>'
        )
    names = {c.artifact_id: c.name for c in view.cards}
    for node_id, xy in positions.items():
        x, y = scale(xy)
        parts.append(
            f'<circle cx="{x:.0f}" cy="{y:.0f}" r="8" fill="#2563eb"/>'
            f'<text x="{x + 10:.0f}" y="{y + 4:.0f}" font-size="11">'
            f"{_esc(names.get(node_id, node_id))}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _embedding_svg(view: EmbeddingView, size: int = 480) -> str:
    if not view.points:
        return "<p>(empty embedding)</p>"
    min_x, min_y, max_x, max_y = view.bounds()
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    pad = 20
    parts = [f'<svg width="{size}" height="{size}">']
    for point in view.points:
        x = pad + (point.x - min_x) / span_x * (size - 2 * pad)
        y = size - pad - (point.y - min_y) / span_y * (size - 2 * pad)
        parts.append(
            f'<circle cx="{x:.0f}" cy="{y:.0f}" r="4" fill="#2563eb" '
            f'opacity="0.6"><title>{_esc(point.card.name)}</title></circle>'
        )
    parts.append("</svg>")
    return "".join(parts)


def render_interface_html(tabs: list[Tab], active: int = 0, title: str = "Data Discovery") -> str:
    """A full HTML document with a tab strip and the active view."""
    strip = "".join(
        f'<span class="tab{" active" if i == active else ""}">'
        f"{_esc(tab.title)}</span>"
        for i, tab in enumerate(tabs)
    )
    active_view = (
        render_view_html(tabs[min(active, len(tabs) - 1)].view) if tabs else ""
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f'<body><h2>{_esc(title)}</h2><div class="tabs">{strip}</div>'
        f"{active_view}</body></html>"
    )
