"""Headless renderers for generated views.

Views are plain data; these modules draw them — :mod:`repro.core.render.text`
as terminal-friendly text (what the examples print), and
:mod:`repro.core.render.html` as standalone HTML documents.
"""

from repro.core.render.html import render_interface_html, render_view_html
from repro.core.render.text import (
    render_preview_text,
    render_screen_text,
    render_tabs_text,
    render_view_text,
)

__all__ = [
    "render_interface_html",
    "render_preview_text",
    "render_screen_text",
    "render_tabs_text",
    "render_view_html",
    "render_view_text",
]
