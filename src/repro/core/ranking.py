"""The ranking engine (Section 4.2, Listing 1).

"Values of metadata fields are multiplied with the ranking factor, which
results in an overall ranking score that can be combined between metadata
providers."  The engine is deliberately dumb: a weighted sum over resolved
field values plus the provider's own base score.  All tuning lives in the
spec, so retuning ranking never touches this module — the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.spec.model import HumboldtSpec, RankingWeight
from repro.providers.base import ScoredArtifact
from repro.providers.fields import FieldResolver


@dataclass(frozen=True)
class RankedArtifact:
    """An artifact with its final combined score and the score breakdown."""

    artifact_id: str
    score: float
    base_score: float = 0.0
    contributions: tuple[tuple[str, float], ...] = ()


class Ranker:
    """Scores artifacts with spec-declared weights over resolved fields."""

    def __init__(self, resolver: FieldResolver):
        self.resolver = resolver

    def score(
        self,
        artifact_id: str,
        weights: Sequence[RankingWeight],
        base_score: float = 0.0,
        fields: dict[str, float] | None = None,
    ) -> RankedArtifact:
        """Score one artifact.

        *fields* is an optional pre-resolved field map (providers attach
        one to each item); missing fields fall back to the resolver.
        """
        contributions = []
        total = base_score
        for weight in weights:
            if fields is not None and weight.field in fields:
                value = float(fields[weight.field])
            else:
                value = self.resolver.value(artifact_id, weight.field)
            contribution = value * weight.weight
            total += contribution
            contributions.append((weight.field, round(contribution, 6)))
        return RankedArtifact(
            artifact_id=artifact_id,
            score=round(total, 6),
            base_score=base_score,
            contributions=tuple(contributions),
        )

    def rank_items(
        self,
        items: Iterable[ScoredArtifact],
        weights: Sequence[RankingWeight],
        live: bool = False,
    ) -> list[RankedArtifact]:
        """Rank provider items; ties break on artifact id for determinism.

        With ``live=True``, fields the resolver serves are re-resolved
        from the catalog instead of read from the items' attached
        snapshots — provider results may come from a cache, and a view
        truncated on snapshot values would pin stale usage numbers into
        its visible head.  Snapshots still win for provider-computed
        fields the resolver cannot serve (e.g. per-item match counts).
        """
        ranked = [
            self.score(
                item.artifact_id,
                weights,
                base_score=item.score,
                fields={
                    k: v
                    for k, v in item.fields.items()
                    if isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    and not (live and self.resolver.serves(k))
                },
            )
            for item in items
        ]
        ranked.sort(key=lambda r: (-r.score, r.artifact_id))
        return ranked

    def rank_ids(
        self, artifact_ids: Iterable[str], weights: Sequence[RankingWeight]
    ) -> list[RankedArtifact]:
        """Rank bare artifact ids (used by search-result ordering)."""
        ranked = [self.score(aid, weights) for aid in artifact_ids]
        ranked.sort(key=lambda r: (-r.score, r.artifact_id))
        return ranked


def combine_rankings(
    rankings: Sequence[Sequence[RankedArtifact]],
) -> list[RankedArtifact]:
    """Combine per-provider rankings into one (§4.2).

    An artifact appearing in several providers' results accumulates its
    scores — numeric ranking is exactly what makes cross-provider
    combination well-defined, which is why the paper chose it.
    """
    merged: dict[str, RankedArtifact] = {}
    for ranking in rankings:
        for entry in ranking:
            current = merged.get(entry.artifact_id)
            if current is None:
                merged[entry.artifact_id] = entry
            else:
                merged[entry.artifact_id] = RankedArtifact(
                    artifact_id=entry.artifact_id,
                    score=round(current.score + entry.score, 6),
                    base_score=current.base_score + entry.base_score,
                    contributions=current.contributions + entry.contributions,
                )
    combined = list(merged.values())
    combined.sort(key=lambda r: (-r.score, r.artifact_id))
    return combined


def effective_weights(
    spec: HumboldtSpec, provider_name: str
) -> tuple[RankingWeight, ...]:
    """Provider weights with global fallback — re-exported for callers that
    hold a spec but not the provider object."""
    return spec.effective_ranking(provider_name)
