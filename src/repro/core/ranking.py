"""The ranking engine (Section 4.2, Listing 1).

"Values of metadata fields are multiplied with the ranking factor, which
results in an overall ranking score that can be combined between metadata
providers."  The engine is deliberately dumb: a weighted sum over resolved
field values plus the provider's own base score.  All tuning lives in the
spec, so retuning ranking never touches this module — the paper's point.

**Stability: internal.**  Import through :mod:`repro` / the package
facades; this module's names may change without notice.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.spec.model import HumboldtSpec, RankingWeight
from repro.providers.base import ScoredArtifact
from repro.providers.fields import FieldResolver


@dataclass(frozen=True)
class RankedArtifact:
    """An artifact with its final combined score and the score breakdown."""

    artifact_id: str
    score: float
    base_score: float = 0.0
    contributions: tuple[tuple[str, float], ...] = ()


class Ranker:
    """Scores artifacts with spec-declared weights over resolved fields."""

    def __init__(self, resolver: FieldResolver):
        self.resolver = resolver

    def score(
        self,
        artifact_id: str,
        weights: Sequence[RankingWeight],
        base_score: float = 0.0,
        fields: dict[str, float] | None = None,
    ) -> RankedArtifact:
        """Score one artifact.

        *fields* is an optional pre-resolved field map (providers attach
        one to each item); missing fields fall back to the resolver.
        """
        contributions = []
        total = base_score
        for weight in weights:
            if fields is not None and weight.field in fields:
                value = float(fields[weight.field])
            else:
                value = self.resolver.value(artifact_id, weight.field)
            contribution = value * weight.weight
            total += contribution
            contributions.append((weight.field, round(contribution, 6)))
        return RankedArtifact(
            artifact_id=artifact_id,
            score=round(total, 6),
            base_score=base_score,
            contributions=tuple(contributions),
        )

    def top_k(
        self,
        artifact_ids: Iterable[str],
        weights: Sequence[RankingWeight],
        limit: int,
        base_scores: "dict[str, float] | None" = None,
    ) -> list[RankedArtifact]:
        """The top-*limit* artifacts by combined score, lazily built.

        The full-sort path (:meth:`rank_ids`) constructs a
        :class:`RankedArtifact` — rounded per-field contribution tuples
        included — for *every* candidate, then throws all but the head
        away.  This path scores with plain floats (one
        :meth:`FieldResolver.values_batch` pass, no tuples), heap-selects
        the head with :func:`heapq.nsmallest`, and builds contribution
        breakdowns only for the ≤ *limit* entries actually returned.

        Ordering is bit-identical to the sort path: scores are rounded
        the same way and ties break on artifact id.  ``limit <= 0``
        returns no entries (the cap semantics of search).
        """
        ids = list(artifact_ids)
        if limit <= 0 or not ids:
            return []
        base_scores = base_scores or {}
        columns = self.resolver.values_batch(ids, [w.field for w in weights])
        weight_columns = [(w.weight, columns[w.field]) for w in weights]
        keyed = []
        for index, aid in enumerate(ids):
            total = base_scores.get(aid, 0.0)
            for weight, column in weight_columns:
                total += column[index] * weight
            keyed.append((-round(total, 6), aid))
        head = heapq.nsmallest(limit, keyed)
        return [
            self.score(aid, weights, base_score=base_scores.get(aid, 0.0))
            for _, aid in head
        ]

    def top_k_items(
        self,
        items: Iterable[ScoredArtifact],
        weights: Sequence[RankingWeight],
        limit: int,
        live: bool = False,
    ) -> list[RankedArtifact]:
        """Lazy top-*limit* selection over provider items.

        Same contract as :meth:`rank_items` truncated to *limit* (same
        scores, same live-field semantics, same tie-breaks), but scoring
        runs on plain floats over batch-resolved columns and only the
        returned head pays for :class:`RankedArtifact` construction.
        ``limit <= 0`` falls back to the full sort — an uncapped caller
        needs every entry ranked anyway.
        """
        items = list(items)
        if limit <= 0:
            return self.rank_items(items, weights, live=live)
        snapshots = [
            {
                k: v
                for k, v in item.fields.items()
                if isinstance(v, (int, float))
                and not isinstance(v, bool)
                and not (live and self.resolver.serves(k))
            }
            for item in items
        ]
        columns = self.resolver.values_batch(
            [item.artifact_id for item in items], [w.field for w in weights]
        )
        keyed = []
        for index, item in enumerate(items):
            total = item.score
            snapshot = snapshots[index]
            for weight in weights:
                if weight.field in snapshot:
                    value = float(snapshot[weight.field])
                else:
                    value = columns[weight.field][index]
                total += value * weight.weight
            keyed.append((-round(total, 6), item.artifact_id, index))
        head = heapq.nsmallest(limit, keyed)
        return [
            self.score(
                items[index].artifact_id,
                weights,
                base_score=items[index].score,
                fields=snapshots[index],
            )
            for _, _, index in head
        ]

    def rank_items(
        self,
        items: Iterable[ScoredArtifact],
        weights: Sequence[RankingWeight],
        live: bool = False,
    ) -> list[RankedArtifact]:
        """Rank provider items; ties break on artifact id for determinism.

        With ``live=True``, fields the resolver serves are re-resolved
        from the catalog instead of read from the items' attached
        snapshots — provider results may come from a cache, and a view
        truncated on snapshot values would pin stale usage numbers into
        its visible head.  Snapshots still win for provider-computed
        fields the resolver cannot serve (e.g. per-item match counts).
        """
        ranked = [
            self.score(
                item.artifact_id,
                weights,
                base_score=item.score,
                fields={
                    k: v
                    for k, v in item.fields.items()
                    if isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    and not (live and self.resolver.serves(k))
                },
            )
            for item in items
        ]
        ranked.sort(key=lambda r: (-r.score, r.artifact_id))
        return ranked

    def rank_ids(
        self, artifact_ids: Iterable[str], weights: Sequence[RankingWeight]
    ) -> list[RankedArtifact]:
        """Rank bare artifact ids (used by search-result ordering)."""
        ranked = [self.score(aid, weights) for aid in artifact_ids]
        ranked.sort(key=lambda r: (-r.score, r.artifact_id))
        return ranked


def combine_rankings(
    rankings: Sequence[Sequence[RankedArtifact]],
) -> list[RankedArtifact]:
    """Combine per-provider rankings into one (§4.2).

    An artifact appearing in several providers' results accumulates its
    scores — numeric ranking is exactly what makes cross-provider
    combination well-defined, which is why the paper chose it.
    """
    merged: dict[str, RankedArtifact] = {}
    for ranking in rankings:
        for entry in ranking:
            current = merged.get(entry.artifact_id)
            if current is None:
                merged[entry.artifact_id] = entry
            else:
                merged[entry.artifact_id] = RankedArtifact(
                    artifact_id=entry.artifact_id,
                    score=round(current.score + entry.score, 6),
                    base_score=current.base_score + entry.base_score,
                    contributions=current.contributions + entry.contributions,
                )
    combined = list(merged.values())
    combined.sort(key=lambda r: (-r.score, r.artifact_id))
    return combined


def effective_weights(
    spec: HumboldtSpec, provider_name: str
) -> tuple[RankingWeight, ...]:
    """Provider weights with global fallback — re-exported for callers that
    hold a spec but not the provider object."""
    return spec.effective_ranking(provider_name)
