"""Exploration: selection-driven view surfacing (Sections 5.2 and 6.3).

"Whenever a user interacts with a data element, the metadata of this
element can be used to inform and surface more metadata providers."

Given a selected artifact, the engine derives candidate input values from
its metadata — the artifact itself, its owner, its badges, its type, its
team — and generates a view for every exploration-visible provider whose
required input one of those values satisfies.  Selecting AIRLINES thus
surfaces Owned By (Alex), Badged (endorsed), Of Type (table), Joinable,
Lineage and Similar, exactly the §6.3 walk-through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interface.discovery import DiscoveryInterface
from repro.core.spec.model import ProviderSpec
from repro.core.views.base import View
from repro.errors import ProviderError
from repro.providers.execution import ProviderHealth

#: Cap on how many values of one input type fan out into views (an
#: artifact with ten badges should not spawn ten Badged views).
MAX_VALUES_PER_TYPE = 3


@dataclass(frozen=True)
class SurfacedView:
    """A provider view surfaced by a selection."""

    provider_name: str
    title: str
    reason: str  # e.g. "badge = endorsed"
    inputs: dict[str, str]
    view: View


class ExplorationEngine:
    """Generates the exploration panel for a selected artifact."""

    def __init__(self, interface: DiscoveryInterface):
        self.interface = interface
        #: Per-provider health markers from the last :meth:`explore`
        #: fan-out — degraded entries explain missing or stale panels.
        self.last_health: list[ProviderHealth] = []

    def derive_input_values(self, artifact_id: str) -> dict[str, list[str]]:
        """Candidate input values per input type, from the selection."""
        artifact = self.interface.store.artifact(artifact_id)
        values: dict[str, list[str]] = {"artifact": [artifact_id]}
        if artifact.owner_id:
            values["user"] = [artifact.owner_id]
        badges = list(dict.fromkeys(artifact.badge_names()))
        if badges:
            values["badge"] = badges[:MAX_VALUES_PER_TYPE]
        values["artifact_type"] = [artifact.artifact_type.value]
        if artifact.team_ids:
            values["team"] = list(artifact.team_ids[:MAX_VALUES_PER_TYPE])
        if artifact.tags:
            values["text"] = list(artifact.tags[:MAX_VALUES_PER_TYPE])
        return values

    def explore(
        self,
        artifact_id: str,
        user_id: str = "",
        team_id: str = "",
        limit: int = 10,
        budget_ms: float | None = None,
    ) -> list[SurfacedView]:
        """All views surfaced by selecting *artifact_id*, spec order.

        Views that come back empty are dropped — surfacing an empty
        "Similar" panel is noise, not discovery.  The selected artifact
        itself is excluded from list-like results.

        *budget_ms* bounds the fan-out; skipped or failed providers lose
        their panel (recorded in :attr:`last_health`), stale ones keep it
        with the view flagged ``stale``.
        """
        values = self.derive_input_values(artifact_id)
        providers = self.interface.customization.effective_providers(
            self.interface.spec, "exploration", user_id=user_id, team_id=team_id
        )
        # Resolve every candidate binding first, then fan all fetches out
        # in one batch — the exploration panel's providers are independent,
        # so they execute on the engine's thread pool while the ordering
        # (spec order, then binding order) stays deterministic.
        candidates = []
        for provider in providers:
            for inputs, reason in self._bindings(provider, values):
                try:
                    _, merged, request = self.interface.resolve_request(
                        provider.name,
                        inputs,
                        user_id=user_id,
                        team_id=team_id,
                        limit=limit,
                    )
                except ProviderError:
                    continue
                candidates.append((provider, inputs, merged, reason, request))
        outcomes = self.interface.engine.execute_many(
            [(p.endpoint, request) for p, _, _, _, request in candidates],
            deadline=self.interface.engine.deadline(budget_ms),
        )
        self.last_health = []
        surfaced: list[SurfacedView] = []
        for (provider, inputs, merged, reason, _), outcome in zip(
            candidates, outcomes
        ):
            if outcome.degraded:
                self.last_health.append(outcome.health_marker(provider.name))
            if outcome.result is None:
                continue  # failed or skipped: this panel degrades away
            try:
                view = self.interface.factory.build(
                    provider,
                    outcome.result,
                    inputs=merged,
                    limit=limit,
                    stale=outcome.stale,
                    notice=outcome.reason,
                )
            except ProviderError:
                continue
            view = self._drop_self(view, artifact_id, provider)
            if view.is_empty():
                continue
            surfaced.append(
                SurfacedView(
                    provider_name=provider.name,
                    title=provider.title,
                    reason=reason,
                    inputs=inputs,
                    view=view,
                )
            )
        return surfaced

    def pivot(
        self,
        input_type: str,
        value: str,
        user_id: str = "",
        team_id: str = "",
        limit: int = 20,
    ) -> list[SurfacedView]:
        """Entity pivot: views for one metadata value (§7.2 improvement).

        Participants asked for "clicking on an owner to see their data
        artifacts"; this is that interaction generalised — pivot on any
        input type (``user``, ``badge``, ``artifact_type``, ``team``,
        ``text``/tag, ``artifact``) and every exploration-visible
        provider accepting that input generates a view.
        """
        if input_type not in ("artifact", "user", "team", "badge",
                              "artifact_type", "text"):
            raise ValueError(f"unknown input type {input_type!r}")
        providers = self.interface.customization.effective_providers(
            self.interface.spec, "exploration", user_id=user_id,
            team_id=team_id,
        )
        surfaced: list[SurfacedView] = []
        for provider in providers:
            required = provider.required_inputs()
            if not required or required[0].input_type != input_type:
                continue
            inputs = {required[0].name: value}
            try:
                view = self.interface.open_view(
                    provider.name, inputs=inputs, user_id=user_id,
                    team_id=team_id, limit=limit,
                )
            except ProviderError:
                continue
            if view.is_empty():
                continue
            surfaced.append(
                SurfacedView(
                    provider_name=provider.name,
                    title=provider.title,
                    reason=f"{input_type} = {value}",
                    inputs=inputs,
                    view=view,
                )
            )
        return surfaced

    # -- internals ----------------------------------------------------------

    def _bindings(
        self, provider: ProviderSpec, values: dict[str, list[str]]
    ) -> list[tuple[dict[str, str], str]]:
        """Input bindings for *provider* from derived values.

        Only providers that *need* a selection-derived input are surfaced
        during exploration; no-input providers already live in overviews.
        """
        required = provider.required_inputs()
        if not required:
            return []
        primary = required[0]
        candidates = values.get(primary.input_type, [])
        bindings = []
        for value in candidates[:MAX_VALUES_PER_TYPE]:
            bindings.append(
                ({primary.name: value}, f"{primary.input_type} = {value}")
            )
        return bindings

    def _drop_self(
        self, view: View, artifact_id: str, provider: ProviderSpec
    ) -> View:
        """Remove the selected artifact from list-like surfaced views.

        Graph/hierarchy views keep it — it is their anchor node.
        """
        if provider.representation.value in ("graph", "hierarchy"):
            return view
        remaining = set(view.artifact_ids()) - {artifact_id}
        return view.filtered(remaining)
