"""The configuration panel (Section 4.4, Figure 4).

"Team administrators can select from the list of metadata providers to
enable their visibility and use in the data discovery UI" — and individual
users "can hide and reorder the metadata providers that they have access
to".  The panel is the UI model for both: it lists providers with their
enabled state for a scope (team or user) and applies toggles/reorders to
the corresponding customization layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interface.discovery import DiscoveryInterface
from repro.core.spec.customization import CustomizationLayer
from repro.errors import ConfigurationError, UnknownProviderError


@dataclass(frozen=True)
class ProviderToggle:
    """One row of the configuration panel."""

    name: str
    title: str
    category: str
    description: str
    enabled: bool
    surfaces: tuple[str, ...]


class ConfigurationPanel:
    """Edits a team's or a user's customization layer."""

    def __init__(
        self,
        interface: DiscoveryInterface,
        scope: str,
        scope_id: str,
        acting_user: str = "",
    ):
        if scope not in ("team", "user", "org"):
            raise ConfigurationError(
                f"scope must be 'team', 'user' or 'org', got {scope!r}"
            )
        self.interface = interface
        self.scope = scope
        self.scope_id = scope_id
        if scope == "team":
            acting = acting_user or scope_id
            team = interface.store.team(scope_id)
            if not team.is_admin(acting):
                raise ConfigurationError(
                    f"user {acting!r} is not an admin of team {team.name!r}"
                )

    # -- reading -------------------------------------------------------------

    def _layer(self) -> CustomizationLayer:
        customization = self.interface.customization
        if self.scope == "team":
            return customization.team_layer(self.scope_id)
        if self.scope == "user":
            return customization.user_layer(self.scope_id)
        return customization.org

    def rows(self) -> list[ProviderToggle]:
        """Every specified provider with its enabled state in this scope."""
        layer = self._layer()
        rows = []
        for provider in self.interface.spec.providers:
            rows.append(
                ProviderToggle(
                    name=provider.name,
                    title=provider.title,
                    category=provider.category,
                    description=provider.description,
                    enabled=provider.name not in layer.hidden,
                    surfaces=provider.visibility.surfaces(),
                )
            )
        return rows

    def enabled_names(self) -> list[str]:
        return [row.name for row in self.rows() if row.enabled]

    # -- editing ----------------------------------------------------------------

    def set_enabled(self, provider_name: str, enabled: bool) -> None:
        """Toggle one provider's visibility in this scope."""
        if provider_name not in self.interface.spec:
            raise UnknownProviderError(provider_name)
        layer = self._layer()
        if enabled:
            layer.unhide(provider_name)
        else:
            layer.hide(provider_name)

    def reorder(self, provider_names: list[str]) -> None:
        """Set the preferred provider order for this scope."""
        unknown = [n for n in provider_names if n not in self.interface.spec]
        if unknown:
            raise UnknownProviderError(unknown[0])
        self._layer().set_order(provider_names)

    def reset(self) -> None:
        """Drop all customization in this scope."""
        customization = self.interface.customization
        if self.scope == "team":
            customization.reset_team(self.scope_id)
        elif self.scope == "user":
            customization.reset_user(self.scope_id)
        else:
            customization.org = CustomizationLayer()
