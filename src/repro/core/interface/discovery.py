"""The generated data discovery interface.

:class:`DiscoveryInterface` is what Humboldt produces for a host
application: hand it a catalog, an endpoint registry and a specification
and it generates overview tabs (Figure 7B/C), spec-driven search with
autocomplete (Figure 7A), view filtering, and exploration from selections.
Swapping the spec swaps the UI — no code here knows any provider.

**Stability: internal.**  Import through :mod:`repro` / the package
facades; this module's names may change without notice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.store import CatalogStore
from repro.core.query.autocomplete import Autocompleter, Suggestion
from repro.core.query.evaluator import QueryEvaluator, SearchResult
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.core.spec.customization import Customization
from repro.core.spec.model import HumboldtSpec, ProviderSpec
from repro.core.spec.validation import validate_spec
from repro.core.views.base import View, make_card
from repro.core.views.factory import ViewFactory
from repro.core.views.listing import ListView
from repro.errors import MissingInputError, ProviderError, UnknownProviderError
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    ExecutionStats,
    FetchStatus,
    ProviderHealth,
)
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry


@dataclass(frozen=True)
class Tab:
    """One overview tab: the provider it came from and its generated view."""

    provider_name: str
    title: str
    category: str
    view: View


class DiscoveryInterface:
    """A complete, generated data discovery UI (headless)."""

    def __init__(
        self,
        store: CatalogStore,
        registry: EndpointRegistry,
        spec: HumboldtSpec,
        customization: Customization | None = None,
        validate: bool = True,
        engine: ExecutionEngine | None = None,
        policy: ExecutionPolicy | None = None,
    ):
        if validate:
            validate_spec(spec, registry=registry)
        self.store = store
        self.registry = registry
        #: The single execution layer every fetch of this interface (and
        #: its evaluator/exploration consumers) routes through.  *policy*
        #: configures a newly-built engine; ignored when *engine* is
        #: passed in (the caller already configured it).
        self.engine = engine or ExecutionEngine(
            registry, store=store, policy=policy
        )
        self.spec = spec
        # Surface spec-declared metadata-domain dependencies to the
        # engine so dependency-aware cache invalidation covers endpoints
        # whose callables carry no @depends_on decoration of their own.
        for provider in spec.providers:
            if provider.dependencies:
                self.engine.declare_dependencies(
                    provider.endpoint, provider.dependencies
                )
        self.customization = customization or Customization()
        self.resolver = FieldResolver(store)
        self.ranker = Ranker(self.resolver)
        self.language = QueryLanguage(spec)
        self.evaluator = QueryEvaluator(store, self.engine, self.language, self.ranker)
        self.factory = ViewFactory(store, spec, self.ranker)
        self.autocompleter = Autocompleter(self.language, store)
        #: (provider, message) pairs skipped during the last overview
        #: generation because their endpoint failed (fault containment).
        self.last_errors: list[tuple[str, str]] = []
        #: Per-provider health markers from the last overview generation
        #: (ok, stale, skipped and error alike) — the interface-level
        #: degradation report backing the CLI's ``health`` subcommand.
        self.last_health: list[ProviderHealth] = []

    # -- spec evolution -----------------------------------------------------

    def with_spec(self, spec: HumboldtSpec) -> "DiscoveryInterface":
        """A new interface generated from an updated spec.

        This is the paper's headline move: adding/removing a provider is a
        spec change; the interface regenerates, no UI code changes.

        The execution engine is shared (its stats span spec versions) but
        its cache is invalidated — the new spec may bind the same
        endpoints with different limits or visibility.
        """
        self.engine.invalidate()
        return DiscoveryInterface(
            store=self.store,
            registry=self.registry,
            spec=spec,
            customization=self.customization,
            engine=self.engine,
        )

    # -- overviews (§5.1) ------------------------------------------------------

    def overview_tabs(
        self,
        user_id: str = "",
        team_id: str = "",
        limit: int = 20,
        budget_ms: float | None = None,
    ) -> list[Tab]:
        """Generate the overview tabs for a user (Figure 7B).

        Providers visible on the overview surface (after customization
        layers) whose required inputs are satisfiable from ambient context
        (the user, their team) each become a tab.

        *budget_ms* bounds the fan-out's provider work; once spent,
        remaining providers are skipped (or served stale).  Degradation
        is reported per provider in :attr:`last_health`: a failed or
        skipped provider loses its tab (the §6.1 contract), a stale one
        keeps its tab with the view flagged ``stale``.
        """
        providers = self.customization.effective_providers(
            self.spec, "overview", user_id=user_id, team_id=team_id
        )
        context = RequestContext(user_id=user_id, team_id=team_id, limit=limit)
        self.last_errors = []
        self.last_health = []
        candidates = [
            (provider, inputs)
            for provider in providers
            for inputs in [self._ambient_inputs(provider, user_id, team_id)]
            if provider.is_ready(inputs)
        ]
        # One parallel fan-out instead of a serial fetch per provider;
        # outcomes align with candidates, so tab order stays spec order.
        outcomes = self.engine.execute_many(
            [
                (provider.endpoint, ProviderRequest(inputs=inputs, context=context))
                for provider, inputs in candidates
            ],
            deadline=self.engine.deadline(budget_ms),
        )
        tabs = []
        for (provider, inputs), outcome in zip(candidates, outcomes):
            if isinstance(outcome.error, MissingInputError):
                # The provider needs an input the session context cannot
                # supply (e.g. a team view for a team-less user): §6.1 says
                # to simply not generate the view.
                continue
            if outcome.skipped:
                self.last_health.append(outcome.health_marker(provider.name))
                self.last_errors.append((provider.name, str(outcome.error)))
                continue
            try:
                if outcome.error is not None:
                    raise outcome.error
                view = self.factory.build(
                    provider,
                    outcome.result,
                    inputs=inputs,
                    limit=limit,
                    stale=outcome.stale,
                    notice=outcome.reason,
                )
            except ProviderError as exc:
                # A broken endpoint must degrade only its own view, never
                # the whole generated interface.
                self.last_health.append(
                    ProviderHealth(
                        provider=provider.name,
                        endpoint=provider.endpoint,
                        status=FetchStatus.ERROR.value,
                        detail=str(exc),
                    )
                )
                self.last_errors.append((provider.name, str(exc)))
                continue
            self.last_health.append(outcome.health_marker(provider.name))
            tabs.append(
                Tab(
                    provider_name=provider.name,
                    title=provider.title,
                    category=provider.category,
                    view=view,
                )
            )
        return tabs

    @property
    def degraded(self) -> bool:
        """Whether the last overview generation was anything but fully
        fresh (any stale, skipped or failed provider)."""
        return any(marker.degraded for marker in self.last_health) or bool(
            self.last_errors
        )

    def open_view(
        self,
        provider_name: str,
        inputs: dict[str, str] | None = None,
        user_id: str = "",
        team_id: str = "",
        limit: int = 20,
    ) -> View:
        """Generate a single provider's view with explicit inputs."""
        provider, merged, request = self.resolve_request(
            provider_name, inputs, user_id=user_id, team_id=team_id, limit=limit
        )
        outcome = self.engine.execute(provider.endpoint, request)
        if outcome.result is None:
            raise outcome.error
        return self.factory.build(
            provider,
            outcome.result,
            inputs=merged,
            limit=limit,
            stale=outcome.stale,
            notice=outcome.reason,
        )

    def resolve_request(
        self,
        provider_name: str,
        inputs: dict[str, str] | None = None,
        user_id: str = "",
        team_id: str = "",
        limit: int = 20,
    ) -> tuple[ProviderSpec, dict[str, str], ProviderRequest]:
        """Bind a provider call without executing it.

        Merges explicit inputs over ambient ones and enforces required
        inputs; callers (exploration) batch the returned requests through
        :meth:`ExecutionEngine.fetch_many`.
        """
        provider = self.spec.provider(provider_name)
        inputs = dict(inputs or {})
        merged = {**self._ambient_inputs(provider, user_id, team_id), **inputs}
        missing = [
            spec.name
            for spec in provider.required_inputs()
            if not merged.get(spec.name)
        ]
        if missing:
            raise MissingInputError(provider_name, missing[0])
        context = RequestContext(user_id=user_id, team_id=team_id, limit=limit)
        return (provider, merged, ProviderRequest(inputs=merged, context=context))

    # -- search and filters (§5.3, §6.4) ------------------------------------------

    def search(
        self,
        query: str,
        user_id: str = "",
        team_id: str = "",
        universe: list[str] | None = None,
        limit: int = 50,
        budget_ms: float | None = None,
    ) -> tuple[SearchResult, ListView]:
        """Run a query; returns the result and its list view.

        "Whenever a search query is entered, results are shown in a new
        search tab using the list view."

        *budget_ms* bounds the search's provider work (see
        :meth:`QueryEvaluator.search`); a degraded result flags the view.
        """
        context = RequestContext(user_id=user_id, team_id=team_id, limit=limit)
        result = self.evaluator.search(
            query,
            context=context,
            universe=universe,
            limit=limit,
            budget_ms=budget_ms,
        )
        cards = tuple(
            make_card(self.store, entry.artifact_id, score=entry.score)
            for entry in result.entries
        )
        notice = "; ".join(
            f"{marker.provider}: {marker.status}" for marker in result.health
        )
        view = ListView(
            view_id=f"search[{query}]",
            provider_name="search",
            title="Search Results",
            representation="list",
            description=f"Results for: {result.query.text}",
            inputs={},
            cards=cards,
            stale=any(m.status == FetchStatus.STALE.value for m in result.health),
            degraded=result.degraded,
            notice=notice,
        )
        return (result, view)

    def filter_view(
        self, view: View, query: str, user_id: str = "", team_id: str = ""
    ) -> View:
        """Filter *view* by *query* — search scoped to the view (§5.3)."""
        result = self.evaluator.search(
            query,
            context=RequestContext(user_id=user_id, team_id=team_id),
            universe=view.artifact_ids(),
            limit=len(view.artifact_ids()) or 1,
        )
        return view.filtered(set(result.artifact_ids()))

    def suggest(self, partial_query: str, limit: int = 8) -> list[Suggestion]:
        """Autocomplete for the search bar (Figure 5)."""
        return self.autocompleter.suggest(partial_query, limit=limit)

    # -- internals ------------------------------------------------------------------

    def _ambient_inputs(
        self, provider: ProviderSpec, user_id: str, team_id: str
    ) -> dict[str, str]:
        """Bind inputs satisfiable from session context (user, team)."""
        inputs: dict[str, str] = {}
        if not team_id and user_id:
            teams = self.store.teams_of(user_id)
            if teams:
                team_id = teams[0].id
        for spec in provider.inputs:
            if spec.input_type == "user" and user_id:
                inputs[spec.name] = user_id
            elif spec.input_type == "team" and team_id:
                inputs[spec.name] = team_id
        return inputs

    # -- observability ---------------------------------------------------------

    @property
    def stats(self) -> ExecutionStats:
        """Execution metrics for every fetch this interface performed."""
        return self.engine.stats

    def provider_titles(self) -> dict[str, str]:
        """name -> title for every specified provider (UI labelling)."""
        return {p.name: p.title for p in self.spec.providers}

    def describe_provider(self, name: str) -> str:
        """Human-readable provider description (a study ask: P1/P4)."""
        try:
            provider = self.spec.provider(name)
        except UnknownProviderError:
            return ""
        inputs = ", ".join(
            f"{i.name} ({i.input_type}{'' if i.required else ', optional'})"
            for i in provider.inputs
        )
        parts = [provider.title, provider.description]
        if inputs:
            parts.append(f"Inputs: {inputs}")
        parts.append(f"Shown as: {provider.representation.value}")
        return " — ".join(part for part in parts if part)
