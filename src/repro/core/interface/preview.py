"""Content preview pane (Figure 7D).

"A content preview is shown when an individual data artifact is selected.
In this case, the data artifact is a table, and the preview shows a
snippet of the table."  For tables/datasets we assemble the snippet from
column sample values; other artifact types preview their metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.model import ArtifactType
from repro.catalog.store import CatalogStore

#: Snippet dimensions.
PREVIEW_ROWS = 5
PREVIEW_COLUMNS = 6


@dataclass(frozen=True)
class PreviewPane:
    """Resolved preview content for one selected artifact."""

    artifact_id: str
    name: str
    artifact_type: str
    description: str
    owner_name: str
    badges: tuple[str, ...]
    tags: tuple[str, ...]
    view_count: int
    favorite_count: int
    created_days_ago: float
    columns: tuple[str, ...] = ()
    snippet: tuple[tuple[str, ...], ...] = ()  # rows of the table snippet
    upstream: tuple[str, ...] = ()  # names of direct upstream artifacts
    downstream: tuple[str, ...] = ()  # names of direct downstream artifacts

    def has_snippet(self) -> bool:
        return bool(self.snippet)


def build_preview(store: CatalogStore, artifact_id: str) -> PreviewPane:
    """Assemble the preview for *artifact_id*."""
    artifact = store.artifact(artifact_id)
    stats = store.usage_stats(artifact_id)
    owner_name = ""
    if artifact.owner_id:
        try:
            owner_name = store.user(artifact.owner_id).name
        except KeyError:
            owner_name = artifact.owner_id

    columns: tuple[str, ...] = ()
    snippet: tuple[tuple[str, ...], ...] = ()
    if artifact.artifact_type in (ArtifactType.TABLE, ArtifactType.DATASET):
        shown = artifact.columns[:PREVIEW_COLUMNS]
        columns = tuple(c.name for c in shown)
        rows = []
        for row_index in range(PREVIEW_ROWS):
            row = tuple(
                c.sample_values[row_index] if row_index < len(c.sample_values)
                else ""
                for c in shown
            )
            if any(cell for cell in row):
                rows.append(row)
        snippet = tuple(rows)

    upstream = tuple(
        store.artifact(aid).name
        for aid in store.lineage.parents(artifact_id)
        if store.has_artifact(aid)
    )
    downstream = tuple(
        store.artifact(aid).name
        for aid in store.lineage.children(artifact_id)
        if store.has_artifact(aid)
    )
    return PreviewPane(
        artifact_id=artifact_id,
        name=artifact.name,
        artifact_type=artifact.artifact_type.value,
        description=artifact.description,
        owner_name=owner_name,
        badges=artifact.badge_names(),
        tags=artifact.tags,
        view_count=stats.view_count,
        favorite_count=stats.favorite_count,
        created_days_ago=round(
            max(store.clock.days_since(artifact.created_at), 0.0), 2
        ),
        columns=columns,
        snippet=snippet,
        upstream=upstream,
        downstream=downstream,
    )
