"""Interface construction (Section 5).

A :class:`DiscoveryInterface` is generated from a Humboldt specification:
overview tabs from overview-visible providers, an exploration engine that
surfaces providers parameterised by a selected artifact's metadata, search
backed by the spec-generated query language, preview panes, team home
pages and the admin configuration panel of Figure 4.
"""

from repro.core.interface.config import ConfigurationPanel, ProviderToggle
from repro.core.interface.discovery import DiscoveryInterface, Tab
from repro.core.interface.exploration import ExplorationEngine, SurfacedView
from repro.core.interface.homepage import HomePage, HomePageManager
from repro.core.interface.preview import PreviewPane, build_preview

__all__ = [
    "ConfigurationPanel",
    "DiscoveryInterface",
    "ExplorationEngine",
    "HomePage",
    "HomePageManager",
    "PreviewPane",
    "ProviderToggle",
    "SurfacedView",
    "Tab",
    "build_preview",
]
