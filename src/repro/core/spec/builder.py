"""Fluent builder for Humboldt specifications.

The paper's pitch is that enabling a new metadata source "is just a matter
of adding a few lines of specification".  The builder makes those few lines
read like the paper's JSON listings:

    spec = (
        SpecBuilder()
        .provider("joinable", "catalog://joinable", "graph",
                  category="relatedness",
                  inputs=[("artifact", "artifact", True)])
        .ranking("favorite", 4.3)
        .ranking("views", 1.5)
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.core.spec.validation import validate_spec
from repro.providers.base import InputSpec

#: Input shorthand accepted by :meth:`SpecBuilder.provider`:
#: ``(name, type)`` or ``(name, type, required)`` tuples, or full InputSpecs.
InputLike = "InputSpec | tuple[str, str] | tuple[str, str, bool]"


def _coerce_input(raw: Any) -> InputSpec:
    if isinstance(raw, InputSpec):
        return raw
    if isinstance(raw, tuple) and len(raw) in (2, 3):
        name, input_type = raw[0], raw[1]
        required = raw[2] if len(raw) == 3 else True
        return InputSpec(name=name, input_type=input_type, required=required)
    raise TypeError(
        f"input must be InputSpec or (name, type[, required]) tuple, "
        f"got {raw!r}"
    )


class SpecBuilder:
    """Accumulates providers, ranking and custom content, then builds."""

    def __init__(self) -> None:
        self._providers: list[ProviderSpec] = []
        self._global_ranking: list[RankingWeight] = []
        self._custom: dict[str, Any] = {}

    def provider(
        self,
        name: str,
        endpoint: str,
        representation: str,
        category: str = "custom",
        title: str = "",
        description: str = "",
        inputs: Iterable[Any] = (),
        visibility: Visibility | None = None,
        ranking: Iterable[tuple[str, float]] = (),
        search_field: str | None = "",
        dependencies: Iterable[str] = (),
    ) -> "SpecBuilder":
        """Declare one metadata provider (the Figure 3 shape)."""
        self._providers.append(
            ProviderSpec(
                name=name,
                endpoint=endpoint,
                representation=representation,
                category=category,
                title=title,
                description=description,
                inputs=tuple(_coerce_input(i) for i in inputs),
                visibility=visibility or Visibility(),
                ranking=tuple(
                    RankingWeight(field=f, weight=w) for f, w in ranking
                ),
                search_field=search_field,
                dependencies=frozenset(dependencies),
            )
        )
        return self

    def ranking(self, field: str, weight: float) -> "SpecBuilder":
        """Append a global ranking weight (Listing 1)."""
        self._global_ranking.append(RankingWeight(field=field, weight=weight))
        return self

    def custom(self, key: str, value: Any) -> "SpecBuilder":
        """Attach application-specific content (Listing 2)."""
        self._custom[key] = value
        return self

    def team_home_page(
        self, team: str, providers: list[str], title: str = ""
    ) -> "SpecBuilder":
        """Convenience for the Listing 2 custom content shape."""
        pages = self._custom.setdefault("team_home_pages", [])
        pages.append(
            {"team": team, "title": title or f"Home of {team}",
             "providers": list(providers)}
        )
        return self

    def build(self, validate: bool = True) -> HumboldtSpec:
        """Produce the immutable spec, validating structure by default."""
        spec = HumboldtSpec(
            providers=tuple(self._providers),
            global_ranking=tuple(self._global_ranking),
            custom=dict(self._custom),
        )
        if validate:
            validate_spec(spec)
        return spec
