"""Specification diffing.

The expressivity experiment (E3) measures change cost: what does it take to
add, remove or retune a provider?  For Humboldt the answer is a spec diff;
``diff_specs`` computes it, and its summary is the unit the benchmark
compares against lines-of-code changes in the hardcoded baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec.model import HumboldtSpec, ProviderSpec
from repro.core.spec.serialization import _provider_to_dict


@dataclass(frozen=True)
class ProviderChange:
    """A changed provider and which spec elements differ."""

    name: str
    changed_keys: tuple[str, ...]


@dataclass(frozen=True)
class SpecDiff:
    """Differences between two specifications."""

    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    changed: tuple[ProviderChange, ...] = ()
    global_ranking_changed: bool = False
    custom_changed: tuple[str, ...] = ()

    def is_empty(self) -> bool:
        return not (
            self.added
            or self.removed
            or self.changed
            or self.global_ranking_changed
            or self.custom_changed
        )

    def touched_elements(self) -> int:
        """How many spec elements the edit touched — the change-cost unit."""
        count = len(self.added) + len(self.removed) + len(self.custom_changed)
        count += sum(len(change.changed_keys) for change in self.changed)
        if self.global_ranking_changed:
            count += 1
        return count

    def summary(self) -> str:
        parts = []
        if self.added:
            parts.append(f"added {', '.join(self.added)}")
        if self.removed:
            parts.append(f"removed {', '.join(self.removed)}")
        for change in self.changed:
            parts.append(
                f"changed {change.name} ({', '.join(change.changed_keys)})"
            )
        if self.global_ranking_changed:
            parts.append("changed global ranking")
        for key in self.custom_changed:
            parts.append(f"changed custom.{key}")
        return "; ".join(parts) if parts else "no changes"


def diff_specs(old: HumboldtSpec, new: HumboldtSpec) -> SpecDiff:
    """Compute the diff from *old* to *new*."""
    old_names = set(old.provider_names())
    new_names = set(new.provider_names())
    added = tuple(sorted(new_names - old_names))
    removed = tuple(sorted(old_names - new_names))

    changed = []
    for name in sorted(old_names & new_names):
        keys = _changed_keys(old.provider(name), new.provider(name))
        if keys:
            changed.append(ProviderChange(name=name, changed_keys=keys))

    custom_changed = tuple(
        sorted(
            key
            for key in set(old.custom) | set(new.custom)
            if old.custom.get(key) != new.custom.get(key)
        )
    )
    return SpecDiff(
        added=added,
        removed=removed,
        changed=tuple(changed),
        global_ranking_changed=old.global_ranking != new.global_ranking,
        custom_changed=custom_changed,
    )


def _changed_keys(old: ProviderSpec, new: ProviderSpec) -> tuple[str, ...]:
    old_dict = _provider_to_dict(old)
    new_dict = _provider_to_dict(new)
    keys = sorted(
        key
        for key in set(old_dict) | set(new_dict)
        if old_dict.get(key) != new_dict.get(key)
    )
    return tuple(keys)
