"""Versioned specification storage.

Section 4.4 makes the spec a live, admin-edited artifact: providers come
and go, teams reconfigure pages, ranking gets retuned.  Production needs
an audit trail and an undo button for that.  :class:`SpecStore` keeps
every revision with its author and a diff summary, serves the current
spec, and rolls back by *appending* the old revision (history is never
rewritten), optionally persisting the whole log as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.spec.diff import diff_specs
from repro.core.spec.model import HumboldtSpec
from repro.core.spec.serialization import spec_from_dict, spec_to_dict
from repro.core.spec.validation import validate_spec
from repro.errors import SpecError


@dataclass(frozen=True)
class SpecRevision:
    """One committed spec version."""

    revision: int
    spec: HumboldtSpec
    author: str
    message: str
    diff_summary: str


class SpecStore:
    """Append-only revision history for one deployment's spec."""

    def __init__(self, initial: HumboldtSpec, author: str = "system"):
        validate_spec(initial)
        self._revisions: list[SpecRevision] = [
            SpecRevision(
                revision=1,
                spec=initial,
                author=author,
                message="initial specification",
                diff_summary=f"{len(initial)} providers",
            )
        ]

    # -- reading ------------------------------------------------------------

    @property
    def current(self) -> HumboldtSpec:
        return self._revisions[-1].spec

    @property
    def current_revision(self) -> int:
        return self._revisions[-1].revision

    def history(self) -> list[SpecRevision]:
        return list(self._revisions)

    def revision(self, number: int) -> SpecRevision:
        for entry in self._revisions:
            if entry.revision == number:
                return entry
        raise SpecError(f"no spec revision {number}")

    def changelog(self) -> str:
        """Human-readable history, newest first."""
        lines = []
        for entry in reversed(self._revisions):
            lines.append(
                f"r{entry.revision} by {entry.author}: {entry.message} "
                f"({entry.diff_summary})"
            )
        return "\n".join(lines)

    # -- writing --------------------------------------------------------------

    def commit(
        self, spec: HumboldtSpec, author: str, message: str = ""
    ) -> SpecRevision:
        """Validate and append *spec* as the new current revision.

        No-op edits are rejected — an empty diff in the audit log is
        noise that hides real changes.
        """
        validate_spec(spec)
        diff = diff_specs(self.current, spec)
        if diff.is_empty():
            raise SpecError("refusing to commit a no-op spec edit")
        entry = SpecRevision(
            revision=self.current_revision + 1,
            spec=spec,
            author=author,
            message=message or diff.summary(),
            diff_summary=diff.summary(),
        )
        self._revisions.append(entry)
        return entry

    def rollback(self, to_revision: int, author: str) -> SpecRevision:
        """Make an old revision current again by committing it anew."""
        target = self.revision(to_revision)
        if target.spec == self.current:
            raise SpecError(
                f"revision {to_revision} is already the current spec"
            )
        return self.commit(
            target.spec, author=author,
            message=f"rollback to r{to_revision}",
        )

    # -- persistence ------------------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "revisions": [
                {
                    "revision": entry.revision,
                    "author": entry.author,
                    "message": entry.message,
                    "diff_summary": entry.diff_summary,
                    "spec": spec_to_dict(entry.spec),
                }
                for entry in self._revisions
            ]
        }
        path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "SpecStore":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        revisions = payload.get("revisions")
        if not revisions:
            raise SpecError(f"{path}: no revisions in spec history file")
        store = cls.__new__(cls)
        store._revisions = [
            SpecRevision(
                revision=entry["revision"],
                spec=spec_from_dict(entry["spec"]),
                author=entry.get("author", "unknown"),
                message=entry.get("message", ""),
                diff_summary=entry.get("diff_summary", ""),
            )
            for entry in revisions
        ]
        return store
