"""JSON (de)serialisation of Humboldt specifications.

The on-disk shape matches the paper's listings: ranking blocks are lists of
``{"field": ..., "weight": ...}`` objects (Listing 1) and custom content is
carried verbatim (Listing 2).  Round-tripping is exact: ``spec_from_json(
spec_to_json(s)) == s``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.errors import SpecError
from repro.providers.base import InputSpec


def spec_to_dict(spec: HumboldtSpec) -> dict[str, Any]:
    return {
        "version": spec.version,
        "providers": [_provider_to_dict(p) for p in spec.providers],
        "ranking": [_weight_to_dict(w) for w in spec.global_ranking],
        "custom": dict(spec.custom),
    }


def spec_from_dict(payload: dict[str, Any]) -> HumboldtSpec:
    if not isinstance(payload, dict):
        raise SpecError(f"spec payload must be an object, got {type(payload).__name__}")
    providers = tuple(
        _provider_from_dict(p) for p in payload.get("providers", [])
    )
    return HumboldtSpec(
        providers=providers,
        global_ranking=tuple(
            _weight_from_dict(w) for w in payload.get("ranking", [])
        ),
        custom=dict(payload.get("custom", {})),
        version=str(payload.get("version", "1")),
    )


def spec_to_json(spec: HumboldtSpec, indent: int = 2) -> str:
    return json.dumps(spec_to_dict(spec), indent=indent)


def spec_from_json(text: str) -> HumboldtSpec:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec is not valid JSON: {exc}") from exc
    return spec_from_dict(payload)


def _provider_to_dict(provider: ProviderSpec) -> dict[str, Any]:
    data: dict[str, Any] = {
        "name": provider.name,
        "category": provider.category,
        "title": provider.title,
        "description": provider.description,
        "representation": provider.representation.value,
        "endpoint": provider.endpoint,
        "inputs": [
            {
                "name": i.name,
                "type": i.input_type,
                "required": i.required,
                "description": i.description,
            }
            for i in provider.inputs
        ],
        "visibility": {
            "overview": provider.visibility.overview,
            "exploration": provider.visibility.exploration,
            "search": provider.visibility.search,
        },
        "ranking": [_weight_to_dict(w) for w in provider.ranking],
    }
    if provider.search_field != provider.name:
        data["search_field"] = provider.search_field
    if provider.dependencies:
        data["dependencies"] = sorted(provider.dependencies)
    return data


def _provider_from_dict(data: dict[str, Any]) -> ProviderSpec:
    if "name" not in data or "endpoint" not in data:
        raise SpecError(
            f"provider entry missing required keys 'name'/'endpoint': "
            f"{sorted(data)}"
        )
    visibility_data = data.get("visibility", {})
    search_field = data.get("search_field", "")
    return ProviderSpec(
        name=data["name"],
        endpoint=data["endpoint"],
        representation=data.get("representation", "list"),
        category=data.get("category", "custom"),
        title=data.get("title", ""),
        description=data.get("description", ""),
        inputs=tuple(
            InputSpec(
                name=i["name"],
                input_type=i.get("type", "text"),
                required=i.get("required", True),
                description=i.get("description", ""),
            )
            for i in data.get("inputs", [])
        ),
        visibility=Visibility(
            overview=visibility_data.get("overview", True),
            exploration=visibility_data.get("exploration", True),
            search=visibility_data.get("search", True),
        ),
        ranking=tuple(_weight_from_dict(w) for w in data.get("ranking", [])),
        search_field=search_field,
        dependencies=frozenset(data.get("dependencies", ())),
    )


def _weight_to_dict(weight: RankingWeight) -> dict[str, Any]:
    return {"field": weight.field, "weight": weight.weight}


def _weight_from_dict(data: dict[str, Any]) -> RankingWeight:
    if "field" not in data or "weight" not in data:
        raise SpecError(
            f"ranking entry must have 'field' and 'weight': {sorted(data)}"
        )
    return RankingWeight(field=data["field"], weight=float(data["weight"]))
