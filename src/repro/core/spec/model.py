"""Specification data model.

Section 4.1 lists the fundamental elements a provider spec must carry:
category and name, the representation of returned data, required input
values, an endpoint to fetch from, and visibility hints for different parts
of the UI.  Section 4.2 adds ranking weights (per provider, with global
fallback); Section 4.3 adds free-form application-specific content.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.catalog.domains import coerce_domains
from repro.errors import UnknownProviderError
from repro.providers.base import InputSpec, Representation
from repro.util.ids import slugify

#: Provider categories used to group providers in the UI (§4.1: "we enable
#: the specification of a metadata provider type to group metadata
#: providers").  Free-form, but these are the conventional ones.
DEFAULT_CATEGORIES = ("interaction", "annotation", "relatedness", "team", "custom")


@dataclass(frozen=True)
class RankingWeight:
    """One ``{"field": ..., "weight": ...}`` entry of Listing 1."""

    field: str
    weight: float

    def __post_init__(self) -> None:
        if not self.field:
            raise ValueError("ranking field must be non-empty")


@dataclass(frozen=True)
class Visibility:
    """Where a provider surfaces in the generated UI (§4.1).

    ``overview``   — shown as a discovery view/tab (Figure 7B);
    ``exploration`` — surfaced when a selected artifact can feed it (§5.2);
    ``search``     — exposed as a query-language field (§5.3).
    """

    overview: bool = True
    exploration: bool = True
    search: bool = True

    @classmethod
    def everywhere(cls) -> "Visibility":
        return cls(True, True, True)

    @classmethod
    def nowhere(cls) -> "Visibility":
        return cls(False, False, False)

    def surfaces(self) -> tuple[str, ...]:
        enabled = []
        if self.overview:
            enabled.append("overview")
        if self.exploration:
            enabled.append("exploration")
        if self.search:
            enabled.append("search")
        return tuple(enabled)


@dataclass(frozen=True)
class ProviderSpec:
    """Declaration of one metadata provider (Figure 3 left, §4.1)."""

    name: str
    endpoint: str
    representation: Representation
    category: str = "custom"
    title: str = ""
    description: str = ""
    inputs: tuple[InputSpec, ...] = ()
    visibility: Visibility = field(default_factory=Visibility)
    ranking: tuple[RankingWeight, ...] = ()
    #: Query-language prefix; defaults to the provider name.  ``None``
    #: removes the provider from the query language even if
    #: ``visibility.search`` is set.
    search_field: str | None = ""
    #: Metadata domains (see :mod:`repro.catalog.domains`) whose mutation
    #: can change this provider's result membership.  Empty means
    #: undeclared: the execution layer then conservatively invalidates
    #: the provider's cached results on any catalog write.
    dependencies: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", slugify(self.name))
        object.__setattr__(
            self, "representation", Representation.coerce(self.representation)
        )
        object.__setattr__(
            self, "dependencies", coerce_domains(self.dependencies)
        )
        if not self.title:
            object.__setattr__(
                self, "title", self.name.replace("_", " ").title()
            )
        if self.search_field == "":
            object.__setattr__(self, "search_field", self.name)

    def required_inputs(self) -> tuple[InputSpec, ...]:
        return tuple(i for i in self.inputs if i.required)

    def optional_inputs(self) -> tuple[InputSpec, ...]:
        return tuple(i for i in self.inputs if not i.required)

    def input_named(self, name: str) -> InputSpec | None:
        for spec in self.inputs:
            if spec.name == name:
                return spec
        return None

    def is_ready(self, available_inputs: dict[str, str]) -> bool:
        """Can this provider be queried with *available_inputs*? (§6.1:
        "Humboldt automatically determines whether the metadata provider
        has all the information needed for fetching data.")
        """
        return all(
            available_inputs.get(spec.name) for spec in self.required_inputs()
        )

    def with_ranking(self, *weights: RankingWeight) -> "ProviderSpec":
        """A copy with ranking weights replaced (spec-edit convenience)."""
        return replace(self, ranking=tuple(weights))

    def with_visibility(self, visibility: Visibility) -> "ProviderSpec":
        return replace(self, visibility=visibility)


@dataclass(frozen=True)
class HumboldtSpec:
    """A complete Humboldt specification.

    Providers are ordered: the order is the default view order in the
    generated interface (users may reorder via customization layers).
    ``custom`` carries application-specific content (Listing 2); unknown
    custom fields are ignored by UIs that do not understand them (§4.3).
    """

    providers: tuple[ProviderSpec, ...] = ()
    global_ranking: tuple[RankingWeight, ...] = ()
    custom: dict[str, Any] = field(default_factory=dict)
    version: str = "1"

    def __len__(self) -> int:
        return len(self.providers)

    def __iter__(self) -> Iterator[ProviderSpec]:
        return iter(self.providers)

    def __contains__(self, name: str) -> bool:
        return any(p.name == name for p in self.providers)

    def provider(self, name: str) -> ProviderSpec:
        for spec in self.providers:
            if spec.name == name:
                return spec
        raise UnknownProviderError(name)

    def provider_names(self) -> list[str]:
        return [p.name for p in self.providers]

    def categories(self) -> list[str]:
        """Distinct categories in first-appearance order."""
        seen: list[str] = []
        for spec in self.providers:
            if spec.category not in seen:
                seen.append(spec.category)
        return seen

    def by_category(self, category: str) -> list[ProviderSpec]:
        return [p for p in self.providers if p.category == category]

    def visible_in(self, surface: str) -> list[ProviderSpec]:
        """Providers visible on a surface: overview/exploration/search."""
        if surface not in ("overview", "exploration", "search"):
            raise ValueError(f"unknown surface {surface!r}")
        return [p for p in self.providers if getattr(p.visibility, surface)]

    def search_fields(self) -> dict[str, ProviderSpec]:
        """Query-language field -> provider, for search-visible providers."""
        fields: dict[str, ProviderSpec] = {}
        for spec in self.providers:
            if spec.visibility.search and spec.search_field:
                fields[spec.search_field] = spec
        return fields

    def effective_ranking(self, provider_name: str) -> tuple[RankingWeight, ...]:
        """Provider ranking weights, falling back to global weights (§4.2)."""
        spec = self.provider(provider_name)
        return spec.ranking if spec.ranking else self.global_ranking

    # -- immutable editing (the "few lines of spec" workflow) -------------

    def with_provider(self, spec: ProviderSpec) -> "HumboldtSpec":
        """Add or replace a provider; replacement keeps its position."""
        providers = list(self.providers)
        for index, existing in enumerate(providers):
            if existing.name == spec.name:
                providers[index] = spec
                return replace(self, providers=tuple(providers))
        providers.append(spec)
        return replace(self, providers=tuple(providers))

    def without_provider(self, name: str) -> "HumboldtSpec":
        """Remove a provider; unknown names raise so typos surface."""
        if name not in self:
            raise UnknownProviderError(name)
        return replace(
            self,
            providers=tuple(p for p in self.providers if p.name != name),
        )

    def with_global_ranking(self, *weights: RankingWeight) -> "HumboldtSpec":
        return replace(self, global_ranking=tuple(weights))

    def with_custom(self, key: str, value: Any) -> "HumboldtSpec":
        custom = dict(self.custom)
        custom[key] = value
        return replace(self, custom=custom)
