"""Specification validation.

``validate_spec`` collects *all* problems rather than stopping at the
first, because spec editing is the primary admin workflow and one-error-
per-round-trip is hostile.  Structural validation needs no environment;
cross-validation against a registry and field resolver is optional and
catches dangling endpoints / unrankable fields before deployment.
"""

from __future__ import annotations

from collections import Counter

from repro.core.spec.model import HumboldtSpec, ProviderSpec
from repro.errors import SpecValidationError
from repro.providers.fields import RANKABLE_FIELDS
from repro.providers.registry import EndpointRegistry, parse_endpoint_uri


def validate_spec(
    spec: HumboldtSpec,
    registry: EndpointRegistry | None = None,
    known_fields: set[str] | None = None,
    strict: bool = True,
) -> list[str]:
    """Validate *spec*; returns the problem list (empty when valid).

    With ``strict=True`` (default) a non-empty problem list raises
    :class:`SpecValidationError`.  Pass a *registry* to also verify every
    endpoint is registered, and *known_fields* to bound ranking fields
    (defaults to the built-in rankable fields).
    """
    problems: list[str] = []
    problems.extend(_structural_problems(spec, known_fields))
    if registry is not None:
        problems.extend(_registry_problems(spec, registry))
    if problems and strict:
        raise SpecValidationError(problems)
    return problems


def _structural_problems(
    spec: HumboldtSpec, known_fields: set[str] | None
) -> list[str]:
    problems: list[str] = []
    fields = known_fields if known_fields is not None else set(RANKABLE_FIELDS)

    name_counts = Counter(p.name for p in spec.providers)
    for name, count in sorted(name_counts.items()):
        if count > 1:
            problems.append(f"provider name {name!r} declared {count} times")

    search_fields = Counter(
        p.search_field
        for p in spec.providers
        if p.visibility.search and p.search_field
    )
    for field_name, count in sorted(search_fields.items()):
        if count > 1:
            problems.append(
                f"search field {field_name!r} claimed by {count} providers"
            )

    for provider in spec.providers:
        problems.extend(_provider_problems(provider, fields))

    for weight in spec.global_ranking:
        if weight.field not in fields:
            problems.append(
                f"global ranking references unknown field {weight.field!r}"
            )

    problems.extend(_custom_problems(spec))
    return problems


def _provider_problems(provider: ProviderSpec, fields: set[str]) -> list[str]:
    problems: list[str] = []
    prefix = f"provider {provider.name!r}"
    try:
        parse_endpoint_uri(provider.endpoint)
    except ValueError as exc:
        problems.append(f"{prefix}: {exc}")

    input_names = Counter(i.name for i in provider.inputs)
    for name, count in sorted(input_names.items()):
        if count > 1:
            problems.append(f"{prefix}: input {name!r} declared {count} times")

    for weight in provider.ranking:
        if weight.field not in fields:
            problems.append(
                f"{prefix}: ranking references unknown field {weight.field!r}"
            )

    if provider.visibility.search and provider.search_field:
        n_required = len(provider.required_inputs())
        if n_required > 1:
            problems.append(
                f"{prefix}: search-visible providers may require at most one "
                f"input (has {n_required}) — a query term carries one value"
            )
    return problems


def _custom_problems(spec: HumboldtSpec) -> list[str]:
    """Validate the custom-content fields this implementation understands.

    Per §4.3, custom content the UI cannot act on is *ignored*, so a home
    page referencing a since-removed provider is not an error (the
    renderer skips it — spec drift must not brick the interface).  Only
    structural problems are flagged.
    """
    problems: list[str] = []
    home_pages = spec.custom.get("team_home_pages")
    if home_pages is None:
        return problems
    if not isinstance(home_pages, list):
        problems.append("custom.team_home_pages must be a list")
        return problems
    for index, page in enumerate(home_pages):
        if not isinstance(page, dict):
            problems.append(f"custom.team_home_pages[{index}] must be an object")
            continue
        if not page.get("team"):
            problems.append(
                f"custom.team_home_pages[{index}] missing 'team'"
            )
        providers = page.get("providers", [])
        if not isinstance(providers, list):
            problems.append(
                f"custom.team_home_pages[{index}].providers must be a list"
            )
    return problems


def _registry_problems(
    spec: HumboldtSpec, registry: EndpointRegistry
) -> list[str]:
    return [
        f"provider {p.name!r}: endpoint {p.endpoint!r} is not registered"
        for p in spec.providers
        if p.endpoint not in registry
    ]


def lint_spec(spec: HumboldtSpec) -> list[str]:
    """Style/usability warnings for a *valid* spec.

    Unlike :func:`validate_spec` these never block deployment — they are
    the "your users will struggle" class of feedback the study surfaced
    (P1/P4 wanted provider descriptions; invisible providers are dead
    weight; duplicate endpoints usually mean a copy-paste error).
    """
    warnings: list[str] = []
    endpoint_users: dict[str, list[str]] = {}
    for provider in spec.providers:
        prefix = f"provider {provider.name!r}"
        if not provider.description:
            warnings.append(
                f"{prefix}: no description — study participants "
                f"'sometimes do not know what a metadata provider means'"
            )
        if provider.visibility.surfaces() == ():
            warnings.append(
                f"{prefix}: not visible on any surface (dead spec entry)"
            )
        if (
            provider.visibility.overview
            and provider.required_inputs()
            and all(i.input_type not in ("user", "team")
                    for i in provider.required_inputs())
        ):
            warnings.append(
                f"{prefix}: overview-visible but requires an input the "
                f"session context cannot supply — the tab will never render"
            )
        if provider.visibility.search and provider.search_field is None:
            warnings.append(
                f"{prefix}: search-visible but search_field is disabled"
            )
        endpoint_users.setdefault(provider.endpoint, []).append(provider.name)
    for endpoint, users in sorted(endpoint_users.items()):
        if len(users) > 1:
            warnings.append(
                f"endpoint {endpoint!r} is shared by {', '.join(users)} — "
                f"intentional aliases only, please"
            )
    if not spec.global_ranking:
        unranked = [p.name for p in spec.providers if not p.ranking]
        if unranked:
            warnings.append(
                f"no global ranking and {len(unranked)} provider(s) without "
                f"their own weights — their views will be unranked"
            )
    return warnings
