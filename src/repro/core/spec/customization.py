"""Layered customization of a specification (§4.4, Figure 4).

Three roles may tailor the generated UI without editing the base spec:

* **org admins** enable/disable providers organisation-wide;
* **team admins** configure their team's layer (and home page);
* **individual users** "can hide and reorder the metadata providers that
  they have access to".

Layers compose org → team → user: a provider hidden at any layer is gone,
and the most specific layer's ordering preference wins.  The base spec is
never mutated, so resetting a layer is just dropping it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spec.model import HumboldtSpec, ProviderSpec
from repro.errors import ConfigurationError


@dataclass
class CustomizationLayer:
    """One role's adjustments: hidden providers and a preferred order."""

    hidden: set[str] = field(default_factory=set)
    order: list[str] = field(default_factory=list)

    def hide(self, name: str) -> None:
        self.hidden.add(name)

    def unhide(self, name: str) -> None:
        self.hidden.discard(name)

    def set_order(self, names: list[str]) -> None:
        """Set the preferred order; duplicates are rejected."""
        if len(set(names)) != len(names):
            raise ConfigurationError(f"order contains duplicates: {names}")
        self.order = list(names)

    def is_empty(self) -> bool:
        return not self.hidden and not self.order


class Customization:
    """The stack of customization layers for an organisation."""

    def __init__(self) -> None:
        self.org = CustomizationLayer()
        self._teams: dict[str, CustomizationLayer] = {}
        self._users: dict[str, CustomizationLayer] = {}

    def team_layer(self, team_id: str) -> CustomizationLayer:
        """The (auto-created) layer for *team_id*."""
        return self._teams.setdefault(team_id, CustomizationLayer())

    def user_layer(self, user_id: str) -> CustomizationLayer:
        """The (auto-created) layer for *user_id*."""
        return self._users.setdefault(user_id, CustomizationLayer())

    def reset_team(self, team_id: str) -> None:
        self._teams.pop(team_id, None)

    def reset_user(self, user_id: str) -> None:
        self._users.pop(user_id, None)

    def effective_providers(
        self,
        spec: HumboldtSpec,
        surface: str,
        user_id: str = "",
        team_id: str = "",
    ) -> list[ProviderSpec]:
        """Providers visible to (*user_id*, *team_id*) on *surface*, ordered.

        Starts from the spec's surface-visible providers, removes anything
        hidden by the org, team or user layer, then applies ordering
        preferences — user order beats team order beats org order beats
        spec order.  Names in an order preference that are not visible are
        ignored; visible providers missing from the preference keep their
        relative spec order after the ordered ones.
        """
        visible = spec.visible_in(surface)
        layers = [self.org]
        if team_id and team_id in self._teams:
            layers.append(self._teams[team_id])
        if user_id and user_id in self._users:
            layers.append(self._users[user_id])

        hidden: set[str] = set()
        for layer in layers:
            hidden |= layer.hidden
        remaining = [p for p in visible if p.name not in hidden]

        # Most specific non-empty order wins.
        preferred: list[str] = []
        for layer in layers:
            if layer.order:
                preferred = layer.order
        if not preferred:
            return remaining

        by_name = {p.name: p for p in remaining}
        ordered = [by_name[name] for name in preferred if name in by_name]
        tail = [p for p in remaining if p.name not in set(preferred)]
        return ordered + tail
