"""The Humboldt specification (Section 4).

A :class:`HumboldtSpec` declares, for each metadata provider: category,
name, description, representation, required inputs, endpoint, visibility
and ranking weights — plus global ranking fallbacks and application-
specific custom content (Listing 2).  The interface-construction layer
(Section 5) is generated entirely from this object.
"""

from repro.core.spec.builder import SpecBuilder
from repro.core.spec.customization import Customization, CustomizationLayer
from repro.core.spec.diff import SpecDiff, diff_specs
from repro.core.spec.history import SpecRevision, SpecStore
from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.core.spec.serialization import (
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.core.spec.validation import lint_spec, validate_spec

__all__ = [
    "Customization",
    "CustomizationLayer",
    "HumboldtSpec",
    "ProviderSpec",
    "RankingWeight",
    "SpecBuilder",
    "SpecDiff",
    "SpecRevision",
    "SpecStore",
    "Visibility",
    "diff_specs",
    "lint_spec",
    "spec_from_dict",
    "spec_from_json",
    "spec_to_dict",
    "spec_to_json",
    "validate_spec",
]
