"""Query AST.

Five node kinds cover the language: free-text terms, metadata field terms,
provider calls, the two logical connectives and negation.  Nodes are frozen
and hashable so tests can compare parsed trees structurally, and every node
renders back to canonical query text via ``to_text`` (round-tripping is
property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.ids import slugify


class QueryNode:
    """Base class for query AST nodes."""

    def to_text(self) -> str:
        raise NotImplementedError

    def iter_terms(self) -> "list[QueryNode]":
        """All leaf terms (text/field/call) in left-to-right order."""
        return [self]


#: Bare words the lexer treats as operators — must be quoted as values.
_OPERATOR_WORDS = frozenset({"and", "or", "not"})


def _quote(value: str) -> str:
    """Quote a value if it contains anything that would confuse the lexer."""
    safe = (
        value
        and value.lower() not in _OPERATOR_WORDS
        and all(ch.isalnum() or ch in "_-." for ch in value)
    )
    if safe:
        return value
    escaped = value.replace('"', '\\"')
    return f'"{escaped}"'


@dataclass(frozen=True)
class TextTerm(QueryNode):
    """A free-text keyword term; matches artifact searchable text."""

    text: str

    def to_text(self) -> str:
        return _quote(self.text)


@dataclass(frozen=True)
class FieldTerm(QueryNode):
    """A metadata constraint such as ``owned_by: "Alex"``.

    The field name is slug-normalised, so the paper's spaced syntax
    (``owned by: 'Alex'``) and the canonical form are the same node.
    """

    field: str
    value: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "field", slugify(self.field))

    def to_text(self) -> str:
        return f"{self.field}: {_quote(self.value)}"


@dataclass(frozen=True)
class ProviderCall(QueryNode):
    """A direct provider invocation such as ``:recent_documents()``."""

    name: str
    argument: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", slugify(self.name))

    def to_text(self) -> str:
        arg = _quote(self.argument) if self.argument else ""
        return f":{self.name}({arg})"


@dataclass(frozen=True)
class And(QueryNode):
    """Conjunction: artifacts matching every child."""

    children: tuple[QueryNode, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("And requires at least two children")

    def to_text(self) -> str:
        return " & ".join(_child_text(c, parent="and") for c in self.children)

    def iter_terms(self) -> list[QueryNode]:
        terms: list[QueryNode] = []
        for child in self.children:
            terms.extend(child.iter_terms())
        return terms


@dataclass(frozen=True)
class Or(QueryNode):
    """Disjunction: artifacts matching any child."""

    children: tuple[QueryNode, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("Or requires at least two children")

    def to_text(self) -> str:
        return " | ".join(_child_text(c, parent="or") for c in self.children)

    def iter_terms(self) -> list[QueryNode]:
        terms: list[QueryNode] = []
        for child in self.children:
            terms.extend(child.iter_terms())
        return terms


@dataclass(frozen=True)
class Not(QueryNode):
    """Negation: artifacts in the universe not matching the child."""

    child: QueryNode

    def to_text(self) -> str:
        return f"!{_child_text(self.child, parent='not')}"

    def iter_terms(self) -> list[QueryNode]:
        return self.child.iter_terms()


def _child_text(node: QueryNode, parent: str) -> str:
    """Render a child, bracketing where precedence demands it.

    Precedence: NOT > AND > OR; a child whose operator binds looser than
    its parent needs brackets to round-trip.
    """
    needs_brackets = (
        (parent == "and" and isinstance(node, Or))
        or (parent == "not" and isinstance(node, (And, Or)))
    )
    text = node.to_text()
    return f"({text})" if needs_brackets else text


def flatten_and(children: list[QueryNode]) -> QueryNode:
    """Build a conjunction, flattening nested Ands and unwrapping singletons."""
    flat: list[QueryNode] = []
    for child in children:
        if isinstance(child, And):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        raise ValueError("cannot build an empty conjunction")
    if len(flat) == 1:
        return flat[0]
    return And(children=tuple(flat))


def flatten_or(children: list[QueryNode]) -> QueryNode:
    """Build a disjunction, flattening nested Ors and unwrapping singletons."""
    flat: list[QueryNode] = []
    for child in children:
        if isinstance(child, Or):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        raise ValueError("cannot build an empty disjunction")
    if len(flat) == 1:
        return flat[0]
    return Or(children=tuple(flat))
