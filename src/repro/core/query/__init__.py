"""The Humboldt query language (Section 5.3).

The language is *generated from the specification*: every search-visible
provider contributes a query field (``owned_by: "Alex"``) or a provider
call (``:recent_documents()``), composable with free-text keywords via
``&``/``|``, negation and brackets.  Admissible fields and values come
from the spec, which is what drives autocomplete (Figure 5).

Two entry interfaces produce the same AST: the prefix-based textual syntax
(:mod:`repro.core.query.parser`) and the pill-based builder
(:mod:`repro.core.query.pills`).
"""

from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.core.query.autocomplete import Autocompleter, Suggestion
from repro.core.query.evaluator import QueryEvaluator, SearchResult
from repro.core.query.language import CompiledQuery, QueryLanguage
from repro.core.query.lexer import Token, tokenize_query
from repro.core.query.parser import parse_query
from repro.core.query.pills import FieldPill, PillQuery, TextPill

__all__ = [
    "And",
    "Autocompleter",
    "CompiledQuery",
    "FieldPill",
    "FieldTerm",
    "Not",
    "Or",
    "PillQuery",
    "ProviderCall",
    "QueryEvaluator",
    "QueryLanguage",
    "QueryNode",
    "SearchResult",
    "Suggestion",
    "TextPill",
    "TextTerm",
    "Token",
    "parse_query",
    "tokenize_query",
]
