"""Pill-based query building (Figure 5).

The paper implements two search interfaces over the same machinery: the
prefix-based textual language and a pill-based representation where each
query element is a pill joined by connectors.  :class:`PillQuery` is the
pill interface; it compiles to the same AST the text parser produces, so
the two UIs are provably equivalent (tested via round-trips).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query.ast import (
    FieldTerm,
    Not,
    ProviderCall,
    QueryNode,
    TextTerm,
    flatten_and,
    flatten_or,
)


@dataclass(frozen=True)
class TextPill:
    """A free-text pill."""

    text: str

    def node(self) -> QueryNode:
        return TextTerm(text=self.text)

    def label(self) -> str:
        return self.text


@dataclass(frozen=True)
class FieldPill:
    """A ``field: value`` pill."""

    field: str
    value: str

    def node(self) -> QueryNode:
        return FieldTerm(field=self.field, value=self.value)

    def label(self) -> str:
        return f"{self.field}: {self.value}"


@dataclass(frozen=True)
class CallPill:
    """A provider-call pill (``:recent_documents()``)."""

    name: str
    argument: str = ""

    def node(self) -> QueryNode:
        return ProviderCall(name=self.name, argument=self.argument)

    def label(self) -> str:
        return f":{self.name}({self.argument})"


Pill = "TextPill | FieldPill | CallPill"


@dataclass(frozen=True)
class _Entry:
    connector: str  # "and" | "or"; ignored on the first pill
    negated: bool
    pill: "TextPill | FieldPill | CallPill"


class PillQuery:
    """An ordered pill sequence with per-pill connectors and negation.

    Connectors bind like the text language: AND runs group together inside
    a top-level OR.  ``to_node()`` yields the equivalent AST; ``to_text()``
    the canonical textual form shown in the query bar.
    """

    def __init__(self) -> None:
        self._entries: list[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    # -- building ----------------------------------------------------------

    def add(
        self,
        pill: "TextPill | FieldPill | CallPill",
        connector: str = "and",
        negated: bool = False,
    ) -> "PillQuery":
        if connector not in ("and", "or"):
            raise ValueError(f"connector must be 'and' or 'or', got {connector!r}")
        self._entries.append(_Entry(connector=connector, negated=negated, pill=pill))
        return self

    def text(self, text: str, connector: str = "and", negated: bool = False):
        return self.add(TextPill(text), connector, negated)

    def field(
        self, field: str, value: str, connector: str = "and", negated: bool = False
    ):
        return self.add(FieldPill(field, value), connector, negated)

    def call(
        self, name: str, argument: str = "", connector: str = "and",
        negated: bool = False,
    ):
        return self.add(CallPill(name, argument), connector, negated)

    def remove(self, index: int) -> "PillQuery":
        """Remove the pill at *index* (pills are removable chips in the UI)."""
        del self._entries[index]
        return self

    def pills(self) -> list["TextPill | FieldPill | CallPill"]:
        return [entry.pill for entry in self._entries]

    def labels(self) -> list[str]:
        """Chip labels as the UI renders them."""
        labels = []
        for index, entry in enumerate(self._entries):
            prefix = "" if index == 0 else f"{entry.connector} "
            negation = "not " if entry.negated else ""
            labels.append(f"{prefix}{negation}{entry.pill.label()}")
        return labels

    # -- compilation ----------------------------------------------------------

    def to_node(self) -> QueryNode:
        """The equivalent AST; raises on an empty pill list."""
        if not self._entries:
            raise ValueError("cannot compile an empty pill query")
        # Split into OR-separated groups of AND-joined pills.
        groups: list[list[QueryNode]] = [[]]
        for index, entry in enumerate(self._entries):
            if index > 0 and entry.connector == "or":
                groups.append([])
            node = entry.pill.node()
            if entry.negated:
                node = Not(child=node)
            groups[-1].append(node)
        or_children = [flatten_and(group) for group in groups if group]
        return flatten_or(or_children)

    def to_text(self) -> str:
        return self.to_node().to_text()
