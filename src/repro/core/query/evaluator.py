"""Query evaluation (Section 5.3).

"Each query element returns a list of data artifacts.  Combining multiple
query elements in a search query allows for an arithmetic combination of
different search queries and their resulting data artifact lists."

Evaluation is set algebra over those lists: AND intersects, OR unions,
NOT subtracts from the universe (all artifacts for global search, the
current view's artifacts when filtering a view).  Results are ranked with
the spec's global ranking weights plus a text-match base score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.store import CatalogStore
from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.core.query.language import CompiledQuery, QueryLanguage
from repro.core.ranking import RankedArtifact, Ranker
from repro.errors import QueryCompileError
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.registry import EndpointRegistry
from repro.util.textutil import tokenize

#: Base-score bonus for a text term matching the artifact *name* vs. only
#: its description/tags — name hits should surface first.
NAME_MATCH_BONUS = 2.0
TEXT_MATCH_BONUS = 1.0


@dataclass(frozen=True)
class SearchResult:
    """The outcome of one search/filter evaluation."""

    query: CompiledQuery
    entries: tuple[RankedArtifact, ...]
    total: int

    def artifact_ids(self) -> list[str]:
        return [entry.artifact_id for entry in self.entries]

    def is_empty(self) -> bool:
        return self.total == 0


class QueryEvaluator:
    """Evaluates compiled queries against providers and the catalog."""

    def __init__(
        self,
        store: CatalogStore,
        registry: EndpointRegistry,
        language: QueryLanguage,
        ranker: Ranker,
    ):
        self.store = store
        self.registry = registry
        self.language = language
        self.ranker = ranker
        #: Result-size cap passed to providers during evaluation; large so
        #: intersections don't lose matches to provider-side truncation.
        self.fetch_limit = 10_000

    def search(
        self,
        query: "str | QueryNode | CompiledQuery",
        context: RequestContext | None = None,
        universe: list[str] | None = None,
        limit: int = 50,
    ) -> SearchResult:
        """Evaluate *query*; *universe* scopes it to a view's artifacts.

        Global search uses the whole catalog as universe; filtering a view
        passes the view's artifact ids (§5.3: "the difference between
        search and filters is the set of data artifacts it is performed
        on").
        """
        compiled = (
            query
            if isinstance(query, CompiledQuery)
            else self.language.compile(query)
        )
        context = context or RequestContext()
        ids = self._eval(compiled.node, context, universe)
        if universe is not None:
            allowed = set(universe)
            ids = [aid for aid in ids if aid in allowed]
        ids = [aid for aid in ids if self.store.has_artifact(aid)]

        base_scores = self._text_base_scores(compiled, ids)
        weights = self.language.spec.global_ranking
        entries = [
            self.ranker.score(aid, weights, base_score=base_scores.get(aid, 0.0))
            for aid in ids
        ]
        entries.sort(key=lambda e: (-e.score, e.artifact_id))
        return SearchResult(
            query=compiled,
            entries=tuple(entries[:limit]),
            total=len(entries),
        )

    # -- AST evaluation ----------------------------------------------------

    def _eval(
        self,
        node: QueryNode,
        context: RequestContext,
        universe: list[str] | None,
    ) -> list[str]:
        if isinstance(node, TextTerm):
            return self._eval_text(node)
        if isinstance(node, FieldTerm):
            provider = self.language.provider_for_field(node.field)
            if provider is None:
                raise QueryCompileError(f"unknown query field {node.field!r}")
            inputs = self._bind(provider, node.value)
            return self._fetch(provider.endpoint, inputs, context)
        if isinstance(node, ProviderCall):
            provider = self.language._resolve_call(node.name)
            inputs = (
                self._bind(provider, node.argument) if node.argument else {}
            )
            return self._fetch(provider.endpoint, inputs, context)
        if isinstance(node, And):
            result: list[str] | None = None
            for child in node.children:
                child_ids = self._eval(child, context, universe)
                if result is None:
                    result = child_ids
                else:
                    keep = set(child_ids)
                    result = [aid for aid in result if aid in keep]
                if not result:
                    return []
            return result or []
        if isinstance(node, Or):
            seen: set[str] = set()
            merged: list[str] = []
            for child in node.children:
                for aid in self._eval(child, context, universe):
                    if aid not in seen:
                        seen.add(aid)
                        merged.append(aid)
            return merged
        if isinstance(node, Not):
            excluded = set(self._eval(node.child, context, universe))
            scope = universe if universe is not None else self.store.artifact_ids()
            return [aid for aid in scope if aid not in excluded]
        raise QueryCompileError(f"unsupported query node {type(node).__name__}")

    def _eval_text(self, node: TextTerm) -> list[str]:
        tokens = tokenize(node.text)
        if not tokens:
            return []
        return self.store.search_tokens(tokens)

    def _bind(self, provider, value: str) -> dict[str, str]:
        input_spec = self.language.value_input(provider)
        if input_spec is None:
            raise QueryCompileError(
                f"provider {provider.name!r} does not accept a value"
            )
        return {input_spec.name: value}

    def _fetch(
        self, endpoint: str, inputs: dict[str, str], context: RequestContext
    ) -> list[str]:
        request = ProviderRequest(
            inputs=inputs,
            context=RequestContext(
                user_id=context.user_id,
                team_id=context.team_id,
                limit=self.fetch_limit,
            ),
        )
        return self.registry.fetch(endpoint, request).artifact_ids()

    # -- text relevance ---------------------------------------------------------

    def _text_base_scores(
        self, compiled: CompiledQuery, ids: list[str]
    ) -> dict[str, float]:
        """Name/text match bonuses for the query's free-text terms."""
        terms = [tokenize(t) for t in compiled.text_terms()]
        terms = [t for t in terms if t]
        if not terms:
            return {}
        scores: dict[str, float] = {}
        for aid in ids:
            artifact = self.store.artifact(aid)
            name_tokens = set(tokenize(artifact.name))
            text_tokens = set(tokenize(artifact.searchable_text()))
            score = 0.0
            for term_tokens in terms:
                if all(tok in name_tokens for tok in term_tokens):
                    score += NAME_MATCH_BONUS
                elif all(tok in text_tokens for tok in term_tokens):
                    score += TEXT_MATCH_BONUS
            if score:
                scores[aid] = score
        return scores
