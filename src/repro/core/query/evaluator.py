"""Query evaluation (Section 5.3).

"Each query element returns a list of data artifacts.  Combining multiple
query elements in a search query allows for an arithmetic combination of
different search queries and their resulting data artifact lists."

Evaluation is set algebra over those lists: AND intersects, OR unions,
NOT subtracts from the universe (all artifacts for global search, the
current view's artifacts when filtering a view).  Results are ranked with
the spec's global ranking weights plus a text-match base score.

Provider fetches route through the :class:`~repro.providers.execution.
ExecutionEngine`: one search opens a request-scoped memo (identical
sub-fetches execute once), independent ``And``/``Or`` branches fan out on
the engine's thread pool with deterministic result ordering, and fetches
that fill :attr:`QueryEvaluator.fetch_limit` are flagged as truncated on
the :class:`SearchResult` instead of silently dropping matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.store import CatalogStore
from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.core.query.language import CompiledQuery, QueryLanguage
from repro.core.ranking import RankedArtifact, Ranker
from repro.errors import QueryCompileError
from repro.providers.base import ProviderRequest, ProviderResult, RequestContext
from repro.providers.execution import ExecutionEngine
from repro.providers.registry import EndpointRegistry
from repro.util.textutil import tokenize

#: Base-score bonus for a text term matching the artifact *name* vs. only
#: its description/tags — name hits should surface first.
NAME_MATCH_BONUS = 2.0
TEXT_MATCH_BONUS = 1.0


@dataclass(frozen=True)
class SearchResult:
    """The outcome of one search/filter evaluation."""

    query: CompiledQuery
    entries: tuple[RankedArtifact, ...]
    total: int
    #: True when at least one provider fetch filled the evaluator's
    #: fetch limit — set algebra may then under-report matches.
    truncated: bool = False

    def artifact_ids(self) -> list[str]:
        return [entry.artifact_id for entry in self.entries]

    def is_empty(self) -> bool:
        return self.total == 0


@dataclass
class _EvalState:
    """Per-search bookkeeping threaded through the AST walk."""

    truncated: bool = False


class QueryEvaluator:
    """Evaluates compiled queries against providers and the catalog."""

    def __init__(
        self,
        store: CatalogStore,
        engine: "ExecutionEngine | EndpointRegistry",
        language: QueryLanguage,
        ranker: Ranker,
    ):
        self.store = store
        # Accept a bare registry for convenience (tests, embedders) and
        # wrap it; all fetches go through an engine either way.
        if isinstance(engine, EndpointRegistry):
            engine = ExecutionEngine(engine, store=store)
        self.engine = engine
        self.language = language
        self.ranker = ranker
        #: Result-size cap passed to providers during evaluation; large so
        #: intersections don't lose matches to provider-side truncation.
        self.fetch_limit = 10_000

    @property
    def registry(self) -> EndpointRegistry:
        return self.engine.registry

    def search(
        self,
        query: "str | QueryNode | CompiledQuery",
        context: RequestContext | None = None,
        universe: list[str] | None = None,
        limit: int = 50,
    ) -> SearchResult:
        """Evaluate *query*; *universe* scopes it to a view's artifacts.

        Global search uses the whole catalog as universe; filtering a view
        passes the view's artifact ids (§5.3: "the difference between
        search and filters is the set of data artifacts it is performed
        on").
        """
        compiled = (
            query
            if isinstance(query, CompiledQuery)
            else self.language.compile(query)
        )
        context = context or RequestContext()
        state = _EvalState()
        with self.engine.scope():
            ids = self._eval(compiled.node, context, universe, state)
        if universe is not None:
            allowed = set(universe)
            ids = [aid for aid in ids if aid in allowed]
        ids = [aid for aid in ids if self.store.has_artifact(aid)]

        base_scores = self._text_base_scores(compiled, ids)
        weights = self.language.spec.global_ranking
        entries = [
            self.ranker.score(aid, weights, base_score=base_scores.get(aid, 0.0))
            for aid in ids
        ]
        entries.sort(key=lambda e: (-e.score, e.artifact_id))
        return SearchResult(
            query=compiled,
            entries=tuple(entries[:limit]),
            total=len(entries),
            truncated=state.truncated,
        )

    # -- AST evaluation ----------------------------------------------------

    def _eval(
        self,
        node: QueryNode,
        context: RequestContext,
        universe: list[str] | None,
        state: _EvalState,
    ) -> list[str]:
        if isinstance(node, TextTerm):
            return self._eval_text(node)
        if isinstance(node, (FieldTerm, ProviderCall)):
            endpoint, request = self._leaf_call(node, context)
            return self._ids_from(self.engine.fetch(endpoint, request), state)
        if isinstance(node, And):
            prefetched = self._prefetch_branches(node.children, context, state)
            result: list[str] | None = None
            for index, child in enumerate(node.children):
                child_ids = (
                    prefetched[index]
                    if index in prefetched
                    else self._eval(child, context, universe, state)
                )
                if result is None:
                    result = child_ids
                else:
                    keep = set(child_ids)
                    result = [aid for aid in result if aid in keep]
                if not result:
                    return []
            return result or []
        if isinstance(node, Or):
            prefetched = self._prefetch_branches(node.children, context, state)
            seen: set[str] = set()
            merged: list[str] = []
            for index, child in enumerate(node.children):
                child_ids = (
                    prefetched[index]
                    if index in prefetched
                    else self._eval(child, context, universe, state)
                )
                for aid in child_ids:
                    if aid not in seen:
                        seen.add(aid)
                        merged.append(aid)
            return merged
        if isinstance(node, Not):
            excluded = set(self._eval(node.child, context, universe, state))
            scope = universe if universe is not None else self.store.artifact_ids()
            return [aid for aid in scope if aid not in excluded]
        raise QueryCompileError(f"unsupported query node {type(node).__name__}")

    def _eval_text(self, node: TextTerm) -> list[str]:
        tokens = tokenize(node.text)
        if not tokens:
            return []
        return self.store.search_tokens(tokens)

    def _bind(self, provider, value: str) -> dict[str, str]:
        input_spec = self.language.value_input(provider)
        if input_spec is None:
            raise QueryCompileError(
                f"provider {provider.name!r} does not accept a value"
            )
        return {input_spec.name: value}

    # -- provider fetches ---------------------------------------------------

    def _leaf_call(
        self, node: "FieldTerm | ProviderCall", context: RequestContext
    ) -> tuple[str, ProviderRequest]:
        """Resolve a provider-backed leaf to its (endpoint, request)."""
        if isinstance(node, FieldTerm):
            provider = self.language.provider_for_field(node.field)
            if provider is None:
                raise QueryCompileError(f"unknown query field {node.field!r}")
            inputs = self._bind(provider, node.value)
        else:
            provider = self.language._resolve_call(node.name)
            inputs = (
                self._bind(provider, node.argument) if node.argument else {}
            )
        request = ProviderRequest(
            inputs=inputs,
            context=RequestContext(
                user_id=context.user_id,
                team_id=context.team_id,
                limit=self.fetch_limit,
            ),
        )
        return (provider.endpoint, request)

    def _prefetch_branches(
        self,
        children: tuple[QueryNode, ...],
        context: RequestContext,
        state: _EvalState,
    ) -> dict[int, list[str]]:
        """Fan independent provider leaves of an And/Or out in parallel.

        Only direct FieldTerm/ProviderCall children qualify — they need
        no universe and are side-effect free.  Returns child index ->
        artifact ids, consumed by the caller's own combination loop.
        Keying on the branch position (not ``id(node)``, as this once
        did) means a short-circuiting ``And`` simply abandons the dict:
        there is no shared residue to mis-attribute to an unrelated node
        whose ``id()`` happens to collide later in the same search.
        """
        prefetched: dict[int, list[str]] = {}
        slots: list[int] = []
        calls: list[tuple[str, ProviderRequest]] = []
        for index, child in enumerate(children):
            if isinstance(child, (FieldTerm, ProviderCall)):
                slots.append(index)
                calls.append(self._leaf_call(child, context))
        if len(calls) < 2:
            return prefetched  # nothing to parallelise
        outcomes = self.engine.fetch_many(calls)
        for index, outcome in zip(slots, outcomes):
            if not outcome.ok:
                # Same contract as the serial path: a query that needs a
                # broken provider fails loudly, first failure in child
                # order wins.
                raise outcome.error
            prefetched[index] = self._ids_from(outcome.result, state)
        return prefetched

    def _ids_from(self, result: ProviderResult, state: _EvalState) -> list[str]:
        # Providers return full membership (their cache entries must not
        # bake in a usage-ranked top-N), so the evaluator applies its own
        # fetch cap here, after the cache: each leaf contributes at most
        # fetch_limit ids, in the provider's advisory order.
        ids = result.artifact_ids()
        if self.fetch_limit > 0 and len(ids) >= self.fetch_limit:
            state.truncated = True
            ids = ids[: self.fetch_limit]
        return ids

    # -- text relevance ---------------------------------------------------------

    def _text_base_scores(
        self, compiled: CompiledQuery, ids: list[str]
    ) -> dict[str, float]:
        """Name/text match bonuses for the query's free-text terms."""
        terms = [tokenize(t) for t in compiled.text_terms()]
        terms = [t for t in terms if t]
        if not terms:
            return {}
        scores: dict[str, float] = {}
        for aid in ids:
            name_tokens, text_tokens = self.store.artifact_tokens(aid)
            score = 0.0
            for term_tokens in terms:
                if all(tok in name_tokens for tok in term_tokens):
                    score += NAME_MATCH_BONUS
                elif all(tok in text_tokens for tok in term_tokens):
                    score += TEXT_MATCH_BONUS
            if score:
                scores[aid] = score
        return scores
