"""Query evaluation (Section 5.3).

"Each query element returns a list of data artifacts.  Combining multiple
query elements in a search query allows for an arithmetic combination of
different search queries and their resulting data artifact lists."

Evaluation is set algebra over those lists: AND intersects, OR unions,
NOT subtracts from the universe (all artifacts for global search, the
current view's artifacts when filtering a view).  Results are ranked with
the spec's global ranking weights plus a text-match base score.

Evaluation is **cost-based**: before any fetch, the
:class:`~repro.core.query.planner.QueryPlanner` estimates every node's
result cardinality, and ``And`` then evaluates its cheapest branch first,
carrying the running intersection as a candidate filter into later
branches — a planned-empty or emptied intersection skips the remaining
branch fetches entirely.  The resulting :class:`~repro.core.query.
planner.ExplainedPlan` (estimates, actuals, timings, skips) rides on the
:class:`SearchResult` and backs the CLI's ``--explain`` flag.  Planning
never changes *what* a query matches, only the order work happens in;
``planning = False`` restores strict left-to-right evaluation.

Provider fetches route through the :class:`~repro.providers.execution.
ExecutionEngine`: one search opens a request-scoped memo (identical
sub-fetches execute once), independent ``And``/``Or`` branches — and the
provider leaves of their one-level-nested subtrees — fan out on the
engine's thread pool with deterministic result ordering, and fetches
that fill :attr:`QueryEvaluator.fetch_limit` are flagged as truncated on
the :class:`SearchResult` instead of silently dropping matches.

Ranking is **lazy**: the evaluator hands the full match list to
:meth:`~repro.core.ranking.Ranker.top_k`, which scores with plain floats
and materialises scored entries only for the returned head.

**Stability: internal.**  Import through :mod:`repro` / the package
facades; this module's names may change without notice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.store import CatalogStore
from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.core.query.language import CompiledQuery, QueryLanguage
from repro.core.query.planner import ExplainedPlan, PlanNode, QueryPlanner
from repro.core.ranking import RankedArtifact, Ranker
from repro.errors import QueryCompileError
from repro.providers.base import ProviderRequest, ProviderResult, RequestContext
from repro.providers.execution import (
    Deadline,
    ExecutionEngine,
    FetchOutcome,
    FetchStatus,
    ProviderHealth,
)
from repro.providers.registry import EndpointRegistry
from repro.util.textutil import tokenize

#: Base-score bonus for a text term matching the artifact *name* vs. only
#: its description/tags — name hits should surface first.
NAME_MATCH_BONUS = 2.0
TEXT_MATCH_BONUS = 1.0


@dataclass(frozen=True)
class SearchResult:
    """The outcome of one search/filter evaluation."""

    query: CompiledQuery
    entries: tuple[RankedArtifact, ...]
    total: int
    #: True when at least one provider fetch filled the evaluator's
    #: fetch limit — set algebra may then under-report matches.
    truncated: bool = False
    #: The cost-based plan this search ran under (estimates vs. actuals,
    #: per-node timings, skipped fetches); None with planning disabled.
    plan: "ExplainedPlan | None" = None
    #: True when any provider leaf was served stale or skipped (open
    #: breaker / exhausted deadline) — the result set may under-report.
    degraded: bool = False
    #: One marker per degraded (endpoint, status) pair explaining why.
    health: tuple[ProviderHealth, ...] = ()

    def artifact_ids(self) -> list[str]:
        return [entry.artifact_id for entry in self.entries]

    def is_empty(self) -> bool:
        return self.total == 0


@dataclass
class _EvalState:
    """Per-search bookkeeping threaded through the AST walk."""

    truncated: bool = False
    fetches_skipped: int = 0
    #: Leaf nodes whose provider fetch already ran (prefetch fan-out or
    #: memo warming) — the skip accounting must not count these.
    warmed: set[QueryNode] = field(default_factory=set)
    #: The search's deadline budget; None means unbounded.
    deadline: "Deadline | None" = None
    degraded: bool = False
    health: list[ProviderHealth] = field(default_factory=list)


class QueryEvaluator:
    """Evaluates compiled queries against providers and the catalog."""

    def __init__(
        self,
        store: CatalogStore,
        engine: "ExecutionEngine | EndpointRegistry",
        language: QueryLanguage,
        ranker: Ranker,
    ):
        self.store = store
        # Accept a bare registry for convenience (tests, embedders) and
        # wrap it; all fetches go through an engine either way.
        if isinstance(engine, EndpointRegistry):
            engine = ExecutionEngine(engine, store=store)
        self.engine = engine
        self.language = language
        self.ranker = ranker
        self.planner = QueryPlanner(store, self.engine, self._leaf_call)
        #: Cost-based planning toggle; False restores the naive strict
        #: left-to-right evaluation order (and drops ``result.plan``).
        self.planning = True
        #: Result-size cap passed to providers during evaluation; large so
        #: intersections don't lose matches to provider-side truncation.
        self.fetch_limit = 10_000

    @property
    def registry(self) -> EndpointRegistry:
        return self.engine.registry

    def search(
        self,
        query: "str | QueryNode | CompiledQuery",
        context: RequestContext | None = None,
        universe: list[str] | None = None,
        limit: int = 50,
        budget_ms: float | None = None,
    ) -> SearchResult:
        """Evaluate *query*; *universe* scopes it to a view's artifacts.

        Global search uses the whole catalog as universe; filtering a view
        passes the view's artifact ids (§5.3: "the difference between
        search and filters is the set of data artifacts it is performed
        on").

        *budget_ms* bounds the search's provider work: once spent,
        remaining fetches are skipped (or served stale), not attempted,
        and the result is flagged ``degraded`` with per-provider health
        markers.  ``None`` falls back to the engine policy's default
        budget (unbounded out of the box).
        """
        tracer = self.engine.tracer
        with tracer.span("query.search") as sp:
            compiled = (
                query
                if isinstance(query, CompiledQuery)
                else self.language.compile(query)
            )
            if sp:
                sp.set("query", compiled.text)
            context = context or RequestContext()
            state = _EvalState(deadline=self.engine.deadline(budget_ms))
            plan_root: PlanNode | None = None
            planning_ms = 0.0
            if self.planning:
                with tracer.span("query.plan") as plan_sp:
                    started = time.perf_counter()
                    universe_size = (
                        len(universe)
                        if universe is not None
                        else self.store.artifact_count
                    )
                    plan_root = self.planner.plan(
                        compiled.node, context, universe_size
                    )
                    planning_ms = (time.perf_counter() - started) * 1000.0
                    if plan_sp:
                        plan_sp.set("universe", universe_size)
                        plan_sp.set("estimated", plan_root.estimated)
            with self.engine.scope():
                ids = self._eval(compiled.node, context, universe, state, plan_root)
            if universe is not None:
                allowed = set(universe)
                ids = [aid for aid in ids if aid in allowed]
            ids = [aid for aid in ids if self.store.has_artifact(aid)]

            base_scores = self._text_base_scores(compiled, ids)
            weights = self.language.spec.global_ranking
            entries = self.ranker.top_k(
                ids, weights, limit, base_scores=base_scores
            )
            plan = None
            if plan_root is not None:
                plan = ExplainedPlan(
                    root=plan_root,
                    planning_ms=planning_ms,
                    fetches_skipped=state.fetches_skipped,
                )
            unique_markers: dict[tuple[str, str], ProviderHealth] = {}
            for marker in state.health:
                unique_markers.setdefault(
                    (marker.endpoint, marker.status), marker
                )
            if sp:
                sp.set("total", len(ids))
                sp.set("returned", len(entries))
                if state.fetches_skipped:
                    sp.set("skipped", state.fetches_skipped)
                if state.truncated:
                    sp.set("truncated", True)
                if state.degraded:
                    sp.set("degraded", True)
            return SearchResult(
                query=compiled,
                entries=tuple(entries),
                total=len(ids),
                truncated=state.truncated,
                plan=plan,
                degraded=state.degraded,
                health=tuple(unique_markers.values()),
            )

    # -- AST evaluation ----------------------------------------------------

    def _eval(
        self,
        node: QueryNode,
        context: RequestContext,
        universe: list[str] | None,
        state: _EvalState,
        plan: PlanNode | None = None,
        candidates: set[str] | None = None,
    ) -> list[str]:
        """Evaluate *node*, recording actual cardinality/latency on *plan*.

        *candidates* is the running intersection of an enclosing planned
        ``And``: leaf results are filtered to it post-fetch (the fetch
        itself still runs unfiltered so cache entries stay full-membership)
        purely to keep intermediate lists small — the enclosing ``And``
        re-intersects, so the filter can never change the final set.
        """
        started = time.perf_counter()
        ids = self._eval_node(node, context, universe, state, plan, candidates)
        if plan is not None:
            plan.actual = len(ids)
            plan.elapsed_ms = (time.perf_counter() - started) * 1000.0
        return ids

    def _eval_node(
        self,
        node: QueryNode,
        context: RequestContext,
        universe: list[str] | None,
        state: _EvalState,
        plan: PlanNode | None,
        candidates: set[str] | None,
    ) -> list[str]:
        if isinstance(node, And):
            return self._eval_and(node, context, universe, state, plan, candidates)
        if isinstance(node, Or):
            return self._eval_or(node, context, universe, state, plan, candidates)
        if isinstance(node, TextTerm):
            ids = self._eval_text(node)
        elif isinstance(node, (FieldTerm, ProviderCall)):
            ids = self._leaf_ids(node, context, state)
        elif isinstance(node, Not):
            child_plan = plan.children[0] if plan is not None else None
            excluded = set(
                self._eval(node.child, context, universe, state, child_plan)
            )
            scope = universe if universe is not None else self.store.artifact_ids()
            ids = [aid for aid in scope if aid not in excluded]
        else:
            raise QueryCompileError(
                f"unsupported query node {type(node).__name__}"
            )
        if candidates is not None:
            ids = [aid for aid in ids if aid in candidates]
        return ids

    def _eval_and(
        self,
        node: And,
        context: RequestContext,
        universe: list[str] | None,
        state: _EvalState,
        plan: PlanNode | None,
        candidates: set[str] | None,
    ) -> list[str]:
        if plan is not None:
            return self._eval_and_planned(
                node, context, universe, state, plan, candidates
            )
        prefetched = self._prefetch_branches(node.children, context, state)
        result: list[str] | None = None
        for index, child in enumerate(node.children):
            if index in prefetched:
                child_ids = prefetched[index]
                if candidates is not None:
                    child_ids = [aid for aid in child_ids if aid in candidates]
            else:
                child_ids = self._eval(
                    child, context, universe, state, candidates=candidates
                )
            if result is None:
                result = child_ids
            else:
                keep = set(child_ids)
                result = [aid for aid in result if aid in keep]
            if not result:
                return []
        return result or []

    def _eval_and_planned(
        self,
        node: And,
        context: RequestContext,
        universe: list[str] | None,
        state: _EvalState,
        plan: PlanNode,
        candidates: set[str] | None,
    ) -> list[str]:
        """Selectivity-ordered conjunction.

        Children run cheapest-estimate first; the running intersection
        becomes the candidate filter for later branches, and a ``Not``
        that already has a running result is applied as a subtraction
        filter instead of materialising its universe-sized complement.
        A branch planned empty suppresses prefetching entirely — if it
        is indeed empty, every other branch's provider fetch is skipped
        and counted, which is the planner's headline saving.
        """
        order = QueryPlanner.execution_order(plan.children)
        for rank, index in enumerate(order):
            plan.children[index].order = rank
        planned_empty = any(child.estimated == 0 for child in plan.children)
        if planned_empty:
            prefetched: dict[int, list[str]] = {}
        else:
            prefetched = self._prefetch_branches(node.children, context, state)
        result: list[str] | None = None
        for position, index in enumerate(order):
            child = node.children[index]
            child_plan = plan.children[index]
            if result is not None and not result:
                self._skip_branches(order[position:], node, plan, context, state)
                break
            if isinstance(child, Not) and result is not None:
                started = time.perf_counter()
                excluded = set(
                    self._eval(
                        child.child,
                        context,
                        universe,
                        state,
                        child_plan.children[0],
                        candidates=set(result),
                    )
                )
                result = [aid for aid in result if aid not in excluded]
                child_plan.actual = len(result)
                child_plan.elapsed_ms = (time.perf_counter() - started) * 1000.0
                child_plan.note = "filter"
                continue
            if index in prefetched:
                child_ids = prefetched[index]
                child_plan.actual = len(child_ids)
                child_plan.note = "prefetched"
                if result is None and candidates is not None:
                    child_ids = [aid for aid in child_ids if aid in candidates]
            else:
                narrowed = set(result) if result is not None else candidates
                child_ids = self._eval(
                    child, context, universe, state, child_plan, narrowed
                )
            if result is None:
                result = list(child_ids)
            else:
                keep = set(child_ids)
                result = [aid for aid in result if aid in keep]
        return result or []

    def _skip_branches(
        self,
        indices: "list[int]",
        node: And,
        plan: PlanNode,
        context: RequestContext,
        state: _EvalState,
    ) -> None:
        """Mark never-evaluated branches skipped and count avoided fetches."""
        for index in indices:
            for entry in plan.children[index].iter_nodes():
                entry.skipped = True
            for term in node.children[index].iter_terms():
                if not isinstance(term, (FieldTerm, ProviderCall)):
                    continue
                if term in state.warmed:
                    continue  # its fetch already ran during prefetch
                endpoint, _ = self._leaf_call(term, context)
                self.engine.stats.record_fetch_skipped(endpoint)
                state.fetches_skipped += 1

    def _eval_or(
        self,
        node: Or,
        context: RequestContext,
        universe: list[str] | None,
        state: _EvalState,
        plan: PlanNode | None,
        candidates: set[str] | None,
    ) -> list[str]:
        prefetched = self._prefetch_branches(node.children, context, state)
        seen: set[str] = set()
        merged: list[str] = []
        for index, child in enumerate(node.children):
            child_plan = plan.children[index] if plan is not None else None
            if index in prefetched:
                child_ids = prefetched[index]
                if child_plan is not None:
                    child_plan.actual = len(child_ids)
                    child_plan.note = "prefetched"
                if candidates is not None:
                    child_ids = [aid for aid in child_ids if aid in candidates]
            else:
                child_ids = self._eval(
                    child, context, universe, state, child_plan, candidates
                )
            for aid in child_ids:
                if aid not in seen:
                    seen.add(aid)
                    merged.append(aid)
        return merged

    def _eval_text(self, node: TextTerm) -> list[str]:
        tokens = tokenize(node.text)
        if not tokens:
            return []
        return self.store.search_tokens(tokens)

    def _bind(self, provider, value: str) -> dict[str, str]:
        input_spec = self.language.value_input(provider)
        if input_spec is None:
            raise QueryCompileError(
                f"provider {provider.name!r} does not accept a value"
            )
        return {input_spec.name: value}

    # -- provider fetches ---------------------------------------------------

    def _leaf_call(
        self, node: "FieldTerm | ProviderCall", context: RequestContext
    ) -> tuple[str, ProviderRequest]:
        """Resolve a provider-backed leaf to its (endpoint, request)."""
        if isinstance(node, FieldTerm):
            provider = self.language.provider_for_field(node.field)
            if provider is None:
                raise QueryCompileError(f"unknown query field {node.field!r}")
            inputs = self._bind(provider, node.value)
        else:
            provider = self.language._resolve_call(node.name)
            inputs = (
                self._bind(provider, node.argument) if node.argument else {}
            )
        request = ProviderRequest(
            inputs=inputs,
            context=RequestContext(
                user_id=context.user_id,
                team_id=context.team_id,
                limit=self.fetch_limit,
            ),
        )
        return (provider.endpoint, request)

    def _leaf_ids(
        self,
        node: "FieldTerm | ProviderCall",
        context: RequestContext,
        state: _EvalState,
    ) -> list[str]:
        """Fetch a provider leaf under the search's deadline budget."""
        endpoint, request = self._leaf_call(node, context)
        outcome = self.engine.execute(endpoint, request, deadline=state.deadline)
        return self._outcome_ids(outcome, state)

    def _outcome_ids(
        self, outcome: FetchOutcome, state: _EvalState
    ) -> list[str]:
        """Map a leaf's outcome to ids, recording degradation.

        An invoked-and-failed endpoint still fails the query loudly (the
        pre-resilience contract); stale and skipped arms degrade instead:
        stale contributes its cached membership, skipped contributes
        nothing, and both flag the result with a health marker.
        """
        if outcome.status is FetchStatus.ERROR:
            raise outcome.error
        if outcome.degraded:
            state.degraded = True
            state.health.append(outcome.health_marker())
        if outcome.result is None:
            return []
        return self._ids_from(outcome.result, state)

    def _prefetch_branches(
        self,
        children: tuple[QueryNode, ...],
        context: RequestContext,
        state: _EvalState,
    ) -> dict[int, list[str]]:
        """Fan independent provider leaves of an And/Or out in parallel.

        Direct FieldTerm/ProviderCall children fill the returned index ->
        artifact-ids map, consumed by the caller's own combination loop.
        Provider leaves sitting one level down inside And/Or sub-branches
        ride along in the same fan-out purely to warm the request-scoped
        memo — their branch's serial evaluation then hits the memo instead
        of fetching.  Every leaf whose fetch ran here is recorded in
        ``state.warmed`` so the skip accounting never counts it.
        Keying on the branch position (not ``id(node)``, as this once
        did) means a short-circuiting ``And`` simply abandons the dict:
        there is no shared residue to mis-attribute to an unrelated node
        whose ``id()`` happens to collide later in the same search.
        """
        prefetched: dict[int, list[str]] = {}
        queued: set[QueryNode] = set()
        leaves: list[QueryNode] = []
        slots: list[int] = []
        calls: list[tuple[str, ProviderRequest]] = []
        for index, child in enumerate(children):
            if isinstance(child, (FieldTerm, ProviderCall)):
                slots.append(index)
                calls.append(self._leaf_call(child, context))
                queued.add(child)
                leaves.append(child)
        direct = len(calls)
        for child in children:
            if not isinstance(child, (And, Or)):
                continue
            for sub in child.children:
                if isinstance(sub, (FieldTerm, ProviderCall)) and sub not in queued:
                    queued.add(sub)
                    leaves.append(sub)
                    calls.append(self._leaf_call(sub, context))
        if len(calls) < 2:
            return {}  # nothing to parallelise
        outcomes = self.engine.execute_many(calls, deadline=state.deadline)
        for leaf, outcome in zip(leaves, outcomes):
            if outcome.status is FetchStatus.ERROR:
                # Same contract as the serial path: a query that needs a
                # broken provider fails loudly, first failure in child
                # order wins (direct leaves before nested ones).
                raise outcome.error
            if outcome.degraded:
                state.degraded = True
                state.health.append(outcome.health_marker())
            if outcome.result is not None:
                # Only a fetch that produced a result warmed the memo; a
                # skipped leaf may still be planner-skipped (and counted)
                # later without double bookkeeping.
                state.warmed.add(leaf)
        for index, outcome in zip(slots, outcomes[:direct]):
            if outcome.result is None:
                prefetched[index] = []  # skipped leaf contributes nothing
            else:
                prefetched[index] = self._ids_from(outcome.result, state)
        return prefetched

    def _ids_from(self, result: ProviderResult, state: _EvalState) -> list[str]:
        # Providers return full membership (their cache entries must not
        # bake in a usage-ranked top-N), so the evaluator applies its own
        # fetch cap here, after the cache: each leaf contributes at most
        # fetch_limit ids, in the provider's advisory order.
        ids = result.artifact_ids()
        if self.fetch_limit > 0 and len(ids) >= self.fetch_limit:
            state.truncated = True
            ids = ids[: self.fetch_limit]
        return ids

    # -- text relevance ---------------------------------------------------------

    def _text_base_scores(
        self, compiled: CompiledQuery, ids: list[str]
    ) -> dict[str, float]:
        """Name/text match bonuses for the query's free-text terms."""
        terms = [tokenize(t) for t in compiled.text_terms()]
        terms = [t for t in terms if t]
        if not terms:
            return {}
        scores: dict[str, float] = {}
        for aid in ids:
            name_tokens, text_tokens = self.store.artifact_tokens(aid)
            score = 0.0
            for term_tokens in terms:
                if all(tok in name_tokens for tok in term_tokens):
                    score += NAME_MATCH_BONUS
                elif all(tok in text_tokens for tok in term_tokens):
                    score += TEXT_MATCH_BONUS
            if score:
                scores[aid] = score
        return scores
