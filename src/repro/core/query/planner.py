"""Cost-based query planning.

Humboldt's search (§5.3) is set algebra over provider results, and the
paper's motivating catalogs hold "up to millions" of artifacts — so the
*order* in which an ``And`` evaluates its branches decides whether a
keystroke-triggered search touches a dozen artifacts or the whole
catalog.  The planner estimates every node's result cardinality before
evaluation:

* **text terms** — from the catalog's token-index bucket sizes
  (:meth:`~repro.catalog.store.CatalogStore.index_size`), the upper
  bound of a conjunctive token match;
* **provider leaves** — from :meth:`~repro.providers.execution.
  ExecutionEngine.estimate`: a live cached result answers with its exact
  size, otherwise the endpoint's declared estimator hook
  (:func:`~repro.providers.base.estimates_with`) is consulted;
* **composites** — ``And`` is bounded by its smallest known child,
  ``Or`` sums known children, ``Not`` is universe-bounded.

Estimates drive three things in the evaluator: selectivity ordering of
``And`` children (cheapest first, running intersection as a candidate
filter), planned-empty short-circuits that skip the remaining branch
fetches entirely, and the :class:`ExplainedPlan` attached to every
:class:`~repro.core.query.evaluator.SearchResult` (surfaced by the CLI's
``--explain`` flag).  Estimates only *order* work — they never replace a
fetch — so a wrong estimate costs speed, never correctness.

Estimation is also deliberately hydration-free: ``index_size`` is O(1)
against the resident backend and a single indexed COUNT against the
lazy on-disk backend, so planning a query over a cold-started 200k
catalog never forces entity or index buckets into memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.util.textutil import tokenize

if TYPE_CHECKING:  # type hints only; no runtime cycle
    from repro.catalog.store import CatalogStore
    from repro.providers.base import ProviderRequest, RequestContext
    from repro.providers.execution import ExecutionEngine

#: Resolves a provider-backed leaf to its (endpoint, request) — supplied
#: by the evaluator, which owns input binding.
LeafCall = Callable[["QueryNode", "RequestContext"], "tuple[str, ProviderRequest]"]

#: Longest node label kept in plan output.
_LABEL_WIDTH = 48


@dataclass
class PlanNode:
    """One query node's plan entry: estimate before, actuals after.

    ``children`` mirror the AST in **source order**; ``order`` records
    the position the planner chose for execution (meaningful under an
    ``And``).  ``actual``/``elapsed_ms`` stay unset for nodes the
    evaluator skipped.
    """

    label: str
    kind: str  # text | field | call | and | or | not
    estimated: int | None = None
    actual: int | None = None
    elapsed_ms: float = 0.0
    order: int = 0
    skipped: bool = False
    note: str = ""
    children: list["PlanNode"] = field(default_factory=list)

    def iter_nodes(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.iter_nodes()


@dataclass
class ExplainedPlan:
    """The full plan of one search, attached to its ``SearchResult``."""

    root: PlanNode
    planning_ms: float = 0.0
    #: Provider fetches the evaluator proved unnecessary (planned-empty
    #: branches, intersections that emptied before a branch was reached).
    fetches_skipped: int = 0

    def node_count(self) -> int:
        return sum(1 for _ in self.root.iter_nodes())

    def render(self) -> str:
        """Plain-text plan tree for the CLI's ``--explain`` flag."""
        lines = [
            f"plan: {self.node_count()} node(s), "
            f"planning {self.planning_ms:.2f} ms, "
            f"{self.fetches_skipped} fetch(es) skipped"
        ]

        def walk(node: PlanNode, depth: int) -> None:
            estimated = "?" if node.estimated is None else str(node.estimated)
            actual = "-" if node.actual is None else str(node.actual)
            parts = [
                f"{'  ' * depth}{node.kind:<5} {node.label}",
                f"est={estimated}",
                f"actual={actual}",
            ]
            if node.actual is not None:
                parts.append(f"{node.elapsed_ms:.2f} ms")
            if node.skipped:
                parts.append("SKIPPED")
            if node.note:
                parts.append(f"[{node.note}]")
            lines.append("  ".join(parts))
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 1)
        return "\n".join(lines)


class QueryPlanner:
    """Estimates query-node cardinalities and picks evaluation order."""

    def __init__(
        self,
        store: "CatalogStore",
        engine: "ExecutionEngine",
        leaf_call: LeafCall,
    ):
        self.store = store
        self.engine = engine
        self._leaf_call = leaf_call

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        node: QueryNode,
        context: "RequestContext",
        universe_size: int,
    ) -> PlanNode:
        """Build the plan tree for *node*, estimating every node."""
        if isinstance(node, TextTerm):
            return self._leaf_plan(node, "text", self._estimate_text(node))
        if isinstance(node, FieldTerm):
            return self._leaf_plan(node, "field", self._estimate_leaf(node, context))
        if isinstance(node, ProviderCall):
            return self._leaf_plan(node, "call", self._estimate_leaf(node, context))
        if isinstance(node, (And, Or)):
            children = [
                self.plan(child, context, universe_size)
                for child in node.children
            ]
            known = [c.estimated for c in children if c.estimated is not None]
            if isinstance(node, And):
                estimated = min(known) if known else None
                kind = "and"
            else:
                # A sum is only an estimate of the union when every branch
                # is known; a partially-known Or stays unknown.
                estimated = (
                    sum(known) if len(known) == len(children) else None
                )
                kind = "or"
            plan = self._leaf_plan(node, kind, estimated)
            plan.children = children
            return plan
        if isinstance(node, Not):
            child = self.plan(node.child, context, universe_size)
            # Universe-bounded: an unknown child still cannot exceed the
            # universe, and that upper bound is exactly what pushes Not
            # branches to the back of an And.
            estimated = max(universe_size - (child.estimated or 0), 0)
            plan = self._leaf_plan(node, "not", estimated)
            plan.children = [child]
            return plan
        # Unknown node kinds plan as opaque; evaluation will reject them.
        return self._leaf_plan(node, type(node).__name__.lower(), None)

    @staticmethod
    def execution_order(children: Sequence[PlanNode]) -> list[int]:
        """Child indices in evaluation order: most selective first.

        Known estimates ascend; unknown-cardinality branches follow (they
        could be anything, but at least they produce candidate sets);
        ``Not`` branches go last — they are universe-sized complements,
        cheapest applied as a filter on an already-small intersection.
        Ties keep source order, so equal-cost plans match the naive
        evaluator's fetch order.
        """

        def key(pair: tuple[int, PlanNode]) -> tuple[int, int, int]:
            index, plan = pair
            if plan.kind == "not":
                return (2, plan.estimated or 0, index)
            if plan.estimated is None:
                return (1, 0, index)
            return (0, plan.estimated, index)

        return [index for index, _ in sorted(enumerate(children), key=key)]

    # -- leaf estimation ----------------------------------------------------

    def _estimate_text(self, node: TextTerm) -> int:
        """Upper bound of a conjunctive token match: the rarest token."""
        tokens = tokenize(node.text)
        if not tokens:
            return 0
        return min(self.store.index_size("token", token) for token in tokens)

    def _estimate_leaf(
        self, node: "FieldTerm | ProviderCall", context: "RequestContext"
    ) -> int | None:
        endpoint, request = self._leaf_call(node, context)
        return self.engine.estimate(endpoint, request)

    @staticmethod
    def _leaf_plan(node: QueryNode, kind: str, estimated: int | None) -> PlanNode:
        label = node.to_text()
        if len(label) > _LABEL_WIDTH:
            label = label[: _LABEL_WIDTH - 1] + "…"
        return PlanNode(label=label, kind=kind, estimated=estimated)
