"""Natural-language ↔ query-language translation (Section 8).

The paper's discussion proposes "combining the precision of query-based
search enabling metadata constraints with the high recall of natural
language", and participant P4 asked to "convert the search into a free
text formula".  This module supplies both directions without any model
dependency:

* :func:`explain` — render a query AST as an English sentence (the
  query → free-text-formula direction);
* :class:`NaturalLanguageTranslator` — rule-based English → AST
  translation ("tables owned by Alex endorsed by Mike about sales"),
  grounded in the spec's admissible fields and the catalog's badge/type
  vocabulary.  Unmatched words degrade gracefully to free-text terms, so
  recall never drops below plain keyword search.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.catalog.store import CatalogStore
from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
    flatten_and,
)
from repro.core.query.language import QueryLanguage
from repro.errors import QueryCompileError

#: Words carrying no search signal in NL requests.
STOPWORDS = frozenset(
    "a an and the that which with for me my all any of in on to is are was "
    "find show give list get containing contain contains has have had it "
    "them this those please data".split()
)

#: plural/singular artifact-type words -> ArtifactType value
TYPE_WORDS = {
    "table": "table", "tables": "table",
    "dataset": "dataset", "datasets": "dataset",
    "visualization": "visualization", "visualizations": "visualization",
    "chart": "visualization", "charts": "visualization",
    "dashboard": "dashboard", "dashboards": "dashboard",
    "workbook": "workbook", "workbooks": "workbook",
    "document": "document", "documents": "document",
}

_NAME = r"((?:'[^']+')|(?:\"[^\"]+\")|(?:[A-Z][\w.-]*(?:\s+[A-Z][\w.-]*)?))"


def _strip_quotes(raw: str) -> str:
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    return raw


@dataclass(frozen=True)
class Translation:
    """The outcome of one NL translation."""

    text: str
    node: QueryNode
    matched: tuple[str, ...] = ()  # human-readable rule hits
    residual: tuple[str, ...] = ()  # words that became free text

    def query_text(self) -> str:
        """The equivalent query-language string."""
        return self.node.to_text()


class NaturalLanguageTranslator:
    """Rule-based English → query translation, grounded in the spec."""

    def __init__(self, language: QueryLanguage, store: CatalogStore):
        self.language = language
        self.store = store

    def translate(self, text: str) -> Translation:
        """Translate *text*; raises :class:`QueryCompileError` when nothing
        at all can be extracted (empty input)."""
        working = text.strip()
        if not working:
            raise QueryCompileError("cannot translate an empty request")
        terms: list[QueryNode] = []
        matched: list[str] = []

        working = self._extract_ownership(working, terms, matched)
        working = self._extract_badge_grants(working, terms, matched)
        working = self._extract_similar(working, terms, matched)
        working = self._extract_tags(working, terms, matched)
        working = self._extract_badges(working, terms, matched)
        working = self._extract_types(working, terms, matched)
        working = self._extract_recency(working, terms, matched)
        residual = self._extract_residual_text(working, terms)

        if not terms:
            raise QueryCompileError(
                f"could not extract any query terms from {text!r}"
            )
        return Translation(
            text=text,
            node=flatten_and(terms),
            matched=tuple(matched),
            residual=tuple(residual),
        )

    # -- extraction rules ---------------------------------------------------

    def _extract_ownership(self, working, terms, matched) -> str:
        def replace(match: re.Match) -> str:
            verb = match.group(1).lower()
            name = _strip_quotes(match.group(2))
            fld = "created_by" if verb == "created" else "owned_by"
            if self.language.provider_for_field(fld) is None:
                fld = "owned_by"
            terms.append(FieldTerm(field=fld, value=name))
            matched.append(f"{fld} = {name}")
            return " "

        return re.sub(
            rf"\b(owned|created|made|authored)\s+by\s+{_NAME}",
            replace, working,
        )

    def _extract_badge_grants(self, working, terms, matched) -> str:
        badges = set(self.store.badges_in_use()) or {"endorsed", "certified"}

        def replace(match: re.Match) -> str:
            badge = match.group(1).lower()
            name = _strip_quotes(match.group(2))
            terms.append(FieldTerm(field="badged", value=badge))
            terms.append(FieldTerm(field="badged_by", value=name))
            matched.append(f"badged {badge} by {name}")
            return " "

        # case-insensitivity is scoped to the badge word only — the name
        # capture must stay capitalised/quoted or it swallows plain words.
        pattern = (
            rf"\b((?i:{'|'.join(sorted(badges))}))\s+(?i:by)\s+{_NAME}"
        )
        return re.sub(pattern, replace, working)

    def _extract_similar(self, working, terms, matched) -> str:
        def replace(match: re.Match) -> str:
            name = _strip_quotes(match.group(1))
            artifact_id = self._resolve_artifact(name)
            if artifact_id is None:
                terms.append(TextTerm(text=name))
                matched.append(f"similar target {name!r} unresolved -> text")
            else:
                terms.append(ProviderCall(name="similar",
                                          argument=artifact_id))
                matched.append(f"similar to {name}")
            return " "

        return re.sub(
            rf"\b(?i:similar to|related to|joins? with|joinable to)\s+{_NAME}",
            replace, working,
        )

    def _extract_tags(self, working, terms, matched) -> str:
        def replace(match: re.Match) -> str:
            tag = _strip_quotes(match.group(1)).lower()
            if tag in self.store.tags_in_use():
                terms.append(FieldTerm(field="tagged", value=tag))
                matched.append(f"tagged = {tag}")
            else:
                terms.append(TextTerm(text=tag))
                matched.append(f"about {tag!r} -> text")
            return " "

        return re.sub(
            r"\b(?:tagged|about|regarding|concerning)\s+([\w'\"-]+)",
            replace, working, flags=re.IGNORECASE,
        )

    def _extract_badges(self, working, terms, matched) -> str:
        badges = set(self.store.badges_in_use()) or {"endorsed", "certified",
                                                     "deprecated"}

        def replace(match: re.Match) -> str:
            badge = match.group(1).lower()
            terms.append(FieldTerm(field="badged", value=badge))
            matched.append(f"badged = {badge}")
            return " "

        pattern = rf"\b({'|'.join(sorted(badges))})\b"
        return re.sub(pattern, replace, working, flags=re.IGNORECASE)

    def _extract_types(self, working, terms, matched) -> str:
        remaining = []
        seen_types: list[str] = []
        for word in working.split():
            mapped = TYPE_WORDS.get(word.lower().strip(",."))
            if mapped and mapped not in seen_types:
                seen_types.append(mapped)
            elif mapped:
                pass  # duplicate type mention
            else:
                remaining.append(word)
        if len(seen_types) == 1:
            terms.append(FieldTerm(field="type", value=seen_types[0]))
            matched.append(f"type = {seen_types[0]}")
        elif len(seen_types) > 1:
            terms.append(Or(children=tuple(
                FieldTerm(field="type", value=t) for t in seen_types
            )))
            matched.append(f"type in {seen_types}")
        return " ".join(remaining)

    def _extract_recency(self, working, terms, matched) -> str:
        if re.search(r"\brecent(?:ly)?\b", working, flags=re.IGNORECASE):
            if "recents" in self.language.callable_providers():
                terms.append(ProviderCall(name="recents"))
                matched.append("recent -> :recents()")
            working = re.sub(r"\brecent(?:ly)?\b", " ", working,
                             flags=re.IGNORECASE)
        return working

    def _extract_residual_text(self, working, terms) -> list[str]:
        residual = []
        for word in re.findall(r"[A-Za-z0-9_]+", working):
            lowered = word.lower()
            if lowered in STOPWORDS:
                continue
            residual.append(lowered)
            terms.append(TextTerm(text=lowered))
        return residual

    def _resolve_artifact(self, name: str) -> str | None:
        lowered = name.lower()
        hits = [
            a.id for a in self.store.artifacts() if a.name.lower() == lowered
        ]
        return hits[0] if len(hits) == 1 else None


# -- query -> English (P4's "free text formula") ------------------------------

_FIELD_PHRASES = {
    "type": "of type {v}",
    "owned_by": "owned by {v}",
    "created_by": "created by {v}",
    "badged": "badged {v}",
    "badged_by": "with a badge granted by {v}",
    "tagged": "tagged {v}",
}


def explain(node: QueryNode) -> str:
    """Render a query AST as an English sentence.

    >>> from repro.core.query.parser import parse_query
    >>> explain(parse_query("type: table owned_by: Alex & sales"))
    'artifacts of type table, owned by Alex, matching "sales"'
    """
    return "artifacts " + _explain(node)


def _explain(node: QueryNode) -> str:
    if isinstance(node, TextTerm):
        return f'matching "{node.text}"'
    if isinstance(node, FieldTerm):
        template = _FIELD_PHRASES.get(node.field)
        if template:
            return template.format(v=node.value)
        return f"whose {node.field.replace('_', ' ')} is {node.value}"
    if isinstance(node, ProviderCall):
        label = node.name.replace("_", " ")
        if node.argument:
            return f"from {label} ({node.argument})"
        return f"from {label}"
    if isinstance(node, And):
        return ", ".join(_explain(child) for child in node.children)
    if isinstance(node, Or):
        return " or ".join(_explain(child) for child in node.children)
    if isinstance(node, Not):
        return f"not {_explain(node.child)}"
    return str(node)
