"""Query lexer.

Turns query text into a token stream.  The token set is small: words,
quoted strings, ``:`` ``(`` ``)`` punctuation, the connectives (symbolic
``&``/``|``/``!`` and word forms ``and``/``or``/``not``).  Positions are
kept on every token so syntax errors and autocomplete can point at the
offending character.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

_WORD_PUNCT = frozenset("_-.")


def _is_word_char(char: str) -> bool:
    """Query words are unicode alphanumerics plus ``_-.`` — search bars
    receive whatever users type (VERKÄUFE, naïve, 東京)."""
    return char.isalnum() or char in _WORD_PUNCT

#: token kinds
WORD = "WORD"
QUOTED = "QUOTED"
COLON = "COLON"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
AND = "AND"
OR = "OR"
NOT = "NOT"
EOF = "EOF"

_WORD_OPERATORS = {"and": AND, "or": OR, "not": NOT}
_SYMBOL_OPERATORS = {"&": AND, "|": OR, "!": NOT}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, @{self.position})"


def tokenize_query(text: str) -> list[Token]:
    """Lex *text*; always ends with an EOF token.

    Raises :class:`QuerySyntaxError` on unterminated quotes or characters
    outside the language.
    """
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _SYMBOL_OPERATORS:
            tokens.append(Token(_SYMBOL_OPERATORS[char], char, index))
            index += 1
            continue
        if char == ":":
            tokens.append(Token(COLON, ":", index))
            index += 1
            continue
        if char == "(":
            tokens.append(Token(LPAREN, "(", index))
            index += 1
            continue
        if char == ")":
            tokens.append(Token(RPAREN, ")", index))
            index += 1
            continue
        if char in ("'", '"'):
            token, index = _lex_quoted(text, index)
            tokens.append(token)
            continue
        if _is_word_char(char):
            token, index = _lex_word(text, index)
            tokens.append(token)
            continue
        raise QuerySyntaxError(
            f"unexpected character {char!r}", position=index, text=text
        )
    tokens.append(Token(EOF, "", length))
    return tokens


def _lex_quoted(text: str, start: int) -> tuple[Token, int]:
    quote = text[start]
    index = start + 1
    chars: list[str] = []
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            chars.append(text[index + 1])
            index += 2
            continue
        if char == quote:
            return (Token(QUOTED, "".join(chars), start), index + 1)
        chars.append(char)
        index += 1
    raise QuerySyntaxError("unterminated quoted string", position=start, text=text)


def _lex_word(text: str, start: int) -> tuple[Token, int]:
    index = start
    while index < len(text) and _is_word_char(text[index]):
        index += 1
    word = text[start:index]
    kind = _WORD_OPERATORS.get(word.lower(), WORD)
    value = word.lower() if kind != WORD else word
    return (Token(kind, value, start), index)
