"""Query autocomplete (Figure 5).

"Humboldt generates the query language based on the specification of
metadata providers and provides autocomplete suggestions for admissible
prefixes and values as the user types the query."

Given a partial query string, the autocompleter decides which state the
cursor is in — starting a term, typing a field prefix, typing a value for
a known field, or after a complete term — and suggests accordingly.
Value suggestions are typed by the bound input's ``input_type``: user
names for ``user`` inputs, badges in use for ``badge`` inputs, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.model import ArtifactType
from repro.catalog.store import CatalogStore
from repro.core.query import lexer
from repro.core.query.language import QueryLanguage
from repro.core.query.lexer import Token, tokenize_query
from repro.errors import QuerySyntaxError
from repro.providers.base import InputSpec

#: Maximum suggestions returned per request.
DEFAULT_LIMIT = 8


@dataclass(frozen=True)
class Suggestion:
    """One completion the UI can offer."""

    kind: str  # "field" | "value" | "provider" | "operator"
    text: str  # the completion to insert
    detail: str = ""  # human-readable hint (provider description etc.)


class Autocompleter:
    """Spec-driven suggestions for partial queries."""

    def __init__(self, language: QueryLanguage, store: CatalogStore):
        self.language = language
        self.store = store

    def suggest(self, partial: str, limit: int = DEFAULT_LIMIT) -> list[Suggestion]:
        """Suggestions for the query-so-far *partial*."""
        try:
            tokens = tokenize_query(partial)
        except QuerySyntaxError:
            return []  # unterminated quote etc.: nothing sensible to offer
        tokens = tokens[:-1]  # drop EOF

        if not tokens:
            return self._start_suggestions("", limit)

        last = tokens[-1]
        trailing_space = partial.endswith((" ", "\t"))

        # "field:" (value position) — possibly with a partial value typed.
        value_state = self._value_state(tokens, trailing_space)
        if value_state is not None:
            field_name, prefix = value_state
            return self._value_suggestions(field_name, prefix, limit)

        # ":" or ":nam" — provider-call position.
        if last.kind == lexer.COLON and not trailing_space:
            return self._provider_suggestions("", limit)
        if (
            len(tokens) >= 2
            and tokens[-2].kind == lexer.COLON
            and last.kind == lexer.WORD
            and not trailing_space
            and self._colon_starts_call(tokens, len(tokens) - 2)
        ):
            return self._provider_suggestions(last.value, limit)

        # Mid-word: complete field names.
        if last.kind == lexer.WORD and not trailing_space:
            return self._start_suggestions(last.value, limit)

        # After a complete term: operators plus fresh-term starters.
        operators = [
            Suggestion("operator", "&", "and: narrow the result"),
            Suggestion("operator", "|", "or: widen the result"),
            Suggestion("operator", "!", "not: exclude matches"),
        ]
        return (operators + self._start_suggestions("", limit))[:limit]

    # -- states -------------------------------------------------------------

    def _value_state(
        self, tokens: list[Token], trailing_space: bool
    ) -> tuple[str, str] | None:
        """Detect "<field>: [partial]" — returns (field, partial_value)."""
        # field WORD ':'            -> value position, empty prefix
        # field WORD ':' WORD       -> value position, prefix typed
        if len(tokens) >= 2 and tokens[-1].kind == lexer.COLON:
            field = self._field_before_colon(tokens, len(tokens) - 1)
            if field is not None:
                return (field, "")
        if (
            len(tokens) >= 3
            and tokens[-2].kind == lexer.COLON
            and tokens[-1].kind == lexer.WORD
            and not trailing_space
        ):
            field = self._field_before_colon(tokens, len(tokens) - 2)
            if field is not None:
                return (field, tokens[-1].value)
        return None

    def _field_before_colon(
        self, tokens: list[Token], colon_index: int
    ) -> str | None:
        """The field name owning the colon at *colon_index*, if any."""
        if colon_index == 0:
            return None
        word = tokens[colon_index - 1]
        if word.kind != lexer.WORD:
            return None
        colon = tokens[colon_index]
        if colon.position != word.position + len(word.value):
            return None  # detached colon: a provider call, not a field
        name = word.value
        # Spaced field: "owned by:" -> owned_by
        if colon_index >= 2 and tokens[colon_index - 2].kind == lexer.WORD:
            candidate = f"{tokens[colon_index - 2].value}_{name}"
            if self.language.provider_for_field(candidate.lower()):
                return candidate.lower()
        if self.language.provider_for_field(name.lower()):
            return name.lower()
        return None

    def _colon_starts_call(self, tokens: list[Token], colon_index: int) -> bool:
        """A colon at the start or detached from the previous word."""
        if colon_index == 0:
            return True
        previous = tokens[colon_index - 1]
        if previous.kind != lexer.WORD:
            return True
        colon = tokens[colon_index]
        return colon.position != previous.position + len(previous.value)

    # -- suggestion builders --------------------------------------------------

    def _start_suggestions(self, prefix: str, limit: int) -> list[Suggestion]:
        prefix = prefix.lower()
        suggestions = []
        for field_name in self.language.field_names():
            if field_name.startswith(prefix):
                provider = self.language.provider_for_field(field_name)
                detail = provider.description if provider else ""
                suggestions.append(
                    Suggestion("field", f"{field_name}: ", detail)
                )
        return suggestions[:limit]

    def _provider_suggestions(self, prefix: str, limit: int) -> list[Suggestion]:
        prefix = prefix.lower()
        suggestions = []
        for name in self.language.callable_providers():
            if name.startswith(prefix):
                provider = self.language.provider_for_field(name)
                detail = provider.description if provider else ""
                suggestions.append(Suggestion("provider", f":{name}()", detail))
        return suggestions[:limit]

    def _value_suggestions(
        self, field_name: str, prefix: str, limit: int
    ) -> list[Suggestion]:
        provider = self.language.provider_for_field(field_name)
        if provider is None:
            return []
        input_spec = self.language.value_input(provider)
        if input_spec is None:
            return []
        values = self._domain_values(input_spec)
        prefix_lower = prefix.lower()
        matched = [v for v in values if v.lower().startswith(prefix_lower)]
        return [
            Suggestion("value", _quote_value(v), f"{input_spec.input_type} value")
            for v in matched[:limit]
        ]

    def _domain_values(self, input_spec: InputSpec) -> list[str]:
        """Plausible values for an input, per its declared type (§5.3)."""
        if input_spec.input_type == "user":
            return [u.name for u in self.store.users()]
        if input_spec.input_type == "team":
            return [t.name for t in self.store.teams()]
        if input_spec.input_type == "badge":
            return self.store.badges_in_use()
        if input_spec.input_type == "artifact_type":
            return [member.value for member in ArtifactType]
        if input_spec.input_type == "artifact":
            ranked = self.store.usage.most_viewed(limit=20)
            return [
                self.store.artifact(aid).name
                for aid, _ in ranked
                if self.store.has_artifact(aid)
            ]
        if input_spec.input_type == "text":
            return self.store.tags_in_use()
        return []


def _quote_value(value: str) -> str:
    if all(ch.isalnum() or ch in "_-." for ch in value):
        return value
    return f'"{value}"'
