"""Query-language compilation against a Humboldt specification.

"Humboldt uses metadata specifications to determine admissible field-value
pairs and compositions" (Figure 5).  The :class:`QueryLanguage` is that
determination: it binds field terms and provider calls in a parsed query to
provider specs, rejecting unknown fields with did-you-mean suggestions, and
checking that provider calls receive the inputs their spec requires.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.core.query.parser import parse_query
from repro.core.spec.model import HumboldtSpec, ProviderSpec
from repro.errors import QueryCompileError
from repro.providers.base import InputSpec


@dataclass(frozen=True)
class BoundTerm:
    """A query term bound to the provider spec that will serve it."""

    node: QueryNode
    provider: ProviderSpec | None  # None for free-text terms
    inputs: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CompiledQuery:
    """A validated query: the AST plus its provider bindings."""

    text: str
    node: QueryNode
    bindings: tuple[BoundTerm, ...]

    def providers_used(self) -> list[str]:
        names = []
        for binding in self.bindings:
            if binding.provider and binding.provider.name not in names:
                names.append(binding.provider.name)
        return names

    def text_terms(self) -> list[str]:
        return [
            b.node.text
            for b in self.bindings
            if isinstance(b.node, TextTerm)
        ]


class QueryLanguage:
    """The language generated from a spec (fields, calls, validation)."""

    def __init__(self, spec: HumboldtSpec):
        self.spec = spec
        self._fields: dict[str, ProviderSpec] = spec.search_fields()

    # -- vocabulary ----------------------------------------------------------

    def field_names(self) -> list[str]:
        """All admissible query fields, sorted."""
        return sorted(self._fields)

    def provider_for_field(self, field_name: str) -> ProviderSpec | None:
        return self._fields.get(field_name)

    def callable_providers(self) -> list[str]:
        """Providers usable as ``:name()`` calls (≤1 required input)."""
        return sorted(
            name
            for name, provider in self._fields.items()
            if len(provider.required_inputs()) <= 1
        )

    def value_input(self, provider: ProviderSpec) -> InputSpec | None:
        """The input a field/call value binds to: the required input if
        any, else the first declared input."""
        required = provider.required_inputs()
        if required:
            return required[0]
        return provider.inputs[0] if provider.inputs else None

    # -- compilation -------------------------------------------------------------

    def compile(self, query: "str | QueryNode") -> CompiledQuery:
        """Parse (if needed) and bind *query*; raises on unknown fields."""
        if isinstance(query, str):
            text = query
            node = parse_query(query)
        else:
            text = query.to_text()
            node = query
        bindings: list[BoundTerm] = []
        self._bind(node, bindings)
        return CompiledQuery(text=text, node=node, bindings=tuple(bindings))

    def _bind(self, node: QueryNode, bindings: list[BoundTerm]) -> None:
        if isinstance(node, TextTerm):
            bindings.append(BoundTerm(node=node, provider=None))
            return
        if isinstance(node, FieldTerm):
            provider = self._fields.get(node.field)
            if provider is None:
                raise QueryCompileError(self._unknown_field_message(node.field))
            inputs = self._bind_value(provider, node.value, node.field)
            bindings.append(
                BoundTerm(node=node, provider=provider, inputs=inputs)
            )
            return
        if isinstance(node, ProviderCall):
            provider = self._resolve_call(node.name)
            inputs = (
                self._bind_value(provider, node.argument, node.name)
                if node.argument
                else {}
            )
            missing = [
                spec.name
                for spec in provider.required_inputs()
                if spec.name not in inputs
            ]
            if missing:
                raise QueryCompileError(
                    f":{node.name}() requires a value for input "
                    f"{missing[0]!r} — write :{node.name}(<{missing[0]}>)"
                )
            bindings.append(
                BoundTerm(node=node, provider=provider, inputs=inputs)
            )
            return
        if isinstance(node, Not):
            self._bind(node.child, bindings)
            return
        if isinstance(node, (And, Or)):
            for child in node.children:
                self._bind(child, bindings)
            return
        raise QueryCompileError(f"unsupported query node {type(node).__name__}")

    def _bind_value(
        self, provider: ProviderSpec, value: str, term_name: str
    ) -> dict[str, str]:
        input_spec = self.value_input(provider)
        if input_spec is None:
            raise QueryCompileError(
                f"{term_name!r} does not accept a value "
                f"(provider {provider.name!r} declares no inputs)"
            )
        return {input_spec.name: value}

    def _resolve_call(self, name: str) -> ProviderSpec:
        # Calls address providers by name; search_field aliases also work.
        provider = self._fields.get(name)
        if provider is not None:
            return provider
        for spec in self.spec.providers:
            if spec.name == name and spec.visibility.search:
                return spec
        raise QueryCompileError(self._unknown_field_message(name, call=True))

    def _unknown_field_message(self, name: str, call: bool = False) -> str:
        kind = "provider" if call else "query field"
        candidates = self.field_names()
        close = difflib.get_close_matches(name, candidates, n=3, cutoff=0.5)
        hint = f"; did you mean {', '.join(close)}?" if close else ""
        return (
            f"unknown {kind} {name!r} — admissible fields: "
            f"{', '.join(candidates)}{hint}"
        )
