"""Recursive-descent parser for the query language.

Grammar (NOT binds tightest, then AND, then OR; adjacency is implicit AND,
matching the paper's ``badged by: 'Mike' & 'sales'`` example where explicit
``&`` and plain adjacency coexist):

    query          := or_expr EOF
    or_expr        := and_expr (OR and_expr)*
    and_expr       := unary (AND? unary)*
    unary          := NOT unary | primary
    primary        := '(' or_expr ')' | provider_call | field_term | term
    provider_call  := ':' WORD '(' value? ')'
    field_term     := WORD WORD? ':' value
    value          := WORD | QUOTED
    term           := WORD | QUOTED

Field names may be one or two words before the colon, so the paper's
``owned by: 'Alex'`` parses to the same node as ``owned_by: "Alex"``.
"""

from __future__ import annotations

from repro.core.query import lexer
from repro.core.query.ast import (
    FieldTerm,
    Not,
    ProviderCall,
    QueryNode,
    TextTerm,
    flatten_and,
    flatten_or,
)
from repro.core.query.lexer import Token, tokenize_query
from repro.errors import QuerySyntaxError

#: Token kinds that may begin a primary expression.
_PRIMARY_STARTERS = (lexer.WORD, lexer.QUOTED, lexer.COLON, lexer.LPAREN)


def parse_query(text: str) -> QueryNode:
    """Parse *text* into an AST; raises :class:`QuerySyntaxError`."""
    tokens = tokenize_query(text)
    parser = _Parser(tokens, text)
    node = parser.parse_or()
    parser.expect(lexer.EOF, "unexpected trailing input")
    return node


class _Parser:
    def __init__(self, tokens: list[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != lexer.EOF:
            self.index += 1
        return token

    def expect(self, kind: str, message: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise QuerySyntaxError(
                f"{message} (got {token.kind} {token.value!r})",
                position=token.position,
                text=self.text,
            )
        return self.advance()

    # -- grammar ------------------------------------------------------------

    def parse_or(self) -> QueryNode:
        children = [self.parse_and()]
        while self.peek().kind == lexer.OR:
            self.advance()
            children.append(self.parse_and())
        return flatten_or(children)

    def parse_and(self) -> QueryNode:
        children = [self.parse_unary()]
        while True:
            token = self.peek()
            if token.kind == lexer.AND:
                self.advance()
                children.append(self.parse_unary())
            elif token.kind in _PRIMARY_STARTERS or token.kind == lexer.NOT:
                children.append(self.parse_unary())  # implicit AND
            else:
                break
        return flatten_and(children)

    def parse_unary(self) -> QueryNode:
        if self.peek().kind == lexer.NOT:
            self.advance()
            return Not(child=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> QueryNode:
        token = self.peek()
        if token.kind == lexer.LPAREN:
            self.advance()
            node = self.parse_or()
            self.expect(lexer.RPAREN, "expected closing bracket")
            return node
        if token.kind == lexer.COLON:
            return self.parse_provider_call()
        if token.kind == lexer.QUOTED:
            self.advance()
            return TextTerm(text=token.value)
        if token.kind == lexer.WORD:
            return self.parse_word_term()
        raise QuerySyntaxError(
            f"expected a term (got {token.kind} {token.value!r})",
            position=token.position,
            text=self.text,
        )

    def parse_provider_call(self) -> QueryNode:
        colon = self.advance()  # ':'
        name = self.expect(
            lexer.WORD, "expected provider name after ':'"
        )
        self.expect(lexer.LPAREN, f"expected '(' after ':{name.value}'")
        argument = ""
        token = self.peek()
        if token.kind in (lexer.WORD, lexer.QUOTED):
            argument = self.advance().value
        self.expect(
            lexer.RPAREN, f"expected ')' closing ':{name.value}(...'"
        )
        del colon
        return ProviderCall(name=name.value, argument=argument)

    #: Second words allowed in spaced field names ("owned by:", "badged
    #: by:").  Restricting the set keeps ``sales type: table`` parsing as
    #: free text ``sales`` plus field ``type`` rather than a bogus
    #: ``sales_type`` field.
    FIELD_JOINERS = frozenset({"by"})

    def parse_word_term(self) -> QueryNode:
        """WORD-initiated term: a field term (1-2 words + ':') or free text."""
        first = self.advance()
        # Two-word field name: WORD JOINER ':'  (e.g. "owned by: ...")
        if (
            self.peek().kind == lexer.WORD
            and self.peek().value.lower() in self.FIELD_JOINERS
            and self._is_field_colon(self.peek(1), self.peek())
        ):
            second = self.advance()
            self.advance()  # ':'
            value = self._parse_value(f"{first.value} {second.value}")
            return FieldTerm(field=f"{first.value}_{second.value}", value=value)
        # One-word field name: WORD ':'
        if self._is_field_colon(self.peek(), first):
            self.advance()  # ':'
            value = self._parse_value(first.value)
            return FieldTerm(field=first.value, value=value)
        return TextTerm(text=first.value)

    @staticmethod
    def _is_field_colon(colon: Token, word: Token) -> bool:
        """A colon is a field separator only when glued to its word.

        ``type: table`` has the colon at ``word.position + len(word)``;
        a detached colon (``bit :recent_documents()``) starts a provider
        call instead.
        """
        return (
            colon.kind == lexer.COLON
            and colon.position == word.position + len(word.value)
        )

    def _parse_value(self, field_name: str) -> str:
        token = self.peek()
        if token.kind in (lexer.WORD, lexer.QUOTED):
            return self.advance().value
        raise QuerySyntaxError(
            f"expected a value after {field_name!r}:",
            position=token.position,
            text=self.text,
        )
