"""Categories view (Figure 6, bottom row).

"The categories view enables an effective exploration of data artifacts
based on their categories while providing an overview of the available
categories."  Each group shows its size and a preview of top-ranked
members; selecting a group expands to the full membership.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.views.base import ArtifactCard, View


@dataclass(frozen=True)
class CategoryGroup:
    """One category bucket with a card preview."""

    name: str
    total: int
    preview: tuple[ArtifactCard, ...] = ()
    all_ids: tuple[str, ...] = ()

    def filtered(self, allowed: set[str]) -> "CategoryGroup":
        kept_ids = tuple(aid for aid in self.all_ids if aid in allowed)
        kept_preview = tuple(
            c for c in self.preview if c.artifact_id in allowed
        )
        return CategoryGroup(
            name=self.name,
            total=len(kept_ids),
            preview=kept_preview,
            all_ids=kept_ids,
        )


@dataclass(frozen=True)
class CategoriesView(View):
    """An overview of category groups."""

    groups: tuple[CategoryGroup, ...] = ()

    def artifact_ids(self) -> list[str]:
        seen: set[str] = set()
        ordered: list[str] = []
        for group in self.groups:
            for aid in group.all_ids:
                if aid not in seen:
                    seen.add(aid)
                    ordered.append(aid)
        return ordered

    def group(self, name: str) -> CategoryGroup | None:
        for group in self.groups:
            if group.name == name:
                return group
        return None

    def group_names(self) -> list[str]:
        return [group.name for group in self.groups]

    def filtered(self, allowed: set[str]) -> "CategoriesView":
        kept = tuple(
            filtered_group
            for group in self.groups
            if (filtered_group := group.filtered(allowed)).total > 0
        )
        return replace(self, groups=kept)
