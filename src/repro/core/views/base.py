"""View base types.

An :class:`ArtifactCard` is the display unit every view composes: the
resolved, human-readable facts about one artifact (name, type, owner,
badges, usage) plus its ranking score.  A :class:`View` is an abstract
generated view; concrete subclasses add the representation-specific
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.catalog.store import CatalogStore


@dataclass(frozen=True)
class ArtifactCard:
    """Resolved display data for one artifact."""

    artifact_id: str
    name: str
    artifact_type: str
    owner_name: str = ""
    description: str = ""
    badges: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    view_count: int = 0
    favorite_count: int = 0
    score: float = 0.0

    def with_score(self, score: float) -> "ArtifactCard":
        return replace(self, score=score)


def make_card(
    store: CatalogStore, artifact_id: str, score: float = 0.0
) -> ArtifactCard:
    """Resolve an artifact id to a card (owner name, usage included)."""
    artifact = store.artifact(artifact_id)
    owner_name = ""
    if artifact.owner_id:
        try:
            owner_name = store.user(artifact.owner_id).name
        except KeyError:
            owner_name = artifact.owner_id
    stats = store.usage_stats(artifact_id)
    return ArtifactCard(
        artifact_id=artifact_id,
        name=artifact.name,
        artifact_type=artifact.artifact_type.value,
        owner_name=owner_name,
        description=artifact.description,
        badges=artifact.badge_names(),
        tags=artifact.tags,
        view_count=stats.view_count,
        favorite_count=stats.favorite_count,
        score=round(score, 6),
    )


@dataclass(frozen=True)
class View:
    """A generated discovery view.

    ``view_id`` is stable per (provider, inputs) so a UI can key tabs on
    it; ``provider_name`` links back to the spec entry the view was
    generated from.
    """

    view_id: str
    provider_name: str
    title: str
    representation: str
    description: str = ""
    inputs: dict[str, str] = field(default_factory=dict)
    #: True when the view was built from an expired cache entry served
    #: under an open breaker or exhausted deadline (stale-while-revalidate).
    stale: bool = False
    #: True when the view's data is incomplete or old for any resilience
    #: reason; renderers surface this so users never mistake a partial
    #: view for the full picture.
    degraded: bool = False
    #: Human-readable degradation note ("circuit open; serving cached
    #: result 320s past TTL"); empty when healthy.
    notice: str = ""

    def artifact_ids(self) -> list[str]:
        """Every artifact shown by the view, display order."""
        raise NotImplementedError

    def count(self) -> int:
        return len(self.artifact_ids())

    def is_empty(self) -> bool:
        return self.count() == 0

    def filtered(self, allowed: set[str]) -> "View":
        """A copy restricted to *allowed* ids — search-over-view (§5.3)."""
        raise NotImplementedError


def view_id_for(provider_name: str, inputs: dict[str, str]) -> str:
    """Stable view identity: provider name plus sorted input bindings."""
    if not inputs:
        return provider_name
    bound = ",".join(f"{k}={v}" for k, v in sorted(inputs.items()))
    return f"{provider_name}[{bound}]"
