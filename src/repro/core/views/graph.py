"""Graph view (Figure 3 right, Figure 6).

"The graph view supports displaying graph-structured metadata (e.g., join
paths) ... the graph view expects the metadata to contain information
about how [artifacts] are connected."  Layout positions are computed
deterministically on demand (seeded spring layout) so renderers can draw
without their own graph logic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import networkx as nx

from repro.core.views.base import ArtifactCard, View


@dataclass(frozen=True)
class GraphViewEdge:
    """A labelled, weighted display edge."""

    src: str
    dst: str
    label: str = ""
    weight: float = 1.0


@dataclass(frozen=True)
class GraphView(View):
    """Cards as nodes plus labelled edges."""

    cards: tuple[ArtifactCard, ...] = ()
    edges: tuple[GraphViewEdge, ...] = ()

    def artifact_ids(self) -> list[str]:
        return [card.artifact_id for card in self.cards]

    def neighbors(self, artifact_id: str) -> list[str]:
        """Directly connected artifact ids (either direction), sorted."""
        found = {
            e.dst if e.src == artifact_id else e.src
            for e in self.edges
            if artifact_id in (e.src, e.dst)
        }
        found.discard(artifact_id)
        return sorted(found)

    def layout(self, seed: int = 42) -> dict[str, tuple[float, float]]:
        """Deterministic 2-D positions for drawing."""
        graph = nx.Graph()
        graph.add_nodes_from(self.artifact_ids())
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, weight=max(edge.weight, 1e-6))
        if graph.number_of_nodes() == 0:
            return {}
        positions = nx.spring_layout(graph, seed=seed)
        return {
            node: (float(xy[0]), float(xy[1]))
            for node, xy in positions.items()
        }

    def filtered(self, allowed: set[str]) -> "GraphView":
        kept_cards = tuple(c for c in self.cards if c.artifact_id in allowed)
        kept_ids = {c.artifact_id for c in kept_cards}
        kept_edges = tuple(
            e for e in self.edges if e.src in kept_ids and e.dst in kept_ids
        )
        return replace(self, cards=kept_cards, edges=kept_edges)
