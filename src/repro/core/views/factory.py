"""View generation from spec + provider result (the §5.1 pipeline).

``ViewFactory.build`` is the single seam where a provider's declared
representation turns into a concrete view.  List-like payloads are ranked
with the spec's effective weights before display, so Listing 1 retunes
every generated view without code changes.
"""

from __future__ import annotations

from repro.catalog.store import CatalogStore
from repro.core.ranking import Ranker
from repro.core.spec.model import HumboldtSpec, ProviderSpec
from repro.core.views.base import View, make_card, view_id_for
from repro.core.views.categories import CategoriesView, CategoryGroup
from repro.core.views.embedding import EmbeddingView, PlacedCard
from repro.core.views.graph import GraphView, GraphViewEdge
from repro.core.views.hierarchy import HierarchyView, TreeNode
from repro.core.views.listing import ListView, TilesView
from repro.errors import RepresentationError
from repro.providers.base import (
    HierarchyNode,
    ProviderResult,
    Representation,
)

#: How many preview cards a category group carries.
CATEGORY_PREVIEW_SIZE = 5


class ViewFactory:
    """Builds concrete views from provider results."""

    def __init__(self, store: CatalogStore, spec: HumboldtSpec, ranker: Ranker):
        self.store = store
        self.spec = spec
        self.ranker = ranker

    def build(
        self,
        provider: ProviderSpec,
        result: ProviderResult,
        inputs: dict[str, str] | None = None,
        limit: int = 0,
        stale: bool = False,
        notice: str = "",
    ) -> View:
        """Generate the view for *provider* from *result*.

        The result's representation must match the spec's declaration —
        a mismatch means the provider violated its contract.

        *limit* caps list/tiles views to the top-*limit* cards **after**
        live re-ranking (0 = no cap).  Cached provider results carry full
        membership precisely so this truncation happens on fresh values;
        truncating inside the provider would bake usage-ranked membership
        into cache entries that don't declare a usage dependency.

        *stale* marks a view built from an expired cache entry served
        under an open breaker or exhausted deadline (the execution
        layer's stale-while-revalidate path); *notice* carries the
        human-readable reason.  Stale views are also flagged ``degraded``
        so renderers surface them.
        """
        if result.representation != provider.representation:
            raise RepresentationError(
                provider.name,
                f"spec declares {provider.representation.value!r} but the "
                f"endpoint returned {result.representation.value!r}",
            )
        result.validate(provider.name)
        inputs = dict(inputs or {})
        common = {
            "view_id": view_id_for(provider.name, inputs),
            "provider_name": provider.name,
            "title": provider.title,
            "representation": provider.representation.value,
            "description": provider.description,
            "inputs": inputs,
            "stale": stale,
            "degraded": stale,
            "notice": notice,
        }
        rep = provider.representation
        if rep in (Representation.LIST, Representation.TILES):
            return self._build_listing(provider, result, common, limit)
        if rep is Representation.HIERARCHY:
            return HierarchyView(
                roots=tuple(
                    self._tree(root)
                    for root in result.roots
                    if self.store.has_artifact(root.artifact_id)
                ),
                **common,
            )
        if rep is Representation.GRAPH:
            return self._build_graph(result, common)
        if rep is Representation.CATEGORIES:
            return self._build_categories(provider, result, common)
        if rep is Representation.EMBEDDING:
            return EmbeddingView(
                points=tuple(
                    PlacedCard(
                        card=make_card(self.store, point.artifact_id),
                        x=point.x,
                        y=point.y,
                    )
                    for point in result.points
                    if self.store.has_artifact(point.artifact_id)
                ),
                **common,
            )
        raise RepresentationError(provider.name, f"unhandled representation {rep!r}")

    # -- per-representation builders ------------------------------------------

    def _build_listing(
        self,
        provider: ProviderSpec,
        result: ProviderResult,
        common: dict,
        limit: int = 0,
    ) -> View:
        weights = self.spec.effective_ranking(provider.name)
        # Lazy top-k: a capped view only pays score-breakdown construction
        # for the head it displays.  Deleted artifacts may occupy head
        # slots (the ranker scores whatever ids the provider returned),
        # so over-fetch by the item count of dropped ids to keep the
        # visible card count identical to rank-all-then-truncate.
        if limit > 0:
            missing = sum(
                1
                for item in result.items
                if not self.store.has_artifact(item.artifact_id)
            )
            ranked = self.ranker.top_k_items(
                result.items, weights, limit + missing, live=True
            )
        else:
            ranked = self.ranker.rank_items(result.items, weights, live=True)
        cards = tuple(
            make_card(self.store, entry.artifact_id, score=entry.score)
            for entry in ranked
            if self.store.has_artifact(entry.artifact_id)
        )
        if limit > 0:
            cards = cards[:limit]
        if provider.representation is Representation.TILES:
            return TilesView(cards=cards, **common)
        return ListView(cards=cards, **common)

    def _build_graph(self, result: ProviderResult, common: dict) -> GraphView:
        cards = tuple(
            make_card(self.store, node)
            for node in result.nodes
            if self.store.has_artifact(node)
        )
        known = {card.artifact_id for card in cards}
        edges = tuple(
            GraphViewEdge(src=e.src, dst=e.dst, label=e.label, weight=e.weight)
            for e in result.edges
            if e.src in known and e.dst in known
        )
        return GraphView(cards=cards, edges=edges, **common)

    def _build_categories(
        self, provider: ProviderSpec, result: ProviderResult, common: dict
    ) -> CategoriesView:
        weights = self.spec.effective_ranking(provider.name)
        groups = []
        for category in result.categories:
            ids = [
                aid
                for aid in category.artifact_ids
                if self.store.has_artifact(aid)
            ]
            ranked = self.ranker.rank_ids(ids, weights)
            preview = tuple(
                make_card(self.store, entry.artifact_id, score=entry.score)
                for entry in ranked[:CATEGORY_PREVIEW_SIZE]
            )
            groups.append(
                CategoryGroup(
                    name=category.name,
                    total=len(ids),
                    preview=preview,
                    all_ids=tuple(entry.artifact_id for entry in ranked),
                )
            )
        return CategoriesView(groups=tuple(groups), **common)

    def _tree(self, node: HierarchyNode) -> TreeNode:
        return TreeNode(
            card=make_card(self.store, node.artifact_id),
            children=tuple(
                self._tree(child)
                for child in node.children
                if self.store.has_artifact(child.artifact_id)
            ),
        )
