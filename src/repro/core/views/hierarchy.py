"""Hierarchy (tree) view (Figure 6, §6.2).

"The hierarchy view enables the navigation of one-to-many relationships
defined by metadata [and] supports traversing hierarchies of arbitrary
depths."  Nodes carry full cards so each level can render as tiles, the
paper's current node rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.views.base import ArtifactCard, View


@dataclass(frozen=True)
class TreeNode:
    """A card with nested children."""

    card: ArtifactCard
    children: tuple["TreeNode", ...] = ()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def iter_cards(self) -> list[ArtifactCard]:
        cards = [self.card]
        for child in self.children:
            cards.extend(child.iter_cards())
        return cards

    def pruned(self, allowed: set[str]) -> "TreeNode | None":
        """Keep nodes in *allowed* or with surviving descendants.

        Keeping ancestors of matches preserves the navigation path to a
        filtered hit, which is what tree filtering should do.
        """
        kept_children = tuple(
            pruned
            for child in self.children
            if (pruned := child.pruned(allowed)) is not None
        )
        if self.card.artifact_id in allowed or kept_children:
            return replace(self, children=kept_children)
        return None


@dataclass(frozen=True)
class HierarchyView(View):
    """A forest of :class:`TreeNode`."""

    roots: tuple[TreeNode, ...] = ()

    def artifact_ids(self) -> list[str]:
        seen: set[str] = set()
        ordered: list[str] = []
        for root in self.roots:
            for card in root.iter_cards():
                if card.artifact_id not in seen:
                    seen.add(card.artifact_id)
                    ordered.append(card.artifact_id)
        return ordered

    def max_depth(self) -> int:
        return max((root.depth() for root in self.roots), default=0)

    def filtered(self, allowed: set[str]) -> "HierarchyView":
        kept = tuple(
            pruned
            for root in self.roots
            if (pruned := root.pruned(allowed)) is not None
        )
        return replace(self, roots=kept)
