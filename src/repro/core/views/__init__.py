"""View-model generation (Sections 5.1 and 6.2, Figure 6).

Views are *generated* from a provider spec plus a provider result: the
spec's representation picks the view class, ranking weights order list-like
payloads, and artifact ids are resolved to display cards.  Views are plain
data — renderers (:mod:`repro.core.render`) turn them into text or HTML —
and every view supports :meth:`~repro.core.views.base.View.filtered`,
which is how search composes with any view (§5.3).
"""

from repro.core.views.base import ArtifactCard, View
from repro.core.views.categories import CategoriesView, CategoryGroup
from repro.core.views.embedding import EmbeddingView, PlacedCard
from repro.core.views.factory import ViewFactory
from repro.core.views.graph import GraphView, GraphViewEdge
from repro.core.views.hierarchy import HierarchyView, TreeNode
from repro.core.views.listing import ListView, TilesView

__all__ = [
    "ArtifactCard",
    "CategoriesView",
    "CategoryGroup",
    "EmbeddingView",
    "GraphView",
    "GraphViewEdge",
    "HierarchyView",
    "ListView",
    "PlacedCard",
    "TilesView",
    "TreeNode",
    "View",
    "ViewFactory",
]
