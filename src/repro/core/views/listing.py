"""Tiles and list views (Figure 6, top row).

Both render ranked sequences of cards; they differ in affordance.  Tiles
"provide an overview of available data while not overwhelming the user";
the list "can be ordered based on the specified ranking or by clicking any
column" — so :class:`ListView` supports column sorting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.views.base import ArtifactCard, View

#: Columns the list view exposes for click-to-sort, mapped to card fields.
LIST_COLUMNS = {
    "name": lambda card: card.name.lower(),
    "type": lambda card: card.artifact_type,
    "owner": lambda card: card.owner_name.lower(),
    "views": lambda card: -card.view_count,
    "favorites": lambda card: -card.favorite_count,
    "score": lambda card: -card.score,
}


@dataclass(frozen=True)
class TilesView(View):
    """A ranked grid of tiles."""

    cards: tuple[ArtifactCard, ...] = ()
    columns_per_row: int = 4

    def artifact_ids(self) -> list[str]:
        return [card.artifact_id for card in self.cards]

    def rows(self) -> list[tuple[ArtifactCard, ...]]:
        """Cards chunked into grid rows."""
        width = max(self.columns_per_row, 1)
        return [
            tuple(self.cards[i : i + width])
            for i in range(0, len(self.cards), width)
        ]

    def filtered(self, allowed: set[str]) -> "TilesView":
        return replace(
            self,
            cards=tuple(c for c in self.cards if c.artifact_id in allowed),
        )


@dataclass(frozen=True)
class ListView(View):
    """A ranked, column-sortable list."""

    cards: tuple[ArtifactCard, ...] = ()

    def artifact_ids(self) -> list[str]:
        return [card.artifact_id for card in self.cards]

    def column_names(self) -> list[str]:
        return list(LIST_COLUMNS)

    def sorted_by(self, column: str, descending: bool = False) -> "ListView":
        """Reorder by a column (the click-to-sort affordance)."""
        try:
            key = LIST_COLUMNS[column]
        except KeyError:
            raise ValueError(
                f"unknown column {column!r}; expected one of "
                f"{list(LIST_COLUMNS)}"
            ) from None
        ordered = sorted(self.cards, key=key, reverse=descending)
        return replace(self, cards=tuple(ordered))

    def filtered(self, allowed: set[str]) -> "ListView":
        return replace(
            self,
            cards=tuple(c for c in self.cards if c.artifact_id in allowed),
        )
