"""Embedding (scatter) view (Figure 6, §6.2).

"The embedding view shows data artifacts on a two-dimensional canvas as
circles and therefore expects the x and y coordinates to be included in
the data artifact's metadata."  The view also offers nearest-neighbour
lookup, the interaction a scatter plot invites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.views.base import ArtifactCard, View


@dataclass(frozen=True)
class PlacedCard:
    """A card at an (x, y) position."""

    card: ArtifactCard
    x: float
    y: float

    def distance_to(self, other: "PlacedCard") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class EmbeddingView(View):
    """A 2-D scatter of placed cards."""

    points: tuple[PlacedCard, ...] = ()

    def artifact_ids(self) -> list[str]:
        return [point.card.artifact_id for point in self.points]

    def bounds(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y); zeros when empty."""
        if not self.points:
            return (0.0, 0.0, 0.0, 0.0)
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        return (min(xs), min(ys), max(xs), max(ys))

    def nearest(self, artifact_id: str, k: int = 5) -> list[PlacedCard]:
        """The *k* spatially nearest points to *artifact_id*."""
        anchor = next(
            (p for p in self.points if p.card.artifact_id == artifact_id), None
        )
        if anchor is None:
            return []
        others = [p for p in self.points if p.card.artifact_id != artifact_id]
        others.sort(
            key=lambda p: (anchor.distance_to(p), p.card.artifact_id)
        )
        return others[:k]

    def filtered(self, allowed: set[str]) -> "EmbeddingView":
        return replace(
            self,
            points=tuple(
                p for p in self.points if p.card.artifact_id in allowed
            ),
        )
