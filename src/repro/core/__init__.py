"""Humboldt core: specification, ranking, query language, views, interface.

This package is the paper's contribution.  Everything here consumes
providers only through the spec contract (:mod:`repro.providers.base`) and
the endpoint registry — never concrete provider implementations — which is
the decoupling that lets a UI evolve by editing specification instead of
code.
"""

from repro.core.spec import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    SpecBuilder,
    Visibility,
)

__all__ = [
    "HumboldtSpec",
    "ProviderSpec",
    "RankingWeight",
    "SpecBuilder",
    "Visibility",
]
