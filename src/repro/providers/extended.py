"""Extended provider suite — the "configurability" story in action.

The paper expects the provider population to keep growing ("we expect
this number to only increase with automated ... metadata extraction
approaches", §3.2).  This module is that growth: four additional
providers built on the same substrate, plus ``extended_spec()`` which
derives a larger specification from the default one — exercising exactly
the evolution path the framework exists for.

Providers:

* ``unionable``   — tables union-compatible with an input table (schema
  similarity; the Das Sarma-style measure from §2);
* ``stale``       — governance view: artifacts not touched for a long
  time or carrying the ``deprecated`` badge;
* ``has_column``  — tables containing a given column name (a column-level
  discovery query);
* ``orphans``     — artifacts with no lineage at all (candidates for
  clean-up or documentation).
"""

from __future__ import annotations

from repro.catalog.domains import (
    DOMAIN_ENTITIES,
    DOMAIN_LINEAGE,
    DOMAIN_USAGE,
)
from repro.catalog.model import ArtifactType
from repro.catalog.store import CatalogStore
from repro.core.spec.model import HumboldtSpec, ProviderSpec, Visibility
from repro.errors import MissingInputError
from repro.metadata.similarity import SchemaSimilarity
from repro.providers.base import (
    Endpoint,
    ProviderRequest,
    ProviderResult,
    Representation,
    ScoredArtifact,
    depends_on,
)
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.util.clock import DAY

#: An artifact is stale when unviewed for this long.
STALE_AFTER_DAYS = 90.0


class ExtendedProviders:
    """The extra provider endpoints."""

    def __init__(self, store: CatalogStore):
        self.store = store
        self.resolver = FieldResolver(store)
        self.schema = SchemaSimilarity(store)

    def endpoints(self) -> dict[str, Endpoint]:
        return {
            "unionable": self.unionable,
            "stale": self.stale,
            "has_column": self.has_column,
            "orphans": self.orphans,
        }

    @depends_on(DOMAIN_ENTITIES)
    def unionable(self, request: ProviderRequest) -> ProviderResult:
        """Tables union-compatible with the input table (schema Jaccard)."""
        artifact_id = request.input("artifact")
        if not artifact_id:
            raise MissingInputError("unionable", "artifact")
        if not self.store.has_artifact(artifact_id):
            return ProviderResult(representation=Representation.LIST)
        hits = self.schema.similar(artifact_id, limit=request.context.limit)
        items = tuple(
            ScoredArtifact(artifact_id=hit.artifact_id, score=hit.score)
            for hit in hits
            if self.store.has_artifact(hit.artifact_id)
        )
        return ProviderResult(representation=Representation.LIST, items=items)

    @depends_on(DOMAIN_USAGE, DOMAIN_ENTITIES)
    def stale(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts unviewed for STALE_AFTER_DAYS or badged deprecated.

        Membership also depends on the catalog clock: the 90-day cutoff
        moves as ``store.clock`` advances with no write bumping any
        domain counter, so a cached result can lag the clock by up to
        the engine's cache TTL (docs/execution.md, "clock-dependent
        providers").  Domain declarations only track catalog writes.
        """
        now = self.store.clock.now()
        cutoff = now - STALE_AFTER_DAYS * DAY
        items = []
        for artifact in self.store.artifacts():
            stats = self.store.usage_stats(artifact.id)
            last_touch = max(stats.last_viewed_at, artifact.created_at)
            deprecated = artifact.has_badge("deprecated")
            if deprecated or last_touch < cutoff:
                age_days = (now - last_touch) / DAY
                items.append(
                    ScoredArtifact(
                        artifact_id=artifact.id,
                        score=round(age_days + (1000.0 if deprecated else 0.0),
                                    2),
                    )
                )
        items.sort(key=lambda i: (-i.score, i.artifact_id))
        return ProviderResult(
            representation=Representation.LIST,
            items=tuple(items[: request.context.limit]),
        )

    @depends_on(DOMAIN_ENTITIES)
    def has_column(self, request: ProviderRequest) -> ProviderResult:
        """Tables/datasets containing a column named like the input text."""
        wanted = request.input("text").lower()
        if not wanted:
            raise MissingInputError("has_column", "text")
        items = []
        for artifact in self.store.artifacts():
            if artifact.artifact_type not in (ArtifactType.TABLE,
                                              ArtifactType.DATASET):
                continue
            matches = [
                c.name for c in artifact.columns
                if wanted in c.name.lower()
            ]
            if matches:
                items.append(
                    ScoredArtifact(
                        artifact_id=artifact.id,
                        score=float(len(matches)),
                        fields={"matched_columns": len(matches)},
                    )
                )
        items.sort(key=lambda i: (-i.score, i.artifact_id))
        return ProviderResult(
            representation=Representation.LIST,
            items=tuple(items[: request.context.limit]),
        )

    @depends_on(DOMAIN_ENTITIES, DOMAIN_LINEAGE)
    def orphans(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts with no lineage edges in either direction."""
        items = []
        for artifact in self.store.artifacts():
            in_lineage = (
                self.store.lineage.parents(artifact.id)
                or self.store.lineage.children(artifact.id)
            )
            if not in_lineage:
                items.append(ScoredArtifact(artifact_id=artifact.id))
        return ProviderResult(
            representation=Representation.LIST,
            items=tuple(items[: request.context.limit]),
        )


def install_extended_endpoints(
    registry: EndpointRegistry, providers: ExtendedProviders
) -> list[str]:
    """Register the extended endpoints as ``catalog://<name>``."""
    uris = []
    for name, endpoint in providers.endpoints().items():
        uri = f"catalog://{name}"
        registry.register(uri, endpoint, replace=True)
        uris.append(uri)
    return sorted(uris)


def extended_spec() -> HumboldtSpec:
    """The default spec plus the four extended providers.

    Built by *editing* the default spec — the few-lines-of-spec workflow,
    not a parallel definition.
    """
    spec = default_spec()
    spec = spec.with_provider(ProviderSpec(
        name="unionable",
        endpoint="catalog://unionable",
        representation="list",
        category="relatedness",
        title="Unionable",
        description="Tables union-compatible with the selected table "
                    "(schema similarity).",
        inputs=(_artifact_input(),),
        visibility=Visibility(overview=False, exploration=True, search=True),
        dependencies=frozenset({DOMAIN_ENTITIES}),
    ))
    spec = spec.with_provider(ProviderSpec(
        name="stale",
        endpoint="catalog://stale",
        representation="list",
        category="governance",
        title="Stale Data",
        description="Artifacts unviewed for 90+ days or badged deprecated.",
        visibility=Visibility(overview=True, exploration=False, search=True),
        dependencies=frozenset({DOMAIN_USAGE, DOMAIN_ENTITIES}),
    ))
    spec = spec.with_provider(ProviderSpec(
        name="has_column",
        endpoint="catalog://has_column",
        representation="list",
        category="annotation",
        title="Has Column",
        description="Tables containing a column with a given name.",
        inputs=(_text_input(),),
        visibility=Visibility(overview=False, exploration=False, search=True),
        dependencies=frozenset({DOMAIN_ENTITIES}),
    ))
    spec = spec.with_provider(ProviderSpec(
        name="orphans",
        endpoint="catalog://orphans",
        representation="list",
        category="governance",
        title="Orphaned Artifacts",
        description="Artifacts with no lineage connections at all.",
        visibility=Visibility(overview=True, exploration=False, search=True),
        dependencies=frozenset({DOMAIN_ENTITIES, DOMAIN_LINEAGE}),
    ))
    return spec


def _artifact_input():
    from repro.providers.base import InputSpec

    return InputSpec(name="artifact", input_type="artifact", required=True)


def _text_input():
    from repro.providers.base import InputSpec

    return InputSpec(name="text", input_type="text", required=True)
