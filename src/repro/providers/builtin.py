"""The built-in metadata-provider suite (Figure 2).

Every provider class the paper shows or mentions is implemented against the
catalog substrate: annotation providers (Owned By, Badged, Type, Tagged),
interaction providers (Recents, Most Viewed, Favorites, team popularity),
and relatedness providers (Joinable, Lineage, Similar, Embedding).

Endpoints are registered under ``catalog://<name>`` URIs; the Humboldt spec
references those URIs, and the framework resolves them through the
registry — the UI never imports this module.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from repro.catalog.domains import (
    DOMAIN_ENTITIES,
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_TEXT,
    DOMAIN_USAGE,
)
from repro.catalog.events import (
    LineageEventRecord,
    MembershipEventRecord,
    UsageEventRecord,
)
from repro.catalog.model import Artifact, ArtifactType
from repro.catalog.store import CatalogStore
from repro.errors import MissingInputError
from repro.metadata.embedding import EmbeddingIndex
from repro.metadata.joinability import JoinabilityIndex
from repro.metadata.similarity import EnsembleSimilarity
from repro.providers.base import (
    Category,
    EmbeddingPoint,
    Endpoint,
    GraphEdge,
    HierarchyNode,
    ProviderRequest,
    ProviderResult,
    Representation,
    ScoredArtifact,
    depends_on,
)
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry

#: Fields attached to every list/tiles item so ranking has raw material.
ITEM_FIELDS = ("views", "favorite", "recency", "freshness", "endorsed")

#: Cap on points returned by the embedding provider regardless of limit.
EMBEDDING_POINT_CAP = 2000


class BuiltinProviders:
    """Catalog-backed provider endpoints with shared lazy indexes."""

    def __init__(self, store: CatalogStore):
        self.store = store
        self.resolver = FieldResolver(store)
        self.joinability = JoinabilityIndex(store)
        self.similarity = EnsembleSimilarity(store)
        self.embedding = EmbeddingIndex(store)

    # -- endpoint table ---------------------------------------------------

    def estimators(self) -> "dict[str, Callable[[ProviderRequest], int | None]]":
        """Endpoint name -> result-cardinality estimator for the planner.

        Endpoints here are bound methods, so the :func:`~repro.providers.
        base.estimates_with` decorator cannot close over ``self``; the
        installer registers these at the registry level instead.  Each
        estimator answers from index bucket sizes in O(1)-ish time and
        must mirror its endpoint's *membership* semantics (an unresolvable
        user/team yields an empty result, hence estimate 0).  Endpoints
        without an entry simply plan as unknown cardinality.
        """
        return {
            "owned_by": self._estimate_owned_by,
            "created_by": self._estimate_owned_by,
            "of_type": self._estimate_of_type,
            "badged": self._estimate_badged,
            "tagged": self._estimate_tagged,
            "team_docs": self._estimate_team_docs,
        }

    def _estimate_owned_by(self, request: ProviderRequest) -> int | None:
        raw = request.input("user")
        if not raw:
            return None  # the fetch itself will raise MissingInputError
        user_id = self._resolve_user(raw)
        if user_id is None:
            return 0
        return self.store.index_size("owner", user_id)

    def _estimate_of_type(self, request: ProviderRequest) -> int | None:
        raw = request.input("artifact_type")
        if not raw:
            return None
        return self.store.index_size("type", raw)

    def _estimate_badged(self, request: ProviderRequest) -> int | None:
        badge = request.input("badge")
        if not badge:
            return None
        return self.store.index_size("badge", badge.lower())

    def _estimate_tagged(self, request: ProviderRequest) -> int | None:
        tag = request.input("text")
        if not tag:
            return None
        return self.store.index_size("tag", tag)

    def _estimate_team_docs(self, request: ProviderRequest) -> int | None:
        team_id = request.input("team") or request.context.team_id
        if not team_id:
            return None
        team = self._resolve_team(team_id)
        if team is None:
            return 0
        return self.store.index_size("team", team.id)

    # -- cache delta patchers ----------------------------------------------
    #
    # A patcher answers: given this endpoint's cached result for this
    # request and the write-ahead event records since the engine's last
    # sweep, what would the endpoint return *now*?  Three answers:
    # the cached object itself (the events provably cannot affect it),
    # a rebuilt result (computed through the endpoint's own body, so it
    # is identical-by-construction to a drop-and-refetch at this
    # instant), or None (decline — a non-monotonic mutation like a team
    # roster replacement; the engine falls back to dropping the entry).
    # The guards are deliberately conservative: any doubt rebuilds.

    def patchers(self) -> "dict[str, Callable]":
        """Endpoint name -> cache delta patcher (streaming write path).

        Bound methods again, so the :func:`~repro.providers.base.
        patches_with` decorator cannot close over ``self``; the installer
        passes these at the registry level, mirroring :meth:`estimators`.
        Only endpoints whose dependencies include a patchable domain
        (usage / lineage / membership) appear — the rest drop on write
        as before.
        """
        return {
            "recents": self._patch_user_usage(self.recents),
            "recent_documents": self._patch_user_usage(
                self.recent_documents
            ),
            "favorites": self._patch_user_usage(self.favorites),
            "most_viewed": self._patch_most_viewed,
            "team_popular": self._patch_team_popular,
            "owned_by": self._patch_membership(self.owned_by),
            "created_by": self._patch_membership(self.owned_by),
            "badged_by": self._patch_membership(self.badged_by),
            "team_docs": self._patch_membership(self.team_docs),
            "lineage": self._patch_lineage(self.lineage, around=False),
            "lineage_graph": self._patch_lineage(
                self.lineage_graph, around=True
            ),
        }

    @staticmethod
    def _usage_events(records) -> list:
        return [r.event for r in records if isinstance(r, UsageEventRecord)]

    @staticmethod
    def _roster_replaced(records) -> bool:
        """Any non-monotonic membership record (e.g. ``set_team``)?"""
        return any(
            isinstance(r, MembershipEventRecord) and not r.added
            for r in records
        )

    def _patch_user_usage(self, endpoint: Endpoint) -> Callable:
        """Patcher for per-user interaction endpoints (recents/favorites).

        A usage event can only affect the result if it was produced by
        the requested user (membership may change) or touches a listed
        artifact (its advisory fields may change); anything else leaves
        the cached result exactly what a refetch would produce.
        """

        def patch(request, cached, records):
            events = self._usage_events(records)
            if not events:
                return cached
            user_id = request.input("user") or request.context.user_id
            listed = set(cached.artifact_ids())
            if any(
                e.user_id == user_id or e.artifact_id in listed
                for e in events
            ):
                return endpoint(request)
            return cached

        return patch

    def _patch_most_viewed(self, request, cached, records):
        events = self._usage_events(records)
        if not events:
            return cached
        listed = set(cached.artifact_ids())
        if any(
            e.action == "view" or e.artifact_id in listed for e in events
        ):
            return self.most_viewed(request)
        return cached

    def _patch_team_popular(self, request, cached, records):
        if self._roster_replaced(records):
            return None  # roster shrank, maybe: conservative drop
        team_id = request.input("team") or request.context.team_id
        team = self._resolve_team(team_id) if team_id else None
        if any(isinstance(r, MembershipEventRecord) for r in records):
            # A new user/team can change reference resolution; the
            # rebuild reads live membership, same as a refetch.
            return self.team_popular(request)
        events = self._usage_events(records)
        if not events:
            return cached
        if team is None:
            return cached  # unresolvable either way: result stays empty
        members = set(team.member_ids) | set(team.admin_ids)
        listed = set(cached.artifact_ids())
        if any(
            e.user_id in members or e.artifact_id in listed for e in events
        ):
            return self.team_popular(request)
        return cached

    def _patch_membership(self, endpoint: Endpoint) -> Callable:
        """Patcher for entities+membership endpoints (owned_by et al.).

        Only membership records reach these (usage events never sweep
        them); additions may change user/team reference resolution, so
        they rebuild, while roster replacements decline.
        """

        def patch(request, cached, records):
            if self._roster_replaced(records):
                return None
            if any(isinstance(r, MembershipEventRecord) for r in records):
                return endpoint(request)
            return cached

        return patch

    def _patch_lineage(self, endpoint: Endpoint, around: bool) -> Callable:
        """Patcher for lineage endpoints.

        The graph is append-only (restores surface as opaque records,
        which hard-drop before patchers run), so the *current* bounded
        neighbourhood of the requested root contains the old one.  An
        edge with both ends outside it therefore cannot have altered the
        result; anything touching it rebuilds.  The live graph — not the
        cached ids — defines involvement, because traversal passes
        through nodes the endpoint filters out (deleted-artifact ids).
        """

        def patch(request, cached, records):
            edges = [r for r in records if isinstance(r, LineageEventRecord)]
            if not edges:
                return cached
            artifact_id = request.input("artifact")
            if not artifact_id:
                return cached  # endpoint would raise; nothing to go stale
            # Depths mirror the endpoint bodies exactly.
            if around:
                nodes, _ = self.store.lineage.subgraph_around(
                    artifact_id, depth=2
                )
                involved = set(nodes)
            else:
                involved = set(
                    self.store.lineage.downstream(artifact_id, depth=4)
                )
            involved.add(artifact_id)
            if any(e.src in involved or e.dst in involved for e in edges):
                return endpoint(request)
            return cached

        return patch

    def endpoints(self) -> dict[str, Endpoint]:
        """Endpoint name -> callable; the installer registers these."""
        return {
            "recents": self.recents,
            "recent_documents": self.recent_documents,
            "most_viewed": self.most_viewed,
            "newest": self.newest,
            "favorites": self.favorites,
            "owned_by": self.owned_by,
            "created_by": self.owned_by,  # alias: creation == ownership here
            "of_type": self.of_type,
            "types": self.types,
            "badges": self.badges,
            "badged": self.badged,
            "badged_by": self.badged_by,
            "tagged": self.tagged,
            "team_popular": self.team_popular,
            "team_docs": self.team_docs,
            "joinable": self.joinable,
            "lineage": self.lineage,
            "lineage_graph": self.lineage_graph,
            "similar": self.similar,
            "embedding_map": self.embedding_map,
        }

    # -- interaction providers ---------------------------------------------
    #
    # Dependency declarations (``@depends_on``) cover the domains that
    # determine result *membership* — which artifact ids come back for a
    # given request.  Usage-derived ordering and the advisory ``fields``
    # snapshots attached to items are NOT covered: consumers re-rank from
    # the live resolver before display, so they never make a served
    # result stale (see docs/execution.md).  For that contract to hold,
    # no provider may *truncate* a usage-ordered list below its match
    # count unless it declares ``usage`` — ``_rank_by_views`` therefore
    # returns full membership and leaves truncation to the view layer.
    # Interaction providers, whose membership itself comes from the
    # usage log, declare ``usage`` and flush on events.

    @depends_on(DOMAIN_USAGE, DOMAIN_ENTITIES)
    def recents(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts the requesting user touched, most recent first."""
        user_id = request.input("user") or request.context.user_id
        ids = self.store.usage.recent_for_user(user_id, limit=request.context.limit)
        return self._list(ids, Representation.LIST)

    @depends_on(DOMAIN_USAGE, DOMAIN_ENTITIES)
    def recent_documents(self, request: ProviderRequest) -> ProviderResult:
        """Recents restricted to document-like artifacts (workbooks, docs).

        This is the provider behind the paper's ``:recent_documents()``
        query example.
        """
        user_id = request.input("user") or request.context.user_id
        ids = self.store.usage.recent_for_user(user_id, limit=200)
        wanted = (ArtifactType.WORKBOOK, ArtifactType.DOCUMENT)
        kept = [
            aid
            for aid in ids
            if self.store.has_artifact(aid)
            and self.store.artifact(aid).artifact_type in wanted
        ]
        return self._list(kept[: request.context.limit], Representation.LIST)

    @depends_on(DOMAIN_USAGE, DOMAIN_ENTITIES)
    def most_viewed(self, request: ProviderRequest) -> ProviderResult:
        """Globally most-viewed artifacts, as tiles."""
        ranked = self.store.usage.most_viewed(limit=request.context.limit)
        return self._list([aid for aid, _ in ranked], Representation.TILES)

    @depends_on(DOMAIN_ENTITIES)
    def newest(self, request: ProviderRequest) -> ProviderResult:
        """Most recently created artifacts."""
        ordered = sorted(
            self.store.artifacts(), key=lambda a: (-a.created_at, a.id)
        )
        ids = [a.id for a in ordered[: request.context.limit]]
        return self._list(ids, Representation.LIST)

    @depends_on(DOMAIN_USAGE, DOMAIN_ENTITIES)
    def favorites(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts the requesting user favourited."""
        user_id = request.input("user") or request.context.user_id
        ids = self.store.usage.favorites_of(user_id)
        return self._list(ids[: request.context.limit], Representation.LIST)

    # -- annotation providers ---------------------------------------------------

    @depends_on(DOMAIN_ENTITIES, DOMAIN_MEMBERSHIP)
    def owned_by(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts owned/created by the given user (id or display name)."""
        raw = request.input("user")
        if not raw:
            raise MissingInputError("owned_by", "user")
        user_id = self._resolve_user(raw)
        if user_id is None:
            return self._list([], Representation.LIST)
        ids = self.store.by_owner(user_id)
        return self._list(self._rank_by_views(ids), Representation.LIST)

    @depends_on(DOMAIN_ENTITIES)
    def of_type(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts of a given type (``type: table``)."""
        raw = request.input("artifact_type")
        if not raw:
            raise MissingInputError("of_type", "artifact_type")
        try:
            artifact_type = ArtifactType.coerce(raw)
        except ValueError:
            return self._list([], Representation.LIST)
        ids = self.store.by_type(artifact_type)
        return self._list(self._rank_by_views(ids), Representation.LIST)

    @depends_on(DOMAIN_ENTITIES)
    def types(self, request: ProviderRequest) -> ProviderResult:
        """All artifacts grouped by type (a categories overview)."""
        categories = []
        for artifact_type in ArtifactType:
            ids = self.store.by_type(artifact_type)
            if ids:
                categories.append(
                    Category(name=artifact_type.value, artifact_ids=tuple(ids))
                )
        categories.sort(key=lambda c: (-c.count, c.name))
        return ProviderResult(
            representation=Representation.CATEGORIES, categories=tuple(categories)
        )

    @depends_on(DOMAIN_ENTITIES)
    def badges(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts grouped by badge (a categories overview)."""
        categories = [
            Category(name=badge, artifact_ids=tuple(self.store.by_badge(badge)))
            for badge in self.store.badges_in_use()
        ]
        categories.sort(key=lambda c: (-c.count, c.name))
        return ProviderResult(
            representation=Representation.CATEGORIES, categories=tuple(categories)
        )

    @depends_on(DOMAIN_ENTITIES)
    def badged(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts carrying a given badge (``badged: endorsed``)."""
        badge = request.input("badge")
        if not badge:
            raise MissingInputError("badged", "badge")
        ids = self.store.by_badge(badge.lower())
        return self._list(self._rank_by_views(ids), Representation.LIST)

    @depends_on(DOMAIN_ENTITIES, DOMAIN_MEMBERSHIP)
    def badged_by(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts with any badge granted by the given user."""
        raw = request.input("user")
        if not raw:
            raise MissingInputError("badged_by", "user")
        user_id = self._resolve_user(raw)
        if user_id is None:
            return self._list([], Representation.LIST)
        ids = sorted(
            {
                aid
                for badge in self.store.badges_in_use()
                for aid in self.store.by_badge(badge, granted_by=user_id)
            }
        )
        return self._list(self._rank_by_views(ids), Representation.LIST)

    @depends_on(DOMAIN_ENTITIES)
    def tagged(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts carrying a given tag."""
        tag = request.input("text")
        if not tag:
            raise MissingInputError("tagged", "text")
        ids = self.store.by_tag(tag)
        return self._list(self._rank_by_views(ids), Representation.LIST)

    # -- team providers -------------------------------------------------------

    @depends_on(DOMAIN_USAGE, DOMAIN_MEMBERSHIP, DOMAIN_ENTITIES)
    def team_popular(self, request: ProviderRequest) -> ProviderResult:
        """Most viewed by members of a team (default: requester's team)."""
        team_id = request.input("team") or request.context.team_id
        if not team_id:
            raise MissingInputError("team_popular", "team")
        team = self._resolve_team(team_id)
        if team is None:
            return self._list([], Representation.LIST)
        members = set(team.member_ids) | set(team.admin_ids)
        counts = self.store.usage.views_by_users(members)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ids = [aid for aid, _ in ranked[: request.context.limit]]
        return self._list(ids, Representation.LIST)

    @depends_on(DOMAIN_ENTITIES, DOMAIN_MEMBERSHIP)
    def team_docs(self, request: ProviderRequest) -> ProviderResult:
        """Artifacts belonging to a team, as tiles."""
        team_id = request.input("team") or request.context.team_id
        if not team_id:
            raise MissingInputError("team_docs", "team")
        team = self._resolve_team(team_id)
        if team is None:
            return self._list([], Representation.TILES)
        ids = self.store.by_team(team.id)
        return self._list(
            self._rank_by_views(ids), Representation.TILES
        )

    # -- relatedness providers ----------------------------------------------------

    @depends_on(DOMAIN_ENTITIES)
    def joinable(self, request: ProviderRequest) -> ProviderResult:
        """Joinability graph around an input table (Figure 3)."""
        artifact_id = request.input("artifact")
        if not artifact_id:
            raise MissingInputError("joinable", "artifact")
        if not self.store.has_artifact(artifact_id):
            return ProviderResult(representation=Representation.GRAPH)
        nodes, join_edges = self.joinability.join_graph(artifact_id, depth=1)
        edges = tuple(
            GraphEdge(
                src=e.src,
                dst=e.dst,
                label=f"{e.src_column}≈{e.dst_column}",
                weight=e.score,
            )
            for e in join_edges
        )
        return ProviderResult(
            representation=Representation.GRAPH, nodes=tuple(nodes), edges=edges
        )

    @depends_on(DOMAIN_LINEAGE, DOMAIN_ENTITIES)
    def lineage(self, request: ProviderRequest) -> ProviderResult:
        """Downstream derivation tree rooted at the input artifact (§6.2)."""
        artifact_id = request.input("artifact")
        if not artifact_id:
            raise MissingInputError("lineage", "artifact")
        if not self.store.has_artifact(artifact_id):
            return ProviderResult(representation=Representation.HIERARCHY)
        root = self._lineage_tree(artifact_id, depth=4, seen={artifact_id})
        return ProviderResult(
            representation=Representation.HIERARCHY, roots=(root,)
        )

    @depends_on(DOMAIN_LINEAGE, DOMAIN_ENTITIES)
    def lineage_graph(self, request: ProviderRequest) -> ProviderResult:
        """Lineage neighbourhood (both directions) as a graph."""
        artifact_id = request.input("artifact")
        if not artifact_id:
            raise MissingInputError("lineage_graph", "artifact")
        nodes, edges = self.store.lineage.subgraph_around(artifact_id, depth=2)
        known = [n for n in nodes if self.store.has_artifact(n)]
        known_set = set(known)
        graph_edges = tuple(
            GraphEdge(src=e.src, dst=e.dst, label=e.kind)
            for e in edges
            if e.src in known_set and e.dst in known_set
        )
        return ProviderResult(
            representation=Representation.GRAPH,
            nodes=tuple(known),
            edges=graph_edges,
        )

    @depends_on(DOMAIN_ENTITIES, DOMAIN_TEXT)
    def similar(self, request: ProviderRequest) -> ProviderResult:
        """Ensemble-similar artifacts to the input artifact."""
        artifact_id = request.input("artifact")
        if not artifact_id:
            raise MissingInputError("similar", "artifact")
        if not self.store.has_artifact(artifact_id):
            return self._list([], Representation.LIST)
        hits = self.similarity.similar(artifact_id, limit=request.context.limit)
        items = [
            ScoredArtifact(
                artifact_id=hit.artifact_id,
                score=hit.score,
                fields=self._fields_for(hit.artifact_id),
            )
            for hit in hits
            if self.store.has_artifact(hit.artifact_id)
        ]
        return ProviderResult(representation=Representation.LIST, items=tuple(items))

    @depends_on(DOMAIN_ENTITIES, DOMAIN_TEXT)
    def embedding_map(self, request: ProviderRequest) -> ProviderResult:
        """2-D embedding of the catalog (Figure 6, embedding view)."""
        coords = self.embedding.build().all_coordinates()
        cap = min(len(coords), EMBEDDING_POINT_CAP)
        points = tuple(
            EmbeddingPoint(artifact_id=aid, x=round(x, 4), y=round(y, 4))
            for aid, (x, y) in sorted(coords.items())[:cap]
        )
        return ProviderResult(
            representation=Representation.EMBEDDING, points=points
        )

    # -- shared helpers -------------------------------------------------------------

    def _list(self, ids: list[str], representation: Representation) -> ProviderResult:
        items = tuple(
            ScoredArtifact(artifact_id=aid, fields=self._fields_for(aid))
            for aid in ids
            if self.store.has_artifact(aid)
        )
        return ProviderResult(representation=representation, items=items)

    def _fields_for(self, artifact_id: str) -> dict[str, float]:
        return {
            field: self.resolver.value(artifact_id, field)
            for field in ITEM_FIELDS
        }

    def _rank_by_views(self, ids: list[str]) -> list[str]:
        """Order *ids* by view count (advisory) without truncating.

        The ordering is cosmetic — consumers re-rank live — but the
        *membership* of the returned list must stay a pure function of
        the endpoint's declared domains.  Truncating a views-sorted list
        to ``context.limit`` would make membership depend on usage, so
        cached results of entities-only endpoints would go stale after
        usage events; the view factory truncates after live re-ranking
        instead.
        """
        return sorted(
            ids,
            key=lambda aid: (-self.resolver.value(aid, "views"), aid),
        )

    def _resolve_user(self, raw: str) -> str | None:
        """Resolve a user reference: id, exact name, or unique first name."""
        if raw in {u.id for u in self.store.users()}:
            return raw
        user = self.store.find_user_by_name(raw)
        if user is not None:
            return user.id
        lowered = raw.lower()
        prefix_matches = [
            u for u in self.store.users()
            if u.name.lower().split()[0] == lowered
        ]
        if len(prefix_matches) == 1:
            return prefix_matches[0].id
        return None

    def _resolve_team(self, raw: str):
        """Resolve a team reference: id or exact name (case-insensitive)."""
        for team in self.store.teams():
            if team.id == raw or team.name.lower() == raw.lower():
                return team
        return None

    def _lineage_tree(
        self, artifact_id: str, depth: int, seen: set[str]
    ) -> HierarchyNode:
        if depth <= 0:
            return HierarchyNode(artifact_id=artifact_id)
        children = []
        for child_id in self.store.lineage.children(artifact_id):
            if child_id in seen or not self.store.has_artifact(child_id):
                continue
            seen.add(child_id)
            children.append(self._lineage_tree(child_id, depth - 1, seen))
        return HierarchyNode(artifact_id=artifact_id, children=tuple(children))


def install_builtin_endpoints(
    registry: EndpointRegistry,
    providers: BuiltinProviders,
    patchers: bool = True,
) -> list[str]:
    """Register every built-in endpoint as ``catalog://<name>``.

    *patchers=False* installs without cache delta patchers, restoring the
    pure drop-and-refetch write path — the baseline the write-path
    benchmark compares the streaming path against.

    Returns the registered URIs (sorted) for logging/tests.
    """
    uris = []
    estimators = providers.estimators()
    patch_table = providers.patchers() if patchers else {}
    for name, endpoint in providers.endpoints().items():
        uri = f"catalog://{name}"
        registry.register(
            uri,
            endpoint,
            replace=True,
            estimator=estimators.get(name),
            patcher=patch_table.get(name),
        )
        uris.append(uri)
    return sorted(uris)


def group_ids_by(
    store: CatalogStore, ids: list[str], key: str
) -> list[Category]:
    """Group artifact ids into categories by a metadata field.

    Utility for custom categorical providers (e.g. group search results by
    owner); exported because example code and tests want it too.
    """
    buckets: dict[str, list[str]] = defaultdict(list)
    for aid in ids:
        if not store.has_artifact(aid):
            continue
        artifact: Artifact = store.artifact(aid)
        raw = artifact.field(key)
        values = raw if isinstance(raw, (tuple, list)) else [raw]
        for value in values:
            if value:
                buckets[str(value)].append(aid)
    categories = [
        Category(name=name, artifact_ids=tuple(bucket))
        for name, bucket in buckets.items()
    ]
    categories.sort(key=lambda c: (-c.count, c.name))
    return categories
