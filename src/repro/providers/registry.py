"""Endpoint registry.

The Humboldt spec names providers' endpoints as URIs (the paper shows
``/api/metadata/...`` style endpoints; we use ``scheme://name``).  The
registry resolves those URIs to callables.  The UI never imports provider
implementations — it only ever resolves endpoints named by the spec, which
is the decoupling the paper's design goals demand.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.catalog.domains import coerce_domains
from repro.errors import DuplicateEntityError, ProviderError
from repro.providers.base import (
    Endpoint,
    Estimator,
    ProviderRequest,
    ProviderResult,
    ResultPatcher,
    declared_dependencies,
    declared_estimator,
    declared_patcher,
)

_URI_RE = re.compile(r"^(?P<scheme>[a-z][a-z0-9+.-]*)://(?P<path>[A-Za-z0-9_./-]+)$")


def parse_endpoint_uri(uri: str) -> tuple[str, str]:
    """Split ``scheme://path`` and validate the shape."""
    match = _URI_RE.match(uri)
    if not match:
        raise ValueError(
            f"malformed endpoint uri {uri!r}; expected 'scheme://path'"
        )
    return (match.group("scheme"), match.group("path"))


class EndpointRegistry:
    """Maps endpoint URIs to fetch callables."""

    def __init__(self) -> None:
        self._endpoints: dict[str, Endpoint] = {}
        # Declared metadata-domain dependencies per uri.  Absent uri means
        # undeclared: the execution layer then conservatively invalidates
        # that endpoint's cached results on any catalog write.
        self._dependencies: dict[str, frozenset[str]] = {}
        # Declared cardinality estimators per uri.  Absent uri means the
        # endpoint offers no estimate; the query planner then treats its
        # result size as unknown and orders it after estimated branches.
        self._estimators: dict[str, Estimator] = {}
        # Declared cache delta patchers per uri.  Absent uri means the
        # endpoint cannot patch cached results in place; the execution
        # layer then drops them on dependent writes (drop-and-refetch).
        self._patchers: dict[str, ResultPatcher] = {}
        # Bumped on every (un)registration; the execution layer keys
        # cache validity on it so swapping an endpoint drops its results.
        self._version = 0
        # Per-uri stamp of the version at which the current callable was
        # registered.  Lets the execution layer detect that *this* uri
        # was swapped (not just that *something* changed) and retire any
        # dependency declarations overlaid on the previous callable.
        self._registered_at: dict[str, int] = {}

    @property
    def version(self) -> int:
        """Count of registry mutations."""
        return self._version

    def __len__(self) -> int:
        return len(self._endpoints)

    def __contains__(self, uri: str) -> bool:
        return uri in self._endpoints

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._endpoints))

    def register(
        self,
        uri: str,
        endpoint: Endpoint,
        replace: bool = False,
        dependencies: Iterable[str] | None = None,
        estimator: Estimator | None = None,
        patcher: ResultPatcher | None = None,
    ) -> None:
        """Register *endpoint* under *uri*.

        Re-registration must be explicit (``replace=True``) so tests catch
        accidental double-installs.

        *dependencies* names the metadata domains the endpoint reads (see
        :mod:`repro.catalog.domains`).  When omitted, the declaration is
        auto-discovered from a :func:`~repro.providers.base.depends_on`
        decoration on the endpoint; with neither, the endpoint is treated
        as depending on everything (conservative invalidation).

        *estimator* predicts the endpoint's result cardinality for a
        request without fetching (see :func:`~repro.providers.base.
        estimates_with`, the decorator equivalent).  When omitted, it is
        auto-discovered from the endpoint's decoration; with neither, the
        planner treats the endpoint's cardinality as unknown.

        *patcher* updates the endpoint's cached results in place from
        write-ahead event records (see :func:`~repro.providers.base.
        patches_with`).  When omitted, it is auto-discovered from the
        endpoint's decoration; with neither, dependent writes drop the
        endpoint's cached results instead of patching them.
        """
        parse_endpoint_uri(uri)
        if uri in self._endpoints and not replace:
            raise DuplicateEntityError("endpoint", uri)
        if dependencies is None:
            deps = declared_dependencies(endpoint)
        else:
            deps = coerce_domains(dependencies)
        if estimator is None:
            estimator = declared_estimator(endpoint)
        if patcher is None:
            patcher = declared_patcher(endpoint)
        self._endpoints[uri] = endpoint
        if deps is None:
            self._dependencies.pop(uri, None)
        else:
            self._dependencies[uri] = deps
        if estimator is None:
            self._estimators.pop(uri, None)
        else:
            self._estimators[uri] = estimator
        if patcher is None:
            self._patchers.pop(uri, None)
        else:
            self._patchers[uri] = patcher
        self._version += 1
        self._registered_at[uri] = self._version

    def unregister(self, uri: str) -> None:
        if self._endpoints.pop(uri, None) is not None:
            self._dependencies.pop(uri, None)
            self._estimators.pop(uri, None)
            self._patchers.pop(uri, None)
            self._registered_at.pop(uri, None)
            self._version += 1

    def dependencies(self, uri: str) -> frozenset[str] | None:
        """Declared domains for *uri*; ``None`` when undeclared."""
        return self._dependencies.get(uri)

    def estimator(self, uri: str) -> Estimator | None:
        """Declared cardinality estimator for *uri*; ``None`` when absent."""
        return self._estimators.get(uri)

    def patcher(self, uri: str) -> ResultPatcher | None:
        """Declared cache delta patcher for *uri*; ``None`` when absent."""
        return self._patchers.get(uri)

    def registration_generation(self, uri: str) -> int:
        """Version stamp of *uri*'s current registration (0 = never)."""
        return self._registered_at.get(uri, 0)

    def resolve(self, uri: str) -> Endpoint:
        try:
            return self._endpoints[uri]
        except KeyError:
            raise ProviderError(
                uri, "endpoint not registered (is the provider installed?)"
            ) from None

    def fetch(self, uri: str, request: ProviderRequest) -> ProviderResult:
        """Resolve and invoke, validating the response envelope."""
        endpoint = self.resolve(uri)
        result = endpoint(request)
        if not isinstance(result, ProviderResult):
            raise ProviderError(
                uri,
                f"endpoint returned {type(result).__name__}, "
                f"expected ProviderResult",
            )
        return result.validate(uri)
