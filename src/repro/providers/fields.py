"""Metadata-field resolution for ranking.

Listing 1 assigns weights to metadata *fields* (``favorite``, ``views``)
and "values of metadata fields are multiplied with the ranking factor".
The resolver is the single place that knows how to turn a field name into
a number for an artifact, drawing on annotations, usage aggregates and
recency; the ranking engine stays a dumb weighted sum, exactly as the
paper intends (weights change, code does not).

**Stability: internal.**  Import through :mod:`repro` / the package
facades; this module's names may change without notice.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.catalog.domains import DOMAIN_USAGE
from repro.catalog.events import EventLog, OpaqueEventRecord, UsageEventRecord
from repro.catalog.store import CatalogStore

#: Field name -> short description; this is also the vocabulary the spec
#: validator accepts in ``ranking`` blocks.
RANKABLE_FIELDS: dict[str, str] = {
    "views": "total view count",
    "opens": "total open count",
    "edits": "total edit count",
    "favorite": "number of users who favourited the artifact",
    "unique_viewers": "distinct users who viewed the artifact",
    "recency": "1 / (1 + days since last view)",
    "freshness": "1 / (1 + days since creation)",
    "badge_count": "number of badges on the artifact",
    "endorsed": "1 if the artifact carries the 'endorsed' badge",
    "certified": "1 if the artifact carries the 'certified' badge",
    "deprecated": "1 if the artifact carries the 'deprecated' badge",
    "name_match": "reserved: query-time text score (supplied as base score)",
}


#: Column index of each usage-derived field in a snapshot row; ``recency``
#: is special-cased (it is computed from ``last_viewed_at`` at query time
#: because it depends on the clock, not only on the log).
_USAGE_ROW_COLUMNS = {
    "views": 0,
    "opens": 1,
    "edits": 2,
    "favorite": 3,
    "unique_viewers": 4,
}
_LAST_VIEWED_COLUMN = 5
_ZERO_ROW = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class FieldResolver:
    """Resolves rankable field values for artifacts in a catalog."""

    def __init__(self, store: CatalogStore):
        self.store = store
        self._resolvers: dict[str, Callable[[str], float]] = {
            "views": self._views,
            "opens": self._opens,
            "edits": self._edits,
            "favorite": self._favorite,
            "unique_viewers": self._unique_viewers,
            "recency": self._recency,
            "freshness": self._freshness,
            "badge_count": self._badge_count,
            "endorsed": lambda aid: self._has_badge(aid, "endorsed"),
            "certified": lambda aid: self._has_badge(aid, "certified"),
            "deprecated": lambda aid: self._has_badge(aid, "deprecated"),
        }
        # The built-in usage resolvers, frozen at construction: the batch
        # path may only snapshot a field while its resolver is still the
        # built-in one — a host that re-registers ``views`` must win.
        self._builtin_usage: dict[str, Callable[[str], float]] = {
            field: self._resolvers[field]
            for field in (*_USAGE_ROW_COLUMNS, "recency")
        }
        # aid -> (views, opens, edits, favorite, unique_viewers,
        # last_viewed_at), rebuilt in one pass over the usage aggregates
        # whenever the usage domain version moves (PR 2's counters).
        self._usage_rows: dict[str, tuple] | None = None
        self._usage_rows_version = -1
        # Event-log offset the snapshot is current through; lets a usage
        # bump re-derive only the touched rows instead of all of them.
        self._usage_rows_offset = 0

    def known_fields(self) -> list[str]:
        return sorted(self._resolvers)

    def serves(self, field: str) -> bool:
        """True when *field* is resolved live (built-in or registered).

        Fields outside this set only resolve through the artifact's
        ``extra`` mapping or a provider-attached snapshot.
        """
        return field in self._resolvers

    def value(self, artifact_id: str, field: str) -> float:
        """Numeric value of *field* for *artifact_id*.

        Unknown fields fall back to the artifact's ``extra`` mapping (the
        extensibility path: an organisation can rank on custom numeric
        metadata without touching this module) and finally to 0.0.
        """
        resolver = self._resolvers.get(field)
        if resolver is not None:
            return resolver(artifact_id)
        raw = self.store.artifact(artifact_id).extra.get(field, 0.0)
        return _as_number(raw)

    def register(self, field: str, resolver: Callable[[str], float]) -> None:
        """Install a custom field resolver (organisation-specific metadata)."""
        self._resolvers[field] = resolver

    # -- batch resolution ------------------------------------------------------

    def values_batch(
        self, artifact_ids: Iterable[str], fields: Sequence[str]
    ) -> dict[str, list[float]]:
        """Resolve *fields* for every id in one pass; field -> column.

        Each returned column aligns with ``artifact_ids`` order.  Usage-
        derived fields (views, opens, …, recency) are read from a
        snapshot built in **one pass** over the usage aggregates and
        memoised against the store's ``usage`` domain version, so
        repeated searches pay O(result) dict lookups instead of
        re-walking per-(artifact, field) aggregate state.  Other fields
        (freshness, badges, ``extra``/custom resolvers) fall back to the
        per-artifact :meth:`value` path.  Per-id results are identical to
        :meth:`value` — the lazy top-k ranker depends on that.
        """
        ids = list(artifact_ids)
        columns: dict[str, list[float]] = {}
        rows: dict[str, tuple] | None = None
        for field in fields:
            if field in columns:
                continue
            # Only snapshot fields still served by the built-in usage
            # resolvers; a re-registered field must go through its
            # custom resolver even in batch mode.
            builtin = self._builtin_usage.get(field)
            if builtin is None or self._resolvers.get(field) is not builtin:
                columns[field] = [self.value(aid, field) for aid in ids]
                continue
            if rows is None:
                rows = self._usage_snapshot()
            if field == "recency":
                days_since = self.store.clock.days_since
                column = []
                for aid in ids:
                    last = rows.get(aid, _ZERO_ROW)[_LAST_VIEWED_COLUMN]
                    if last <= 0:
                        column.append(0.0)
                    else:
                        column.append(1.0 / (1.0 + max(days_since(last), 0.0)))
            else:
                index = _USAGE_ROW_COLUMNS[field]
                column = [rows.get(aid, _ZERO_ROW)[index] for aid in ids]
            columns[field] = column
        return columns

    def _usage_snapshot(self) -> dict[str, tuple]:
        """The usage-field rows, maintained incrementally when possible.

        When the usage domain version moves, the write-ahead event log
        names exactly which artifacts' aggregates changed; re-deriving
        only those rows turns an O(catalog) rebuild into O(writes).  The
        full one-pass rebuild remains the fallback — log truncation,
        opaque usage records (restores) and the first call all land
        there.  The version is read *before* draining the log so a bump
        racing this call at worst re-derives a row twice (idempotent:
        rows come from the live aggregates, not from the records).
        """
        version = self.store.domain_version(DOMAIN_USAGE)
        if self._usage_rows is not None and self._usage_rows_version != version:
            patched = self._patch_usage_rows()
            if patched is not None:
                self._usage_rows = patched
                self._usage_rows_version = version
                return self._usage_rows
        if self._usage_rows is None or self._usage_rows_version != version:
            log = getattr(self.store, "events", None)
            offset = log.offset if isinstance(log, EventLog) else 0
            self._usage_rows = {
                aid: self._usage_row(stats)
                for aid, stats in self.store.usage.all_stats()
            }
            self._usage_rows_version = version
            self._usage_rows_offset = offset
        return self._usage_rows

    def _patch_usage_rows(self) -> dict[str, tuple] | None:
        """Snapshot with only event-touched rows re-derived; None = rebuild."""
        log = getattr(self.store, "events", None)
        if not isinstance(log, EventLog) or self._usage_rows is None:
            return None
        records, next_offset, truncated = log.since(self._usage_rows_offset)
        if truncated:
            return None
        touched: set[str] = set()
        for record in records:
            if isinstance(record, UsageEventRecord):
                touched.add(record.event.artifact_id)
            elif (
                isinstance(record, OpaqueEventRecord)
                and record.domain == DOMAIN_USAGE
            ):
                return None  # e.g. a version restore: rows unexplained
        # Copy-and-swap so concurrent readers of the old snapshot never
        # observe a half-patched dict.
        rows = dict(self._usage_rows)
        for aid in touched:
            rows[aid] = self._usage_row(self.store.usage.stats(aid))
        self._usage_rows_offset = next_offset
        return rows

    @staticmethod
    def _usage_row(stats) -> tuple:
        return (
            float(stats.view_count),
            float(stats.open_count),
            float(stats.edit_count),
            float(stats.favorite_count),
            float(len(stats.viewers)),
            stats.last_viewed_at,
        )

    # -- built-in fields ------------------------------------------------------

    def _views(self, artifact_id: str) -> float:
        return float(self.store.usage_stats(artifact_id).view_count)

    def _opens(self, artifact_id: str) -> float:
        return float(self.store.usage_stats(artifact_id).open_count)

    def _edits(self, artifact_id: str) -> float:
        return float(self.store.usage_stats(artifact_id).edit_count)

    def _favorite(self, artifact_id: str) -> float:
        return float(self.store.usage_stats(artifact_id).favorite_count)

    def _unique_viewers(self, artifact_id: str) -> float:
        return float(self.store.usage_stats(artifact_id).unique_viewers)

    def _recency(self, artifact_id: str) -> float:
        last = self.store.usage_stats(artifact_id).last_viewed_at
        if last <= 0:
            return 0.0
        days = max(self.store.clock.days_since(last), 0.0)
        return 1.0 / (1.0 + days)

    def _freshness(self, artifact_id: str) -> float:
        created = self.store.artifact(artifact_id).created_at
        if created <= 0:
            return 0.0
        days = max(self.store.clock.days_since(created), 0.0)
        return 1.0 / (1.0 + days)

    def _badge_count(self, artifact_id: str) -> float:
        return float(len(self.store.artifact(artifact_id).badges))

    def _has_badge(self, artifact_id: str, badge: str) -> float:
        return 1.0 if self.store.artifact(artifact_id).has_badge(badge) else 0.0


def _as_number(raw: object) -> float:
    """Best-effort numeric coercion: bools, numbers, numeric strings, else 0."""
    if isinstance(raw, bool):
        return 1.0 if raw else 0.0
    if isinstance(raw, (int, float)):
        value = float(raw)
        return value if math.isfinite(value) else 0.0
    if isinstance(raw, str):
        try:
            value = float(raw)
        except ValueError:
            return 0.0
        return value if math.isfinite(value) else 0.0
    return 0.0
