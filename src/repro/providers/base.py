"""Typed provider request/response envelopes.

Section 4.1: a provider's spec declares *what type of data to expect* — its
representation — not how it is fetched.  The envelopes here are that
contract: every representation has a payload shape, and every result can be
flattened to a plain artifact-id list so search can compose results from
any provider ("each query element returns a list of data artifacts", §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator, Sequence

from repro.catalog.domains import coerce_domains
from repro.errors import RepresentationError


class Representation(str, Enum):
    """The data shapes a provider may declare (Figure 6's six views)."""

    TILES = "tiles"
    LIST = "list"
    HIERARCHY = "hierarchy"
    GRAPH = "graph"
    CATEGORIES = "categories"
    EMBEDDING = "embedding"

    @classmethod
    def coerce(cls, value: "Representation | str") -> "Representation":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown representation {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


#: Input types a provider may require; used by the search UI to recommend
#: plausible values (Figure 5) and by autocomplete.
INPUT_TYPES = ("artifact", "user", "team", "badge", "artifact_type", "text")


@dataclass(frozen=True)
class InputSpec:
    """Declaration of one input value a provider accepts (§4.1)."""

    name: str
    input_type: str
    required: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if self.input_type not in INPUT_TYPES:
            raise ValueError(
                f"input {self.name!r}: unknown input type "
                f"{self.input_type!r}; expected one of {INPUT_TYPES}"
            )


@dataclass(frozen=True)
class RequestContext:
    """Who is asking, from where; lets providers personalise results."""

    user_id: str = ""
    team_id: str = ""
    limit: int = 20


@dataclass(frozen=True)
class ProviderRequest:
    """A fetch request: declared inputs plus the requesting context."""

    inputs: dict[str, str] = field(default_factory=dict)
    context: RequestContext = field(default_factory=RequestContext)

    def input(self, name: str, default: str = "") -> str:
        return self.inputs.get(name, default)


@dataclass(frozen=True)
class ScoredArtifact:
    """One artifact in a list/tiles payload, with rankable metadata fields."""

    artifact_id: str
    score: float = 0.0
    fields: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class HierarchyNode:
    """A node of a hierarchy payload; children nest arbitrarily deep."""

    artifact_id: str
    children: tuple["HierarchyNode", ...] = ()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def iter_ids(self) -> Iterator[str]:
        yield self.artifact_id
        for child in self.children:
            yield from child.iter_ids()


@dataclass(frozen=True)
class GraphEdge:
    """An edge of a graph payload."""

    src: str
    dst: str
    label: str = ""
    weight: float = 1.0


@dataclass(frozen=True)
class Category:
    """One bucket of a categories payload."""

    name: str
    artifact_ids: tuple[str, ...] = ()

    @property
    def count(self) -> int:
        return len(self.artifact_ids)


@dataclass(frozen=True)
class EmbeddingPoint:
    """One point of an embedding payload."""

    artifact_id: str
    x: float
    y: float


@dataclass(frozen=True)
class ProviderResult:
    """A provider response: a representation tag plus the matching payload.

    Exactly one payload block is populated; :meth:`validate` enforces the
    pairing so malformed providers fail at the framework boundary instead
    of deep inside view generation.
    """

    representation: Representation
    items: tuple[ScoredArtifact, ...] = ()
    roots: tuple[HierarchyNode, ...] = ()
    nodes: tuple[str, ...] = ()
    edges: tuple[GraphEdge, ...] = ()
    categories: tuple[Category, ...] = ()
    points: tuple[EmbeddingPoint, ...] = ()

    def validate(self, provider_name: str = "<anonymous>") -> "ProviderResult":
        """Check payload/representation consistency; returns self."""
        rep = self.representation
        wrong: list[str] = []
        if rep in (Representation.TILES, Representation.LIST):
            if self.roots or self.nodes or self.edges or self.categories or self.points:
                wrong.append("list-like results may only carry `items`")
        elif rep is Representation.HIERARCHY:
            if self.items or self.nodes or self.edges or self.categories or self.points:
                wrong.append("hierarchy results may only carry `roots`")
        elif rep is Representation.GRAPH:
            if self.items or self.roots or self.categories or self.points:
                wrong.append("graph results may only carry `nodes`/`edges`")
            node_set = set(self.nodes)
            dangling = [
                e for e in self.edges if e.src not in node_set or e.dst not in node_set
            ]
            if dangling:
                wrong.append(
                    f"{len(dangling)} graph edge(s) reference nodes missing "
                    f"from `nodes`"
                )
        elif rep is Representation.CATEGORIES:
            if self.items or self.roots or self.nodes or self.edges or self.points:
                wrong.append("categories results may only carry `categories`")
        elif rep is Representation.EMBEDDING:
            if self.items or self.roots or self.nodes or self.edges or self.categories:
                wrong.append("embedding results may only carry `points`")
        if wrong:
            raise RepresentationError(provider_name, "; ".join(wrong))
        return self

    def artifact_ids(self) -> list[str]:
        """Flatten the payload to artifact ids, payload order preserved.

        Duplicates are removed keeping first occurrence; this is the list
        the query evaluator composes with set algebra.
        """
        seen: set[str] = set()
        ordered: list[str] = []

        def push(artifact_id: str) -> None:
            if artifact_id not in seen:
                seen.add(artifact_id)
                ordered.append(artifact_id)

        for item in self.items:
            push(item.artifact_id)
        for root in self.roots:
            for artifact_id in root.iter_ids():
                push(artifact_id)
        for node in self.nodes:
            push(node)
        for category in self.categories:
            for artifact_id in category.artifact_ids:
                push(artifact_id)
        for point in self.points:
            push(point.artifact_id)
        return ordered

    def is_empty(self) -> bool:
        """True when no payload block carries data.

        ``edges`` counts as payload so emptiness stays consistent with
        :meth:`validate` — a graph result is whatever its nodes *and*
        edges say, even though a valid graph with edges always has nodes.
        """
        return not (
            self.items
            or self.roots
            or self.nodes
            or self.edges
            or self.categories
            or self.points
        )

    def payload_size(self) -> int:
        """Number of payload entries, without flattening to artifact ids.

        Used by the execution layer to detect provider-side truncation
        (a result exactly filling ``context.limit`` probably hit the cap)
        cheaply — :meth:`artifact_ids` allocates, this only counts.
        """
        if self.items:
            return len(self.items)
        if self.roots:
            return sum(1 for root in self.roots for _ in root.iter_ids())
        if self.nodes or self.edges:
            return len(self.nodes)
        if self.categories:
            return sum(category.count for category in self.categories)
        return len(self.points)


#: The callable type an endpoint resolves to.
Endpoint = Callable[["ProviderRequest"], ProviderResult]

#: Attribute carrying an endpoint's declared metadata-domain dependencies.
DEPENDENCIES_ATTR = "__metadata_domains__"


def depends_on(*domains: str) -> Callable[[Endpoint], Endpoint]:
    """Declare the metadata domains an endpoint reads.

    The execution engine keys cache invalidation on this declaration:
    a cached result is dropped only when a depended-on domain mutates.
    Endpoints that declare nothing stay correct — they fall back to
    invalidate-on-any-write — but pay for every usage event.

    Usable on plain functions and on methods (the attribute survives
    ``functools.partial``-free bound-method access since it lives on the
    underlying function object).
    """
    frozen = coerce_domains(domains)

    def decorate(endpoint: Endpoint) -> Endpoint:
        setattr(endpoint, DEPENDENCIES_ATTR, frozen)
        return endpoint

    return decorate


#: Attribute carrying an endpoint's declared cardinality estimator.
ESTIMATOR_ATTR = "__result_estimator__"

#: An estimator: given the request a fetch would receive, predict how many
#: artifacts the fetch would return — or ``None`` when it cannot say.
Estimator = Callable[["ProviderRequest"], "int | None"]


def estimates_with(estimator: Estimator) -> Callable[[Endpoint], Endpoint]:
    """Attach a cardinality estimator to an endpoint.

    The query planner asks :meth:`~repro.providers.execution.
    ExecutionEngine.estimate` how large a provider leaf's result would be
    before fetching it, so ``And`` branches evaluate most-selective
    first.  An estimator must be *cheap* (an index-size lookup, not a
    fetch) and may be approximate — estimates order evaluation, they
    never replace it, so a wrong estimate costs speed, not correctness.
    """

    def decorate(endpoint: Endpoint) -> Endpoint:
        setattr(endpoint, ESTIMATOR_ATTR, estimator)
        return endpoint

    return decorate


def declared_estimator(endpoint: Endpoint) -> Estimator | None:
    """The estimator *endpoint* declared via :func:`estimates_with`.

    ``None`` means the endpoint offers no estimate; the planner then
    treats its cardinality as unknown.  Bound methods expose the
    attribute through ``__func__``, same as :func:`declared_dependencies`.
    """
    estimator = getattr(endpoint, ESTIMATOR_ATTR, None)
    return estimator if callable(estimator) else None


#: Attribute carrying an endpoint's declared delta patcher.
PATCHER_ATTR = "__result_patcher__"

#: A delta patcher: given the request a cached result answered, the cached
#: result itself, and the write-ahead event records appended since the
#: engine's last invalidation sweep (see :mod:`repro.catalog.events`),
#: return the result the endpoint would produce *now* — the cached object
#: itself when the events provably cannot affect it — or ``None`` to
#: decline, which makes the engine fall back to drop-and-refetch.
ResultPatcher = Callable[
    ["ProviderRequest", ProviderResult, "Sequence[object]"],
    "ProviderResult | None",
]


def patches_with(patcher: ResultPatcher) -> Callable[[Endpoint], Endpoint]:
    """Attach a cache delta patcher to an endpoint.

    Under a streaming write load, dropping every dependent cache entry
    per write collapses the hit rate; a patcher lets the engine *update*
    a cached result in place instead.  A patcher must be exactly as
    correct as refetching — when in doubt it returns ``None`` and the
    engine drops the entry (never less correct than PR 2's behaviour,
    just faster in the monotonic common cases).
    """

    def decorate(endpoint: Endpoint) -> Endpoint:
        setattr(endpoint, PATCHER_ATTR, patcher)
        return endpoint

    return decorate


def declared_patcher(endpoint: Endpoint) -> ResultPatcher | None:
    """The patcher *endpoint* declared via :func:`patches_with`.

    ``None`` means the endpoint cannot patch — its cached results drop
    on every dependent-domain write, the pre-streaming behaviour.
    """
    patcher = getattr(endpoint, PATCHER_ATTR, None)
    return patcher if callable(patcher) else None


def declared_dependencies(endpoint: Endpoint) -> frozenset[str] | None:
    """The domains *endpoint* declared via :func:`depends_on`, else None.

    ``None`` means "undeclared" — distinct from ``frozenset()`` which
    would mean "depends on nothing, never invalidate".  Bound methods
    expose the attribute through ``__func__``; plain attribute access
    covers both cases.
    """
    deps = getattr(endpoint, DEPENDENCIES_ATTR, None)
    if deps is None:
        return None
    return coerce_domains(deps)


def list_result(
    items: list[ScoredArtifact], representation: Representation = Representation.LIST
) -> ProviderResult:
    """Convenience constructor for list/tiles results."""
    if representation not in (Representation.LIST, Representation.TILES):
        raise ValueError("list_result only builds list/tiles results")
    return ProviderResult(representation=representation, items=tuple(items))
