"""Declarative endpoints: providers defined by data, not code.

Section 4.1: "Data fetching can be done using, e.g., materialized views
of a database, lookup tables, SQL statements, or ML models."  The builtin
suite covers computed providers; this module covers the other end of the
spectrum — endpoints an admin can stand up without writing a function:

* :class:`LookupEndpoint` — a curated, ordered artifact list (the
  "golden datasets" collection every data team keeps somewhere);
* :class:`RuleEndpoint` — a small predicate language over artifact
  metadata fields (the lookup-table/materialized-view analogue), e.g.
  ``[{"field": "type", "op": "eq", "value": "table"},
  {"field": "views", "op": "gte", "value": 100}]``.

Both return list results and compose with everything else: spec entry +
registry registration, and the provider appears in views and search.
"""

from __future__ import annotations

from typing import Any

from repro.catalog.domains import DOMAIN_ENTITIES, DOMAIN_USAGE
from repro.catalog.store import CatalogStore
from repro.errors import SpecError
from repro.providers.base import (
    ProviderRequest,
    ProviderResult,
    Representation,
    ScoredArtifact,
)
from repro.providers.fields import FieldResolver


def _list_like(representation: "Representation | str") -> Representation:
    rep = Representation.coerce(representation)
    if rep not in (Representation.LIST, Representation.TILES):
        raise SpecError(
            f"declarative endpoints serve list-like data; got {rep.value!r}"
        )
    return rep


class LookupEndpoint:
    """A curated artifact list, served in its curated order."""

    def __init__(
        self,
        store: CatalogStore,
        artifact_ids: list[str],
        representation: "Representation | str" = Representation.LIST,
    ):
        self.store = store
        self._ids = list(artifact_ids)
        self.representation = _list_like(representation)
        # Membership is the curated list filtered to live artifacts, so
        # only entity churn can change it — truncation below happens in
        # curated order, which no usage event can reorder.  (``add``/
        # ``remove`` edits are out-of-band endpoint mutations, bounded by
        # the cache TTL.)
        self.__metadata_domains__ = frozenset({DOMAIN_ENTITIES})

    @property
    def artifact_ids(self) -> list[str]:
        return list(self._ids)

    def add(self, artifact_id: str) -> None:
        """Append to the collection (curation is an ongoing activity)."""
        if artifact_id not in self._ids:
            self._ids.append(artifact_id)

    def remove(self, artifact_id: str) -> None:
        if artifact_id in self._ids:
            self._ids.remove(artifact_id)

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        items = tuple(
            ScoredArtifact(artifact_id=aid,
                           score=float(len(self._ids) - position))
            for position, aid in enumerate(self._ids)
            if self.store.has_artifact(aid)
        )
        return ProviderResult(
            representation=self.representation,
            items=items[: request.context.limit],
        )


#: op name -> binary predicate over (artifact value, rule value).
_OPS = {
    "eq": lambda actual, wanted: _norm(actual) == _norm(wanted),
    "ne": lambda actual, wanted: _norm(actual) != _norm(wanted),
    "contains": lambda actual, wanted: str(wanted).lower()
    in str(actual).lower(),
    "in": lambda actual, wanted: _norm(actual) in [_norm(w) for w in wanted],
    "gte": lambda actual, wanted: _as_float(actual) >= float(wanted),
    "lte": lambda actual, wanted: _as_float(actual) <= float(wanted),
    "gt": lambda actual, wanted: _as_float(actual) > float(wanted),
    "lt": lambda actual, wanted: _as_float(actual) < float(wanted),
}

#: fields served by the usage resolver rather than the artifact record.
_RESOLVER_FIELDS = frozenset(
    {"views", "opens", "edits", "favorite", "unique_viewers", "recency",
     "freshness", "badge_count", "endorsed", "certified", "deprecated"}
)

#: the subset of resolver fields whose values come from the usage log; a
#: rule predicate over one of these makes the endpoint's membership
#: usage-dependent (the rest derive from the artifact record itself).
_USAGE_FIELDS = frozenset(
    {"views", "opens", "edits", "favorite", "unique_viewers", "recency"}
)


def _norm(value: Any) -> Any:
    return value.lower() if isinstance(value, str) else value


def _as_float(value: Any) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return 0.0


class RuleEndpoint:
    """Artifacts matching every rule in a config-defined conjunction.

    Rules are plain dicts — serialisable next to the spec — of the form
    ``{"field": <name>, "op": <op>, "value": <literal>}``.  Fields are
    resolved through :meth:`Artifact.field` for annotations and through
    the :class:`FieldResolver` for usage-derived numbers, so a rule like
    ``views >= 100`` works without the admin touching Python.
    """

    def __init__(
        self,
        store: CatalogStore,
        rules: list[dict[str, Any]],
        representation: "Representation | str" = Representation.LIST,
    ):
        self.store = store
        self.resolver = FieldResolver(store)
        self.representation = _list_like(representation)
        self.rules = [self._validate_rule(rule) for rule in rules]
        if not self.rules:
            raise SpecError("a RuleEndpoint needs at least one rule")
        # Membership is exactly the set of predicate matches (results are
        # never truncated below it), so the declaration needs ``usage``
        # only when a rule predicate reads a usage-derived field.
        domains = {DOMAIN_ENTITIES}
        if any(rule["field"] in _USAGE_FIELDS for rule in self.rules):
            domains.add(DOMAIN_USAGE)
        self.__metadata_domains__ = frozenset(domains)

    @staticmethod
    def _validate_rule(rule: dict[str, Any]) -> dict[str, Any]:
        missing = {"field", "op", "value"} - set(rule)
        if missing:
            raise SpecError(f"rule {rule!r} is missing {sorted(missing)}")
        if rule["op"] not in _OPS:
            raise SpecError(
                f"rule {rule!r}: unknown op {rule['op']!r}; expected one of "
                f"{sorted(_OPS)}"
            )
        return dict(rule)

    def _field_value(self, artifact_id: str, field: str) -> Any:
        if field in _RESOLVER_FIELDS:
            return self.resolver.value(artifact_id, field)
        artifact = self.store.artifact(artifact_id)
        return artifact.field(field)

    def _matches(self, artifact_id: str) -> bool:
        for rule in self.rules:
            actual = self._field_value(artifact_id, rule["field"])
            predicate = _OPS[rule["op"]]
            if isinstance(actual, (tuple, list)):
                # multi-valued fields (tags, badges) match if any element does
                if not any(predicate(item, rule["value"]) for item in actual):
                    return False
            elif not predicate(actual, rule["value"]):
                return False
        return True

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        items = []
        for artifact in self.store.artifacts():
            if self._matches(artifact.id):
                items.append(
                    ScoredArtifact(
                        artifact_id=artifact.id,
                        score=self.resolver.value(artifact.id, "views"),
                    )
                )
        items.sort(key=lambda i: (-i.score, i.artifact_id))
        # Full membership, views order advisory only: truncating the
        # views-sorted list here would make membership usage-dependent
        # even when no rule reads a usage field, going stale in the cache
        # after usage events the declaration does not cover.  Consumers
        # truncate after re-ranking live.
        return ProviderResult(
            representation=self.representation,
            items=tuple(items),
        )
