"""Metadata-provider framework.

A *metadata provider* is, per the paper, "a metadata source, typically an
API endpoint".  This package defines the contract between providers and the
Humboldt framework:

* :mod:`repro.providers.base` — typed request/response envelopes and the
  six representations (tiles, list, hierarchy, graph, categories,
  embedding);
* :mod:`repro.providers.registry` — endpoint registry resolving the
  ``endpoint`` URIs named in a Humboldt specification to callables;
* :mod:`repro.providers.execution` — the execution layer every consumer
  fetches through (caching, parallel fan-out, retry middleware, circuit
  breakers, deadline budgets, stale-while-revalidate, stats);
* :mod:`repro.providers.fields` — the metadata-field resolver ranking
  weights refer to;
* :mod:`repro.providers.builtin` — the full provider suite of Figure 2
  implemented against the catalog substrate.
"""

from repro.providers.base import (
    Category,
    EmbeddingPoint,
    GraphEdge,
    HierarchyNode,
    InputSpec,
    ProviderRequest,
    ProviderResult,
    Representation,
    RequestContext,
    ScoredArtifact,
)
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import (
    BreakerPolicy,
    BreakerState,
    CachePolicy,
    Deadline,
    DeadlinePolicy,
    EndpointPolicy,
    ExecutionEngine,
    ExecutionPolicy,
    ExecutionStats,
    FetchOutcome,
    FetchStatus,
    ProviderHealth,
    RetryPolicy,
    request_key,
)
from repro.providers.fields import FieldResolver, RANKABLE_FIELDS
from repro.providers.registry import EndpointRegistry

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "BuiltinProviders",
    "CachePolicy",
    "Category",
    "Deadline",
    "DeadlinePolicy",
    "EmbeddingPoint",
    "EndpointPolicy",
    "EndpointRegistry",
    "ExecutionEngine",
    "ExecutionPolicy",
    "ExecutionStats",
    "FetchOutcome",
    "FetchStatus",
    "FieldResolver",
    "ProviderHealth",
    "RetryPolicy",
    "GraphEdge",
    "HierarchyNode",
    "InputSpec",
    "ProviderRequest",
    "ProviderResult",
    "RANKABLE_FIELDS",
    "Representation",
    "RequestContext",
    "ScoredArtifact",
    "install_builtin_endpoints",
    "request_key",
]
