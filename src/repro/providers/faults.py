"""Fault injection for provider endpoints.

Metadata providers are, per the paper, "typically an API endpoint" — and
real endpoints fail.  These wrappers simulate the failure modes a
production deployment sees, deterministically, so tests can verify that
one broken provider degrades its own view and nothing else:

* :class:`FlakyEndpoint` — raises :class:`~repro.errors.ProviderError`
  on a scheduled subset of calls;
* :class:`WrongShapeEndpoint` — returns a payload that violates the
  declared representation (a contract-breaking provider);
* :class:`SlowEndpoint` — counts simulated latency against a budget and
  fails once the budget is exhausted (a timeout stand-in that needs no
  wall-clock sleeping);
* :class:`FailNTimesEndpoint` — fails its first N calls, then recovers
  (the shape circuit-breaker half-open transitions need);
* :class:`LatencySpikeEndpoint` — advances a simulation clock by a
  per-call latency schedule before delegating, so slow-provider tail
  latency is measurable without wall-clock sleeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    MissingInputError,
    ProviderError,
    ProviderTimeoutError,
    RepresentationError,
)
from repro.providers.base import (
    Endpoint,
    ProviderRequest,
    ProviderResult,
    Representation,
    ScoredArtifact,
)

if TYPE_CHECKING:  # type hints only
    from repro.util.clock import SimulationClock


#: Failure classes that retrying cannot fix: the request itself is wrong
#: (missing input), the provider is broken by contract (wrong shape), or
#: the execution layer itself refused the call (open breaker, spent
#: deadline) — retrying within the same request changes nothing.
NON_TRANSIENT_ERRORS = (
    MissingInputError,
    RepresentationError,
    CircuitOpenError,
    DeadlineExceededError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether the execution layer's retry middleware may retry *exc*.

    Outages and timeouts are transient; contract violations and missing
    inputs would fail identically on every attempt.
    """
    if not isinstance(exc, ProviderError):
        return False
    return not isinstance(exc, NON_TRANSIENT_ERRORS)


class FlakyEndpoint:
    """Wraps an endpoint; fails on calls whose 1-based index matches.

    ``fail_on`` may be a set of call indexes or a predicate on the index.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        fail_on: "set[int] | Callable[[int], bool]",
        name: str = "flaky",
    ):
        self._endpoint = endpoint
        self._name = name
        self.calls = 0
        if callable(fail_on):
            self._should_fail = fail_on
        else:
            indexes = set(fail_on)
            self._should_fail = lambda index: index in indexes

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        self.calls += 1
        if self._should_fail(self.calls):
            raise ProviderError(
                self._name, f"simulated outage on call {self.calls}"
            )
        return self._endpoint(request)


class FailNTimesEndpoint:
    """Fails its first ``fail_count`` calls, then recovers for good.

    The canonical circuit-breaker test fixture: enough initial failures
    trip the breaker, and the first half-open probe after recovery
    succeeds and closes it again.
    """

    def __init__(
        self, endpoint: Endpoint, fail_count: int, name: str = "fail-n"
    ):
        if fail_count < 0:
            raise ValueError("fail_count must be non-negative")
        self._endpoint = endpoint
        self._name = name
        self.fail_count = fail_count
        self.calls = 0

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        self.calls += 1
        if self.calls <= self.fail_count:
            raise ProviderError(
                self._name,
                f"simulated outage on call {self.calls}"
                f" (recovers after {self.fail_count})",
            )
        return self._endpoint(request)


class LatencySpikeEndpoint:
    """Advances a simulation clock by a latency schedule, then delegates.

    ``latencies_ms`` is cycled per call, so a schedule like
    ``[5, 5, 250]`` models a provider with periodic tail spikes.  Because
    the delay moves the *clock*, an engine timing its calls with the same
    clock observes the spike in its latency stats and deadline budgets —
    no wall-clock sleeping anywhere.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        clock: "SimulationClock",
        latencies_ms: Sequence[float],
        name: str = "spiky",
    ):
        schedule = tuple(float(v) for v in latencies_ms)
        if not schedule:
            raise ValueError("latencies_ms must not be empty")
        if any(v < 0 for v in schedule):
            raise ValueError("latencies must be non-negative")
        self._endpoint = endpoint
        self._clock = clock
        self._schedule = schedule
        self._name = name
        self.calls = 0

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        latency_ms = self._schedule[self.calls % len(self._schedule)]
        self.calls += 1
        self._clock.advance(seconds=latency_ms / 1000.0)
        return self._endpoint(request)


class WrongShapeEndpoint:
    """Always returns a list payload, whatever was promised.

    Useful to verify the framework rejects contract-breaking providers at
    the boundary instead of rendering garbage.
    """

    def __init__(self, artifact_ids: list[str] = ()):  # noqa: B006 - tuple
        self._ids = tuple(artifact_ids)

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        return ProviderResult(
            representation=Representation.LIST,
            items=tuple(ScoredArtifact(aid) for aid in self._ids),
        )


class SlowEndpoint:
    """Simulated-latency wrapper with a deadline.

    Each call consumes ``latency`` simulated milliseconds from ``budget``;
    when the budget cannot cover a call, the endpoint raises a timeout-
    flavoured :class:`ProviderError`.  No real sleeping, so tests stay
    fast and deterministic.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        latency_ms: float,
        budget_ms: float,
        name: str = "slow",
    ):
        if latency_ms < 0 or budget_ms < 0:
            raise ValueError("latency and budget must be non-negative")
        self._endpoint = endpoint
        self._latency = latency_ms
        self._name = name
        self.remaining_ms = budget_ms
        self.timed_out = 0

    def __call__(self, request: ProviderRequest) -> ProviderResult:
        if self._latency > self.remaining_ms:
            self.timed_out += 1
            raise ProviderTimeoutError(
                self._name,
                f"simulated timeout ({self._latency:.0f}ms > "
                f"{self.remaining_ms:.0f}ms budget)",
            )
        self.remaining_ms -= self._latency
        return self._endpoint(request)
