"""The provider execution layer.

Every consumer of metadata providers — the query evaluator, the generated
discovery interface, exploration, workbook sessions — routes fetches
through one :class:`ExecutionEngine` instead of calling the
:class:`~repro.providers.registry.EndpointRegistry` directly.  The engine
owns the cross-cutting concerns the paper's UI-side design implies but a
naive reproduction scatters per call site:

* **canonical request keys** — one fetch is identified by its endpoint
  URI plus the request's inputs and context, so identical fetches are
  recognisable wherever they originate;
* **caching** — a TTL/LRU result cache keyed on those request keys,
  invalidated explicitly (:meth:`ExecutionEngine.invalidate`) and
  implicitly whenever the catalog mutates or the spec is swapped.
  Invalidation is **dependency-aware**: the store versions each metadata
  domain separately (:mod:`repro.catalog.domains`) and endpoints declare
  the domains they read, so a usage event only drops results of
  endpoints that depend on usage.  Endpoints with no declaration fall
  back to invalidate-on-any-write — never less correct than the old
  monolithic counter, just slower;
* **request-scoped memoisation** — :meth:`ExecutionEngine.scope` opens a
  memo so one logical operation (a search, an overview generation) never
  re-invokes an endpoint for the same key, even with the cache disabled;
* **parallel fan-out** — :meth:`ExecutionEngine.fetch_many` executes
  independent fetches on a thread pool with deterministic, input-ordered
  results and per-call fault containment;
* **middleware** — a retry/backoff policy composing with
  :mod:`repro.providers.faults` (transient outages and timeouts retry;
  contract violations do not) and envelope validation at the boundary;
* **instrumentation** — :class:`ExecutionStats`: per-endpoint call
  counts, latency percentiles, cache hits/misses, retries, errors and
  truncation events, surfaced via ``DiscoveryInterface.stats`` and the
  CLI's ``--stats`` flag.

The registry stays pure name→callable resolution; this module is the seam
future scaling work (sharding, async backends, remote endpoints) plugs
into.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.catalog.domains import coerce_domains
from repro.errors import HumboldtError, ProviderError
from repro.providers.base import (
    ProviderRequest,
    ProviderResult,
    declared_estimator,
)
from repro.providers.faults import is_transient
from repro.providers.registry import EndpointRegistry

if TYPE_CHECKING:  # imported for type hints only; no runtime cycle
    from repro.catalog.store import CatalogStore

#: A fully canonicalised fetch identity: endpoint URI, sorted inputs,
#: and the context fields that can change a provider's answer.
RequestKey = tuple[str, tuple[tuple[str, str], ...], str, str, int]


def request_key(endpoint: str, request: ProviderRequest) -> RequestKey:
    """Canonical cache key for one fetch.

    Input order is irrelevant to providers, so inputs are sorted; the
    user, team and limit all participate because providers personalise
    and cap results on them.
    """
    return (
        endpoint,
        tuple(sorted(request.inputs.items())),
        request.context.user_id,
        request.context.team_id,
        request.context.limit,
    )


# -- instrumentation --------------------------------------------------------

#: Latency samples kept per endpoint for percentile estimates; a rolling
#: window bounds memory on long-lived engines.
LATENCY_WINDOW = 1024


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (already a copy, unsorted)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class EndpointStats:
    """Counters for one endpoint URI (the engine's live, internal record)."""

    calls: int = 0
    errors: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: In-batch duplicates of a pending miss in ``fetch_many`` — the work
    #: was shared, but no cache entry answered it.
    dedups: int = 0
    truncations: int = 0
    #: Cache entries dropped because a depended-on domain mutated.
    invalidations: int = 0
    #: Cardinality estimates served (cache-sized or hook-computed) for
    #: the query planner, without invoking the endpoint.
    estimates: int = 0
    #: Fetches the planner proved unnecessary (an ``And`` intersection
    #: emptied before this endpoint's branch was reached).
    fetches_skipped: int = 0
    latencies_ms: deque = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    def latency_summary(self) -> dict[str, float]:
        return _latency_summary(list(self.latencies_ms))


@dataclass(frozen=True)
class EndpointStatsSnapshot:
    """An immutable point-in-time copy of one endpoint's counters.

    This is what :meth:`ExecutionStats.endpoint` hands out: it shares no
    state with the engine, so callers can neither race the engine's
    bookkeeping nor corrupt it by mutation.
    """

    calls: int = 0
    errors: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    dedups: int = 0
    truncations: int = 0
    invalidations: int = 0
    estimates: int = 0
    fetches_skipped: int = 0
    latencies_ms: tuple[float, ...] = ()

    def latency_summary(self) -> dict[str, float]:
        return _latency_summary(list(self.latencies_ms))


def _latency_summary(samples: list[float]) -> dict[str, float]:
    if not samples:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": sum(samples) / len(samples),
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "p99": _percentile(samples, 0.99),
        "max": max(samples),
    }


class ExecutionStats:
    """Thread-safe per-endpoint execution metrics.

    ``calls`` counts actual endpoint invocations (each retry attempt is
    an invocation), so "a repeated operation performed zero duplicate
    fetches" is assertable as an unchanged ``total_calls``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointStats] = {}

    def _for(self, endpoint: str) -> EndpointStats:
        stats = self._endpoints.get(endpoint)
        if stats is None:
            stats = self._endpoints[endpoint] = EndpointStats()
        return stats

    # -- recording (called by the engine) ---------------------------------

    def record_call(self, endpoint: str, latency_ms: float) -> None:
        with self._lock:
            stats = self._for(endpoint)
            stats.calls += 1
            stats.latencies_ms.append(latency_ms)

    def record_error(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).errors += 1

    def record_retry(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).retries += 1

    def record_cache_hit(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).cache_hits += 1

    def record_cache_miss(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).cache_misses += 1

    def record_dedup(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).dedups += 1

    def record_truncation(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).truncations += 1

    def record_invalidation(self, endpoint: str, dropped: int = 1) -> None:
        with self._lock:
            self._for(endpoint).invalidations += dropped

    def record_estimate(self, endpoint: str) -> None:
        with self._lock:
            self._for(endpoint).estimates += 1

    def record_fetch_skipped(self, endpoint: str, count: int = 1) -> None:
        with self._lock:
            self._for(endpoint).fetches_skipped += count

    # -- reading -----------------------------------------------------------

    def _total(self, attr: str) -> int:
        with self._lock:
            return sum(getattr(s, attr) for s in self._endpoints.values())

    @property
    def total_calls(self) -> int:
        return self._total("calls")

    @property
    def total_errors(self) -> int:
        return self._total("errors")

    @property
    def total_retries(self) -> int:
        return self._total("retries")

    @property
    def cache_hits(self) -> int:
        return self._total("cache_hits")

    @property
    def cache_misses(self) -> int:
        return self._total("cache_misses")

    @property
    def dedups(self) -> int:
        return self._total("dedups")

    @property
    def truncations(self) -> int:
        return self._total("truncations")

    @property
    def invalidations(self) -> int:
        return self._total("invalidations")

    @property
    def estimates(self) -> int:
        return self._total("estimates")

    @property
    def fetches_skipped(self) -> int:
        return self._total("fetches_skipped")

    @property
    def cache_hit_rate(self) -> float:
        hits, misses = self.cache_hits, self.cache_misses
        return hits / (hits + misses) if hits + misses else 0.0

    def endpoint(self, uri: str) -> EndpointStatsSnapshot:
        """Counters for one endpoint (zeros if never fetched).

        Returns an immutable :class:`EndpointStatsSnapshot` — historically
        this handed out the live :class:`EndpointStats` (shared
        ``latencies_ms`` deque included), letting callers observe torn
        updates or mutate engine internals.
        """
        with self._lock:
            live = self._endpoints.get(uri)
            if live is None:
                return EndpointStatsSnapshot()
            return EndpointStatsSnapshot(
                calls=live.calls,
                errors=live.errors,
                retries=live.retries,
                cache_hits=live.cache_hits,
                cache_misses=live.cache_misses,
                dedups=live.dedups,
                truncations=live.truncations,
                invalidations=live.invalidations,
                estimates=live.estimates,
                fetches_skipped=live.fetches_skipped,
                latencies_ms=tuple(live.latencies_ms),
            )

    def snapshot(self) -> dict:
        """A JSON-friendly copy of every counter."""
        with self._lock:
            endpoints = {
                uri: {
                    "calls": s.calls,
                    "errors": s.errors,
                    "retries": s.retries,
                    "cache_hits": s.cache_hits,
                    "cache_misses": s.cache_misses,
                    "dedups": s.dedups,
                    "truncations": s.truncations,
                    "invalidations": s.invalidations,
                    "estimates": s.estimates,
                    "fetches_skipped": s.fetches_skipped,
                    "latency_ms": s.latency_summary(),
                }
                for uri, s in sorted(self._endpoints.items())
            }
        totals = {
            "calls": sum(e["calls"] for e in endpoints.values()),
            "errors": sum(e["errors"] for e in endpoints.values()),
            "retries": sum(e["retries"] for e in endpoints.values()),
            "cache_hits": sum(e["cache_hits"] for e in endpoints.values()),
            "cache_misses": sum(e["cache_misses"] for e in endpoints.values()),
            "dedups": sum(e["dedups"] for e in endpoints.values()),
            "truncations": sum(e["truncations"] for e in endpoints.values()),
            "invalidations": sum(
                e["invalidations"] for e in endpoints.values()
            ),
            "estimates": sum(e["estimates"] for e in endpoints.values()),
            "fetches_skipped": sum(
                e["fetches_skipped"] for e in endpoints.values()
            ),
        }
        return {"totals": totals, "endpoints": endpoints}

    def render(self) -> str:
        """Plain-text stats table for the CLI's ``--stats`` flag."""
        snap = self.snapshot()
        lines = [
            f"{'endpoint':<32}{'calls':>6}{'hits':>6}{'miss':>6}{'dedup':>6}"
            f"{'err':>5}{'retry':>6}{'trunc':>6}{'inval':>6}"
            f"{'est':>5}{'skip':>6}"
            f"{'p50 ms':>8}{'p95 ms':>8}"
        ]
        for uri, s in snap["endpoints"].items():
            lat = s["latency_ms"]
            lines.append(
                f"{uri:<32}{s['calls']:>6}{s['cache_hits']:>6}"
                f"{s['cache_misses']:>6}{s['dedups']:>6}"
                f"{s['errors']:>5}{s['retries']:>6}"
                f"{s['truncations']:>6}{s['invalidations']:>6}"
                f"{s['estimates']:>5}{s['fetches_skipped']:>6}"
                f"{lat['p50']:>8.2f}{lat['p95']:>8.2f}"
            )
        t = snap["totals"]
        lines.append(
            f"{'TOTAL':<32}{t['calls']:>6}{t['cache_hits']:>6}"
            f"{t['cache_misses']:>6}{t['dedups']:>6}"
            f"{t['errors']:>5}{t['retries']:>6}"
            f"{t['truncations']:>6}{t['invalidations']:>6}"
            f"{t['estimates']:>5}{t['fetches_skipped']:>6}"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._endpoints.clear()


# -- policy and middleware ---------------------------------------------------

#: The continuation a middleware wraps: the rest of the stack.
CallNext = Callable[[str, ProviderRequest], ProviderResult]
#: A middleware: observe/transform a call, then delegate to ``call_next``.
Middleware = Callable[[str, ProviderRequest, CallNext], ProviderResult]


@dataclass(frozen=True)
class ExecutionPolicy:
    """Tunable knobs of one engine.

    The defaults preserve pre-engine behaviour exactly (no retries) while
    adding caching; hosts opt into retries per deployment.
    """

    #: Total invocation attempts per fetch (1 = no retries).
    attempts: int = 1
    #: First retry delay; doubles per subsequent attempt.
    backoff_base_ms: float = 25.0
    backoff_multiplier: float = 2.0
    #: Result-cache time-to-live in seconds; 0 disables caching.
    cache_ttl_s: float = 300.0
    cache_max_entries: int = 2048
    #: Thread-pool width for :meth:`ExecutionEngine.fetch_many`;
    #: 1 degrades to serial execution.
    max_workers: int = 8


@dataclass(frozen=True)
class FetchOutcome:
    """One :meth:`ExecutionEngine.fetch_many` result slot.

    Exactly one of ``result``/``error`` is set — fault containment means
    a failed call occupies its slot instead of aborting the batch.
    """

    endpoint: str
    result: ProviderResult | None = None
    error: HumboldtError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class ExecutionEngine:
    """Cached, parallel, instrumented execution of provider fetches."""

    def __init__(
        self,
        registry: EndpointRegistry,
        store: "CatalogStore | None" = None,
        policy: ExecutionPolicy | None = None,
        middlewares: Sequence[Middleware] = (),
        timer: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.registry = registry
        self.store = store
        self.policy = policy or ExecutionPolicy()
        self.stats = ExecutionStats()
        self._timer = timer
        self._sleep = sleep
        self._lock = threading.RLock()
        self._cache: OrderedDict[RequestKey, tuple[float, ProviderResult]] = (
            OrderedDict()
        )
        self._seen_store_version = store.version if store is not None else -1
        self._seen_registry_version = registry.version
        # Per-domain counters seen at the last sweep; None when the store
        # predates domain versioning (duck-typed), forcing full flushes.
        versions = getattr(store, "domain_versions", None)
        self._seen_domain_versions: dict[str, int] | None = (
            dict(versions) if isinstance(versions, dict) else None
        )
        # Spec-declared dependencies overlaid per endpoint URI; unioned
        # with registry-declared dependencies by :meth:`dependencies_for`.
        # Each entry is stamped with the endpoint's registration
        # generation at declaration time, so re-registering the endpoint
        # (possibly with a callable declaring nothing) retires the stale
        # overlay instead of silently narrowing invalidation.
        self._dependency_overlay: dict[str, tuple[int, frozenset[str]]] = {}
        self._memos = threading.local()
        self._pool: ThreadPoolExecutor | None = None
        # Innermost first: validation sits at the boundary, retries wrap
        # it (so a transient failure re-enters validation too), and
        # caller-supplied middlewares observe the whole stack.
        chain: CallNext = self._invoke
        chain = self._wrap(_validation_middleware, chain)
        chain = self._wrap(self._retry_middleware, chain)
        for middleware in reversed(tuple(middlewares)):
            chain = self._wrap(middleware, chain)
        self._chain = chain

    # -- the public fetch API ----------------------------------------------

    def fetch(self, endpoint: str, request: ProviderRequest) -> ProviderResult:
        """Resolve-and-invoke one endpoint through cache and middleware.

        Raises the underlying :class:`~repro.errors.ProviderError` on
        failure — containment is the batch API's job, not this one's.
        """
        key = request_key(endpoint, request)
        cached = self._lookup(key)
        if cached is not None:
            self.stats.record_cache_hit(endpoint)
            return cached
        self.stats.record_cache_miss(endpoint)
        result = self._execute(endpoint, request)
        self._remember(key, result)
        return result

    def fetch_many(
        self, calls: Sequence[tuple[str, ProviderRequest]]
    ) -> list[FetchOutcome]:
        """Execute *calls* concurrently; results align with the input.

        Duplicate request keys within the batch are fetched once.  Each
        failing call yields a :class:`FetchOutcome` carrying its error —
        one broken endpoint never poisons its neighbours (§6.1 fault
        containment, now in one place instead of per call site).
        """
        keys = [request_key(endpoint, request) for endpoint, request in calls]
        outcomes: dict[RequestKey, FetchOutcome] = {}
        hit_keys: set[RequestKey] = set()
        pending: list[tuple[RequestKey, str, ProviderRequest]] = []
        for key, (endpoint, request) in zip(keys, calls):
            if key in outcomes:
                # A duplicate of a key already answered by the cache is
                # another hit; a duplicate of a pending miss shares that
                # miss's single execution — counting it as a hit inflated
                # cache_hit_rate, so it gets its own counter.
                if key in hit_keys:
                    self.stats.record_cache_hit(endpoint)
                else:
                    self.stats.record_dedup(endpoint)
                continue
            cached = self._lookup(key)
            if cached is not None:
                self.stats.record_cache_hit(endpoint)
                hit_keys.add(key)
                outcomes[key] = FetchOutcome(endpoint, result=cached)
            else:
                self.stats.record_cache_miss(endpoint)
                outcomes[key] = FetchOutcome(endpoint)  # placeholder
                pending.append((key, endpoint, request))

        def run_one(endpoint: str, request: ProviderRequest) -> FetchOutcome:
            try:
                return FetchOutcome(endpoint, result=self._execute(endpoint, request))
            except HumboldtError as exc:
                return FetchOutcome(endpoint, error=exc)

        if len(pending) > 1 and self.policy.max_workers > 1:
            futures = [
                self._executor().submit(run_one, endpoint, request)
                for _, endpoint, request in pending
            ]
            finished = [future.result() for future in futures]
        else:
            finished = [
                run_one(endpoint, request) for _, endpoint, request in pending
            ]
        for (key, _, _), outcome in zip(pending, finished):
            outcomes[key] = outcome
            if outcome.ok:
                self._remember(key, outcome.result)
        return [outcomes[key] for key in keys]

    def estimate(self, endpoint: str, request: ProviderRequest) -> int | None:
        """Predict the fetch's result cardinality without invoking it.

        Sources, in order of trust:

        1. **the cache** — a live cached result for this exact request
           key answers with its true size (and the later fetch will be a
           hit, so planning on it is free);
        2. **the endpoint's estimator hook** — declared via
           :func:`~repro.providers.base.estimates_with` or
           ``registry.register(..., estimator=...)``; cheap index-size
           arithmetic supplied by the provider author.

        Returns ``None`` when neither source can say — the planner then
        treats the branch's cardinality as unknown.  Estimates order
        query evaluation; they never replace a fetch, so a wrong hook
        costs speed, not correctness (and a hook that raises is treated
        as "no estimate", same fault containment as fetches).
        """
        key = request_key(endpoint, request)
        cached = self._lookup(key)
        if cached is not None:
            self.stats.record_estimate(endpoint)
            return len(cached.artifact_ids())
        getter = getattr(self.registry, "estimator", None)
        estimator = getter(endpoint) if callable(getter) else None
        if estimator is None:
            try:
                resolved = self.registry.resolve(endpoint)
            except ProviderError:
                return None
            estimator = declared_estimator(resolved)
        if estimator is None:
            return None
        try:
            value = estimator(request)
        except Exception:
            return None
        if value is None:
            return None
        self.stats.record_estimate(endpoint)
        return max(0, int(value))

    @contextmanager
    def scope(self) -> Iterator[None]:
        """Open a request-scoped memo for one logical operation.

        Within the scope, repeated fetches of one request key reuse the
        first result regardless of TTL — a single search evaluating
        ``owned_by: alex | owned_by: alex`` must not pay twice.  Scopes
        nest; the memo dies with the outermost exit.
        """
        stack = self._memo_stack()
        stack.append({} if not stack else stack[-1])
        try:
            yield
        finally:
            stack.pop()

    def invalidate(self, endpoint: str | None = None) -> None:
        """Drop cached results — all of them, or one endpoint's.

        Called on spec swap; catalog mutation invalidates automatically
        through the store's ``version`` counter.  A full invalidation
        also clears the spec-declared dependency overlay: the swapped-in
        spec re-declares its dependencies when its interface is built,
        and keeping the old spec's declarations around would let them
        linger past the spec they came from.
        """
        with self._lock:
            if endpoint is None:
                self._cache.clear()
                self._dependency_overlay.clear()
            else:
                for key in [k for k in self._cache if k[0] == endpoint]:
                    del self._cache[key]

    @property
    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- dependency declarations ---------------------------------------------

    def declare_dependencies(
        self, endpoint: str, domains: "frozenset[str] | Sequence[str]"
    ) -> None:
        """Overlay a dependency declaration for *endpoint*.

        Discovery calls this with each :class:`ProviderSpec`'s declared
        ``dependencies`` so spec-level declarations reach the cache even
        when the endpoint callable carries no ``@depends_on`` decoration.
        Empty *domains* is a no-op (an empty declaration means
        "undeclared", not "depends on nothing").

        The declaration is bound to the endpoint's *current* registration
        generation: when the endpoint is later re-registered, the overlay
        entry is retired (see :meth:`dependencies_for`) rather than
        applied to a callable it never described.
        """
        frozen = coerce_domains(domains)
        if not frozen:
            return
        generation = self._registration_generation(endpoint)
        with self._lock:
            entry = self._dependency_overlay.get(endpoint)
            current = (
                entry[1]
                if entry is not None and entry[0] == generation
                else frozenset()
            )
            self._dependency_overlay[endpoint] = (generation, current | frozen)

    def dependencies_for(self, endpoint: str) -> frozenset[str] | None:
        """Effective domains for *endpoint*: registry ∪ overlay, or None.

        ``None`` means no declaration exists anywhere, and the endpoint's
        cached results are conservatively dropped on any catalog write.
        Overlay entries declared against an earlier registration of the
        endpoint are dropped here — a swapped-in callable with no
        declaration of its own must fall back to conservative
        invalidation, not inherit its predecessor's narrower set.
        """
        declared = self.registry.dependencies(endpoint) if hasattr(
            self.registry, "dependencies"
        ) else None
        with self._lock:
            entry = self._dependency_overlay.get(endpoint)
            if entry is not None and entry[0] != self._registration_generation(
                endpoint
            ):
                del self._dependency_overlay[endpoint]
                entry = None
        overlaid = entry[1] if entry is not None else None
        if declared is None and overlaid is None:
            return None
        return (declared or frozenset()) | (overlaid or frozenset())

    def _registration_generation(self, endpoint: str) -> int:
        """The registry's stamp for *endpoint*'s current registration."""
        getter = getattr(self.registry, "registration_generation", None)
        return getter(endpoint) if callable(getter) else 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the lazily-created thread pool, joining its workers.

        Idempotent; a later :meth:`fetch_many` lazily recreates the pool,
        so closing is safe even on engines that keep serving.  Without
        this, every engine leaked its workers for the process lifetime.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- cache internals ----------------------------------------------------

    def _memo_stack(self) -> list[dict]:
        stack = getattr(self._memos, "stack", None)
        if stack is None:
            stack = self._memos.stack = []
        return stack

    def _lookup(self, key: RequestKey) -> ProviderResult | None:
        stack = self._memo_stack()
        if stack and key in stack[-1]:
            return stack[-1][key]
        with self._lock:
            self._check_store_version()
            entry = self._cache.get(key)
            if entry is None:
                return None
            expires_at, result = entry
            if self._timer() >= expires_at:
                del self._cache[key]
                return None
            self._cache.move_to_end(key)
            return result

    def _remember(self, key: RequestKey, result: ProviderResult) -> None:
        stack = self._memo_stack()
        if stack:
            stack[-1][key] = result
        if self.policy.cache_ttl_s <= 0:
            return
        with self._lock:
            self._check_store_version()
            self._cache[key] = (self._timer() + self.policy.cache_ttl_s, result)
            self._cache.move_to_end(key)
            while len(self._cache) > self.policy.cache_max_entries:
                self._cache.popitem(last=False)

    def _check_store_version(self) -> None:
        """Sweep the cache when the catalog or registry mutated (lock held).

        Registry mutation (an endpoint swapped or removed) still clears
        everything — any entry may now belong to a different callable.
        Catalog mutation is dependency-aware: only entries whose endpoint
        depends on a mutated domain are dropped; endpoints without any
        declaration are dropped on every write (conservative fallback).
        """
        registry_version = self.registry.version
        if registry_version != self._seen_registry_version:
            self._cache.clear()
            self._seen_registry_version = registry_version
        if self.store is None:
            return
        version = self.store.version
        if version == self._seen_store_version:
            return
        self._seen_store_version = version
        current = getattr(self.store, "domain_versions", None)
        if not isinstance(current, dict) or self._seen_domain_versions is None:
            # Store without domain versioning: monolithic behaviour.
            self._cache.clear()
            return
        changed = {
            domain
            for domain, counter in current.items()
            if self._seen_domain_versions.get(domain) != counter
        }
        self._seen_domain_versions = dict(current)
        if not changed:
            return
        self._invalidate_domains(changed)

    def _invalidate_domains(self, changed: set[str]) -> None:
        """Drop cache entries depending on any of *changed* (lock held)."""
        dependencies: dict[str, frozenset[str] | None] = {}
        doomed: list[RequestKey] = []
        for key in self._cache:
            endpoint = key[0]
            if endpoint not in dependencies:
                dependencies[endpoint] = self.dependencies_for(endpoint)
            deps = dependencies[endpoint]
            if deps is None or deps & changed:
                doomed.append(key)
        for key in doomed:
            del self._cache[key]
            self.stats.record_invalidation(key[0])

    # -- execution internals -------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.max_workers,
                    thread_name_prefix="humboldt-exec",
                )
            return self._pool

    def _execute(self, endpoint: str, request: ProviderRequest) -> ProviderResult:
        try:
            result = self._chain(endpoint, request)
        except ProviderError:
            self.stats.record_error(endpoint)
            raise
        limit = request.context.limit
        if limit > 0 and result.payload_size() >= limit:
            self.stats.record_truncation(endpoint)
        return result

    def _wrap(self, middleware: Middleware, call_next: CallNext) -> CallNext:
        def wrapped(endpoint: str, request: ProviderRequest) -> ProviderResult:
            return middleware(endpoint, request, call_next)

        return wrapped

    def _invoke(self, endpoint: str, request: ProviderRequest) -> ProviderResult:
        """Terminal stage: resolve and call, timing the invocation."""
        resolved = self.registry.resolve(endpoint)
        started = self._timer()
        try:
            return resolved(request)
        finally:
            self.stats.record_call(endpoint, (self._timer() - started) * 1000.0)

    def _retry_middleware(
        self, endpoint: str, request: ProviderRequest, call_next: CallNext
    ) -> ProviderResult:
        attempt = 1
        while True:
            try:
                return call_next(endpoint, request)
            except ProviderError as exc:
                if attempt >= self.policy.attempts or not is_transient(exc):
                    raise
                self.stats.record_retry(endpoint)
                delay_ms = self.policy.backoff_base_ms * (
                    self.policy.backoff_multiplier ** (attempt - 1)
                )
                if delay_ms > 0:
                    self._sleep(delay_ms / 1000.0)
                attempt += 1


def _validation_middleware(
    endpoint: str, request: ProviderRequest, call_next: CallNext
) -> ProviderResult:
    """Enforce the response envelope at the execution boundary."""
    result = call_next(endpoint, request)
    if not isinstance(result, ProviderResult):
        raise ProviderError(
            endpoint,
            f"endpoint returned {type(result).__name__}, expected ProviderResult",
        )
    return result.validate(endpoint)
