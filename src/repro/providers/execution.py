"""The provider execution layer.

Every consumer of metadata providers — the query evaluator, the generated
discovery interface, exploration, workbook sessions — routes fetches
through one :class:`ExecutionEngine` instead of calling the
:class:`~repro.providers.registry.EndpointRegistry` directly.  The engine
owns the cross-cutting concerns the paper's UI-side design implies but a
naive reproduction scatters per call site:

* **canonical request keys** — one fetch is identified by its endpoint
  URI plus the request's inputs and context, so identical fetches are
  recognisable wherever they originate;
* **caching** — a TTL/LRU result cache keyed on those request keys,
  invalidated explicitly (:meth:`ExecutionEngine.invalidate`) and
  implicitly whenever the catalog mutates or the spec is swapped.
  Invalidation is **dependency-aware**: the store versions each metadata
  domain separately (:mod:`repro.catalog.domains`) and endpoints declare
  the domains they read, so a usage event only drops results of
  endpoints that depend on usage.  Endpoints with no declaration fall
  back to invalidate-on-any-write — never less correct than the old
  monolithic counter, just slower;
* **request-scoped memoisation** — :meth:`ExecutionEngine.scope` opens a
  memo so one logical operation (a search, an overview generation) never
  re-invokes an endpoint for the same key, even with the cache disabled;
* **parallel fan-out** — :meth:`ExecutionEngine.execute_many` executes
  independent fetches on a thread pool with deterministic, input-ordered
  results and per-call fault containment;
* **resilience** — per-endpoint **circuit breakers** (closed → open →
  half-open) stop hammering a persistently failing endpoint, request
  **deadline budgets** skip fetches a caller can no longer afford, and
  **stale-while-revalidate** lets an open breaker or exhausted deadline
  serve an expired cache entry, explicitly marked stale (see
  ``docs/resilience.md``);
* **middleware** — a retry/backoff policy (jittered, deadline-capped)
  composing with :mod:`repro.providers.faults` (transient outages and
  timeouts retry; contract violations do not) and envelope validation at
  the boundary;
* **instrumentation** — :class:`ExecutionStats`, a thin view over a
  :class:`repro.obs.MetricsRegistry`: per-endpoint call counts, latency
  percentiles, cache hits/misses, retries, errors, truncation events,
  breaker state and stale/skip counters, surfaced via
  ``DiscoveryInterface.stats``, :meth:`ExecutionEngine.health`, the
  CLI's ``--stats`` flag / ``health`` / ``metrics`` subcommands and
  Prometheus exposition.  Every hot path additionally emits
  :mod:`repro.obs` trace spans (``engine.execute`` → ``engine.fetch`` →
  ``provider.invoke``, plus batch, join and sweep spans) when a tracer
  is installed; the default no-op tracer costs nothing.

Configuration is a layered, frozen :class:`ExecutionPolicy`: global
defaults (:meth:`ExecutionPolicy.defaults`), per-deployment tweaks
(:meth:`ExecutionPolicy.replace`) and per-endpoint overrides
(:meth:`ExecutionPolicy.for_endpoint`), resolved to a flat
:class:`EndpointPolicy` per endpoint at fetch time.  Fetches uniformly
return a :class:`FetchOutcome` envelope (ok | error | stale | skipped);
:meth:`ExecutionEngine.fetch` remains as a raise-through compatibility
shim.

The registry stays pure name→callable resolution; this module is the seam
future scaling work (sharding, async backends, remote endpoints) plugs
into.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from dataclasses import replace as _dataclass_replace
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.catalog.domains import (
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_USAGE,
    DOMAINS,
    coerce_domains,
)
from repro.catalog.events import EventLog, OpaqueEventRecord
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    HumboldtError,
    ProviderError,
)
from repro.providers.base import (
    ProviderRequest,
    ProviderResult,
    RequestContext,
    ResultPatcher,
    declared_estimator,
)
from repro.providers.faults import is_transient
from repro.providers.registry import EndpointRegistry
from repro.obs.metrics import MetricsRegistry, summarize_latencies
from repro.obs.trace import NOOP_TRACER, TraceContext, Tracer

if TYPE_CHECKING:  # imported for type hints only; no runtime cycle
    from repro.catalog.store import CatalogStore
    from repro.util.clock import SimulationClock

#: A fully canonicalised fetch identity: endpoint URI, sorted inputs,
#: and the context fields that can change a provider's answer.
RequestKey = tuple[str, tuple[tuple[str, str], ...], str, str, int]


def request_key(endpoint: str, request: ProviderRequest) -> RequestKey:
    """Canonical cache key for one fetch.

    Input order is irrelevant to providers, so inputs are sorted; the
    user, team and limit all participate because providers personalise
    and cap results on them.
    """
    return (
        endpoint,
        tuple(sorted(request.inputs.items())),
        request.context.user_id,
        request.context.team_id,
        request.context.limit,
    )


def _request_from_key(key: RequestKey) -> ProviderRequest:
    """Rebuild the request a cache key canonicalises (inverse of
    :func:`request_key`; exact because the key captures every field a
    provider can read)."""
    return ProviderRequest(
        inputs=dict(key[1]),
        context=RequestContext(
            user_id=key[2], team_id=key[3], limit=key[4]
        ),
    )


#: Domains whose common mutations are monotonic (usage counters grow,
#: lineage edges and members append) and therefore delta-patchable.
#: Entities/text mutations edit payloads in place — always drop.
PATCHABLE_DOMAINS = frozenset(
    {DOMAIN_USAGE, DOMAIN_LINEAGE, DOMAIN_MEMBERSHIP}
)


# -- instrumentation --------------------------------------------------------

#: Exact latency samples retained per endpoint — the size of the latency
#: histogram's exemplar window; a rolling window bounds memory on
#: long-lived engines.
LATENCY_WINDOW = 1024

#: Per-endpoint counter fields, in the order :meth:`ExecutionStats.snapshot`
#: reports them.  Each becomes one ``engine_<field>_total{endpoint=...}``
#: counter family on the stats registry.
_COUNTER_FIELDS: tuple[tuple[str, str], ...] = (
    ("calls", "Endpoint invocations (each retry attempt is an invocation)."),
    ("errors", "Fetches that ultimately raised."),
    ("retries", "Retry attempts beyond the first invocation."),
    ("cache_hits", "Fetches answered from the result cache."),
    ("cache_misses", "Fetches that had to invoke (or join) a provider."),
    ("dedups", "In-batch duplicates of a pending miss in execute_many."),
    ("single_flights", "Cross-request joins onto an identical in-flight fetch."),
    ("truncations", "Provider results truncated to the declared limit."),
    ("invalidations", "Cache entries dropped because a depended-on domain mutated."),
    ("delta_patches", "Cache entries patched in place from write-ahead events."),
    ("delta_fallbacks", "Patch attempts that fell back to drop-and-refetch."),
    ("estimates", "Cardinality estimates served without invoking the endpoint."),
    ("fetches_skipped", "Fetches the planner proved unnecessary."),
    ("stale_served", "Expired cache entries served (breaker open / deadline spent)."),
    ("deadline_skips", "Fetches not attempted because the deadline was spent."),
    ("breaker_rejections", "Fetches rejected by an open circuit breaker."),
    ("breaker_opens", "closed->open transitions of the endpoint's breaker."),
)

#: Breaker states encoded onto the ``engine_breaker_state`` gauge.
_BREAKER_STATE_CODES = {"closed": 0.0, "open": 1.0, "half-open": 2.0}
_BREAKER_STATE_NAMES = {code: name for name, code in _BREAKER_STATE_CODES.items()}

_ZERO_LATENCY_SUMMARY = {
    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
}


@dataclass(frozen=True)
class EndpointStatsSnapshot:
    """An immutable point-in-time copy of one endpoint's counters.

    This is what :meth:`ExecutionStats.endpoint` hands out: it shares no
    state with the engine, so callers can neither race the engine's
    bookkeeping nor corrupt it by mutation.  ``latencies_ms`` is the
    latency histogram's exemplar window — the most recent
    :data:`LATENCY_WINDOW` raw samples.
    """

    calls: int = 0
    errors: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    dedups: int = 0
    single_flights: int = 0
    truncations: int = 0
    invalidations: int = 0
    delta_patches: int = 0
    delta_fallbacks: int = 0
    estimates: int = 0
    fetches_skipped: int = 0
    stale_served: int = 0
    deadline_skips: int = 0
    breaker_rejections: int = 0
    breaker_opens: int = 0
    breaker_state: str = "closed"
    latencies_ms: tuple[float, ...] = ()

    def latency_summary(self) -> dict[str, float]:
        return summarize_latencies(self.latencies_ms)


class ExecutionStats:
    """Thread-safe per-endpoint execution metrics — a thin view over a
    :class:`repro.obs.MetricsRegistry`.

    Every ``record_*`` method lands on a labelled metric family in
    :attr:`metrics`: counters ``engine_<field>_total{endpoint=...}``, the
    ``engine_invoke_latency_ms`` histogram (fixed buckets plus an exact
    exemplar window) and the ``engine_breaker_state`` gauge.  The reading
    side — the totals properties, :meth:`endpoint`, :meth:`snapshot`,
    :meth:`render` — derives everything from **one** registry collection,
    so the stats table, the health report and the Prometheus exposition
    (``self.metrics.render_prometheus()``) cannot disagree about the same
    fetches.

    ``calls`` counts actual endpoint invocations (each retry attempt is
    an invocation), so "a repeated operation performed zero duplicate
    fetches" is assertable as an unchanged ``total_calls``.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters = {
            fname: self.metrics.counter(
                f"engine_{fname}_total", ("endpoint",), help_text
            )
            for fname, help_text in _COUNTER_FIELDS
        }
        self._latency = self.metrics.histogram(
            "engine_invoke_latency_ms",
            ("endpoint",),
            "Provider invocation latency (terminal middleware timing).",
            exemplar_window=LATENCY_WINDOW,
        )
        self._breaker = self.metrics.gauge(
            "engine_breaker_state",
            ("endpoint",),
            "Circuit breaker state: 0 closed, 1 open, 2 half-open.",
        )
        self._coalesced = self.metrics.counter(
            "engine_coalesced_bumps_total",
            (),
            "Version bumps the store saved by coalescing event batches.",
        )

    # -- recording (called by the engine) ---------------------------------

    def record_call(self, endpoint: str, latency_ms: float) -> None:
        self._counters["calls"].labels(endpoint).inc()
        self._latency.labels(endpoint).observe(latency_ms)

    def record_error(self, endpoint: str) -> None:
        self._counters["errors"].labels(endpoint).inc()

    def record_retry(self, endpoint: str) -> None:
        self._counters["retries"].labels(endpoint).inc()

    def record_cache_hit(self, endpoint: str) -> None:
        self._counters["cache_hits"].labels(endpoint).inc()

    def record_cache_miss(self, endpoint: str) -> None:
        self._counters["cache_misses"].labels(endpoint).inc()

    def record_dedup(self, endpoint: str) -> None:
        self._counters["dedups"].labels(endpoint).inc()

    def record_single_flight(self, endpoint: str) -> None:
        self._counters["single_flights"].labels(endpoint).inc()

    def record_truncation(self, endpoint: str) -> None:
        self._counters["truncations"].labels(endpoint).inc()

    def record_invalidation(self, endpoint: str, dropped: int = 1) -> None:
        self._counters["invalidations"].labels(endpoint).inc(dropped)

    def record_delta_patch(self, endpoint: str) -> None:
        self._counters["delta_patches"].labels(endpoint).inc()

    def record_delta_fallback(self, endpoint: str) -> None:
        self._counters["delta_fallbacks"].labels(endpoint).inc()

    def record_coalesced_bumps(self, saved: int) -> None:
        self._coalesced.labels().inc(saved)

    def record_estimate(self, endpoint: str) -> None:
        self._counters["estimates"].labels(endpoint).inc()

    def record_fetch_skipped(self, endpoint: str, count: int = 1) -> None:
        self._counters["fetches_skipped"].labels(endpoint).inc(count)

    def record_stale_served(self, endpoint: str) -> None:
        self._counters["stale_served"].labels(endpoint).inc()

    def record_deadline_skip(self, endpoint: str) -> None:
        self._counters["deadline_skips"].labels(endpoint).inc()

    def record_breaker_rejection(self, endpoint: str) -> None:
        self._counters["breaker_rejections"].labels(endpoint).inc()

    def record_breaker_open(self, endpoint: str) -> None:
        self._counters["breaker_opens"].labels(endpoint).inc()

    def record_breaker_state(self, endpoint: str, state: str) -> None:
        self._breaker.labels(endpoint).set(_BREAKER_STATE_CODES.get(state, 0.0))

    # -- reading -----------------------------------------------------------

    def _total(self, fname: str) -> int:
        return int(self._counters[fname].total())

    @property
    def total_calls(self) -> int:
        return self._total("calls")

    @property
    def total_errors(self) -> int:
        return self._total("errors")

    @property
    def total_retries(self) -> int:
        return self._total("retries")

    @property
    def cache_hits(self) -> int:
        return self._total("cache_hits")

    @property
    def cache_misses(self) -> int:
        return self._total("cache_misses")

    @property
    def dedups(self) -> int:
        return self._total("dedups")

    @property
    def single_flights(self) -> int:
        return self._total("single_flights")

    @property
    def truncations(self) -> int:
        return self._total("truncations")

    @property
    def invalidations(self) -> int:
        return self._total("invalidations")

    @property
    def delta_patches(self) -> int:
        return self._total("delta_patches")

    @property
    def delta_fallbacks(self) -> int:
        return self._total("delta_fallbacks")

    @property
    def coalesced_bumps(self) -> int:
        return int(self._coalesced.total())

    @property
    def estimates(self) -> int:
        return self._total("estimates")

    @property
    def fetches_skipped(self) -> int:
        return self._total("fetches_skipped")

    @property
    def stale_served(self) -> int:
        return self._total("stale_served")

    @property
    def deadline_skips(self) -> int:
        return self._total("deadline_skips")

    @property
    def breaker_rejections(self) -> int:
        return self._total("breaker_rejections")

    @property
    def breaker_opens(self) -> int:
        return self._total("breaker_opens")

    @property
    def cache_hit_rate(self) -> float:
        hits, misses = self.cache_hits, self.cache_misses
        return hits / (hits + misses) if hits + misses else 0.0

    def endpoint(self, uri: str) -> EndpointStatsSnapshot:
        """Counters for one endpoint (zeros if never fetched).

        Built from a single registry collection, so every field of the
        snapshot describes the same instant.
        """
        collected = self.metrics.collect()
        key = (uri,)
        values = {
            fname: int(collected[f"engine_{fname}_total"]["series"].get(key, 0))
            for fname, _ in _COUNTER_FIELDS
        }
        hist = collected["engine_invoke_latency_ms"]["series"].get(key)
        state = collected["engine_breaker_state"]["series"].get(key, 0.0)
        return EndpointStatsSnapshot(
            breaker_state=_BREAKER_STATE_NAMES.get(state, "closed"),
            latencies_ms=tuple(hist["samples"]) if hist else (),
            **values,
        )

    def snapshot(self) -> dict:
        """A JSON-friendly copy of every counter.

        Totals and per-endpoint rows come from one registry collection —
        the stats table and the health report derive from the same cut,
        so their columns cannot disagree mid-update under concurrency.
        """
        collected = self.metrics.collect()
        uris: set[str] = set()
        for fname, _ in _COUNTER_FIELDS:
            uris.update(k[0] for k in collected[f"engine_{fname}_total"]["series"])
        uris.update(k[0] for k in collected["engine_invoke_latency_ms"]["series"])
        endpoints: dict[str, dict] = {}
        for uri in sorted(uris):
            key = (uri,)
            entry: dict = {
                fname: int(collected[f"engine_{fname}_total"]["series"].get(key, 0))
                for fname, _ in _COUNTER_FIELDS
            }
            state = collected["engine_breaker_state"]["series"].get(key, 0.0)
            entry["breaker_state"] = _BREAKER_STATE_NAMES.get(state, "closed")
            hist = collected["engine_invoke_latency_ms"]["series"].get(key)
            entry["latency_ms"] = (
                dict(hist["summary"]) if hist else dict(_ZERO_LATENCY_SUMMARY)
            )
            endpoints[uri] = entry
        totals = {
            fname: sum(e[fname] for e in endpoints.values())
            for fname, _ in _COUNTER_FIELDS
        }
        totals["coalesced_bumps"] = int(
            collected["engine_coalesced_bumps_total"]["series"].get((), 0)
        )
        return {"totals": totals, "endpoints": endpoints}

    def render(self) -> str:
        """Plain-text stats table for the CLI's ``--stats`` flag."""
        snap = self.snapshot()
        lines = [
            f"{'endpoint':<32}{'calls':>6}{'hits':>6}{'miss':>6}{'dedup':>6}"
            f"{'sflt':>6}"
            f"{'err':>5}{'retry':>6}{'trunc':>6}{'inval':>6}"
            f"{'patch':>6}{'dfall':>6}"
            f"{'est':>5}{'skip':>6}"
            f"{'stale':>6}{'dskip':>6}{'brej':>5}"
            f"{'p50 ms':>8}{'p95 ms':>8}"
        ]
        for uri, s in snap["endpoints"].items():
            lat = s["latency_ms"]
            lines.append(
                f"{uri:<32}{s['calls']:>6}{s['cache_hits']:>6}"
                f"{s['cache_misses']:>6}{s['dedups']:>6}"
                f"{s['single_flights']:>6}"
                f"{s['errors']:>5}{s['retries']:>6}"
                f"{s['truncations']:>6}{s['invalidations']:>6}"
                f"{s['delta_patches']:>6}{s['delta_fallbacks']:>6}"
                f"{s['estimates']:>5}{s['fetches_skipped']:>6}"
                f"{s['stale_served']:>6}{s['deadline_skips']:>6}"
                f"{s['breaker_rejections']:>5}"
                f"{lat['p50']:>8.2f}{lat['p95']:>8.2f}"
            )
        t = snap["totals"]
        lines.append(
            f"{'TOTAL':<32}{t['calls']:>6}{t['cache_hits']:>6}"
            f"{t['cache_misses']:>6}{t['dedups']:>6}"
            f"{t['single_flights']:>6}"
            f"{t['errors']:>5}{t['retries']:>6}"
            f"{t['truncations']:>6}{t['invalidations']:>6}"
            f"{t['delta_patches']:>6}{t['delta_fallbacks']:>6}"
            f"{t['estimates']:>5}{t['fetches_skipped']:>6}"
            f"{t['stale_served']:>6}{t['deadline_skips']:>6}"
            f"{t['breaker_rejections']:>5}"
        )
        lines.append(f"coalesced version bumps: {t['coalesced_bumps']}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.metrics.reset()


# -- policy ------------------------------------------------------------------

#: The continuation a middleware wraps: the rest of the stack.
CallNext = Callable[[str, ProviderRequest], ProviderResult]
#: A middleware: observe/transform a call, then delegate to ``call_next``.
Middleware = Callable[[str, ProviderRequest, CallNext], ProviderResult]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff knobs of the retry middleware."""

    #: Total invocation attempts per fetch (1 = no retries).
    attempts: int = 1
    #: First retry delay; multiplied per subsequent attempt.
    backoff_base_ms: float = 25.0
    backoff_multiplier: float = 2.0
    #: Fractional jitter applied to each delay: a delay *d* becomes
    #: ``d * (1 ± backoff_jitter)``, deterministically per (endpoint,
    #: attempt) so tests stay reproducible.  0 disables jitter.
    backoff_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")


@dataclass(frozen=True)
class CachePolicy:
    """Result-cache knobs, including stale-while-revalidate grace."""

    #: Freshness time-to-live in seconds; 0 disables caching.
    ttl_s: float = 300.0
    max_entries: int = 2048
    #: Whether an open breaker / exhausted deadline may serve an expired
    #: entry (explicitly marked stale) instead of failing outright.
    serve_stale: bool = True
    #: How long past its TTL an entry stays servable as stale.
    stale_grace_s: float = 900.0


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-endpoint circuit-breaker knobs."""

    enabled: bool = True
    #: Consecutive fetch failures (post-retry) that trip the breaker.
    failure_threshold: int = 5
    #: Seconds an open breaker waits before allowing half-open probes.
    reset_timeout_s: float = 30.0
    #: Concurrent probe fetches allowed while half-open.
    half_open_max_calls: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.half_open_max_calls < 1:
            raise ValueError("half_open_max_calls must be >= 1")


@dataclass(frozen=True)
class DeadlinePolicy:
    """Default request-deadline knobs (engine-wide, not per endpoint)."""

    #: Budget handed to :meth:`ExecutionEngine.deadline` when the caller
    #: names none; 0 means "no deadline".
    default_budget_ms: float = 0.0


@dataclass(frozen=True)
class EndpointPolicy:
    """The flat, fully-resolved policy one fetch runs under.

    Produced by :meth:`ExecutionPolicy.effective`; engines memoise one
    per endpoint.  Only per-endpoint-overridable knobs appear here —
    engine-wide settings (``max_workers``, ``cache.max_entries``, the
    default deadline budget) stay on :class:`ExecutionPolicy`.
    """

    attempts: int = 1
    backoff_base_ms: float = 25.0
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.0
    cache_ttl_s: float = 300.0
    serve_stale: bool = True
    stale_grace_s: float = 900.0
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 5
    breaker_reset_timeout_s: float = 30.0
    breaker_half_open_max_calls: int = 1


#: Legacy flat knob -> (policy group, field) for the compatibility shim
#: and for :meth:`ExecutionPolicy.replace`'s flat spelling.
_FLAT_KNOBS: dict[str, tuple[str, str]] = {
    "attempts": ("retry", "attempts"),
    "backoff_base_ms": ("retry", "backoff_base_ms"),
    "backoff_multiplier": ("retry", "backoff_multiplier"),
    "backoff_jitter": ("retry", "backoff_jitter"),
    "cache_ttl_s": ("cache", "ttl_s"),
    "cache_max_entries": ("cache", "max_entries"),
    "serve_stale": ("cache", "serve_stale"),
    "stale_grace_s": ("cache", "stale_grace_s"),
    "breaker_enabled": ("breaker", "enabled"),
    "breaker_failure_threshold": ("breaker", "failure_threshold"),
    "breaker_reset_timeout_s": ("breaker", "reset_timeout_s"),
    "breaker_half_open_max_calls": ("breaker", "half_open_max_calls"),
    "deadline_budget_ms": ("deadline", "default_budget_ms"),
}

#: Knobs that may differ per endpoint (the fields of EndpointPolicy).
_ENDPOINT_KNOBS: frozenset[str] = frozenset(
    {
        "attempts",
        "backoff_base_ms",
        "backoff_multiplier",
        "backoff_jitter",
        "cache_ttl_s",
        "serve_stale",
        "stale_grace_s",
        "breaker_enabled",
        "breaker_failure_threshold",
        "breaker_reset_timeout_s",
        "breaker_half_open_max_calls",
    }
)

#: Frozen per-endpoint overrides: (endpoint, ((knob, value), ...)) pairs,
#: sorted for stable equality/hashing.
OverrideMap = tuple[tuple[str, tuple[tuple[str, object], ...]], ...]


def _freeze_overrides(
    overrides: "OverrideMap | dict[str, dict[str, object]]",
) -> OverrideMap:
    if isinstance(overrides, dict):
        items = ((name, tuple(sorted(ov.items()))) for name, ov in overrides.items())
    else:
        items = ((name, tuple(sorted(dict(ov).items()))) for name, ov in overrides)
    return tuple(sorted((name, ov) for name, ov in items if ov))


@dataclass(frozen=True, init=False)
class ExecutionPolicy:
    """Layered, immutable engine configuration.

    The canonical shape is four frozen policy groups plus engine-wide
    settings::

        policy = ExecutionPolicy.defaults()
        policy = policy.replace(attempts=3, cache_ttl_s=60.0)
        policy = policy.for_endpoint("catalog://lineage",
                                     breaker_failure_threshold=2)
        flat = policy.effective("catalog://lineage")  # -> EndpointPolicy

    ``replace`` accepts whole groups (``retry=RetryPolicy(...)``) or the
    flat knob spellings of :data:`_FLAT_KNOBS`; ``for_endpoint`` layers
    per-endpoint overrides on top of the globals.  Every method returns a
    new policy — instances are frozen and safely shareable.

    **Removed:** the pre-redesign flat constructor
    (``ExecutionPolicy(attempts=3, cache_ttl_s=0)``) — deprecated with a
    warning through the redesign window — now raises ``TypeError`` with
    a migration hint.  Spell it
    ``ExecutionPolicy.defaults().replace(attempts=3, cache_ttl_s=0)``.
    """

    retry: RetryPolicy
    cache: CachePolicy
    breaker: BreakerPolicy
    deadline: DeadlinePolicy
    #: Thread-pool width for :meth:`ExecutionEngine.execute_many`;
    #: 1 degrades to serial execution.
    max_workers: int
    overrides: OverrideMap

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        cache: CachePolicy | None = None,
        breaker: BreakerPolicy | None = None,
        deadline: DeadlinePolicy | None = None,
        max_workers: int = 8,
        overrides: "OverrideMap | dict[str, dict[str, object]]" = (),
        **flat: object,
    ):
        if flat:
            unknown = sorted(set(flat) - set(_FLAT_KNOBS))
            if unknown:
                raise TypeError(
                    "unknown ExecutionPolicy knob(s): " + ", ".join(unknown)
                )
            # The legacy flat-constructor shim (deprecated through the
            # policy-redesign window) is gone; fail with the migration.
            raise TypeError(
                "flat ExecutionPolicy(...) kwargs were removed; use "
                "ExecutionPolicy.defaults().replace("
                + ", ".join(f"{k}=..." for k in sorted(flat))
                + ")"
            )
        groups: dict[str, object] = {
            "retry": retry if retry is not None else RetryPolicy(),
            "cache": cache if cache is not None else CachePolicy(),
            "breaker": breaker if breaker is not None else BreakerPolicy(),
            "deadline": deadline if deadline is not None else DeadlinePolicy(),
        }
        object.__setattr__(self, "retry", groups["retry"])
        object.__setattr__(self, "cache", groups["cache"])
        object.__setattr__(self, "breaker", groups["breaker"])
        object.__setattr__(self, "deadline", groups["deadline"])
        object.__setattr__(self, "max_workers", int(max_workers))
        object.__setattr__(self, "overrides", _freeze_overrides(overrides))

    # -- construction ------------------------------------------------------

    @classmethod
    def defaults(cls) -> "ExecutionPolicy":
        """The frozen global defaults (one shared instance)."""
        global _DEFAULT_POLICY
        if _DEFAULT_POLICY is None:
            _DEFAULT_POLICY = cls()
        return _DEFAULT_POLICY

    def replace(self, **changes: object) -> "ExecutionPolicy":
        """A copy with *changes* applied.

        Accepts whole groups (``retry=``, ``cache=``, ``breaker=``,
        ``deadline=``), engine-wide settings (``max_workers=``,
        ``overrides=``), or any flat knob from :data:`_FLAT_KNOBS`
        (``attempts=3``, ``cache_ttl_s=0`` …) — the layered spelling of
        the deprecated flat constructor.
        """
        groups: dict[str, object] = {
            "retry": self.retry,
            "cache": self.cache,
            "breaker": self.breaker,
            "deadline": self.deadline,
        }
        max_workers = changes.pop("max_workers", self.max_workers)
        overrides = changes.pop("overrides", self.overrides)
        for group_name in tuple(groups):
            if group_name in changes:
                groups[group_name] = changes.pop(group_name)
        by_group: dict[str, dict[str, object]] = {}
        for knob, value in changes.items():
            if knob not in _FLAT_KNOBS:
                raise TypeError(f"unknown policy knob {knob!r}")
            group_name, field_name = _FLAT_KNOBS[knob]
            by_group.setdefault(group_name, {})[field_name] = value
        for group_name, kwargs in by_group.items():
            groups[group_name] = _dataclass_replace(groups[group_name], **kwargs)
        return ExecutionPolicy(
            retry=groups["retry"],
            cache=groups["cache"],
            breaker=groups["breaker"],
            deadline=groups["deadline"],
            max_workers=max_workers,
            overrides=overrides,
        )

    def for_endpoint(self, endpoint: str, **knobs: object) -> "ExecutionPolicy":
        """A copy with per-endpoint *knobs* layered over the globals.

        Repeated calls for the same endpoint merge (later wins per knob).
        Only the flat knobs of :class:`EndpointPolicy` may vary per
        endpoint; engine-wide settings raise ``TypeError``.
        """
        if not knobs:
            return self
        for knob in knobs:
            if knob not in _ENDPOINT_KNOBS:
                if knob in _FLAT_KNOBS or knob == "max_workers":
                    raise TypeError(
                        f"policy knob {knob!r} is engine-wide and cannot "
                        "be overridden per endpoint"
                    )
                raise TypeError(f"unknown policy knob {knob!r}")
        current = {name: dict(pairs) for name, pairs in self.overrides}
        merged = current.get(endpoint, {})
        merged.update(knobs)
        current[endpoint] = merged
        return ExecutionPolicy(
            retry=self.retry,
            cache=self.cache,
            breaker=self.breaker,
            deadline=self.deadline,
            max_workers=self.max_workers,
            overrides=current,
        )

    def endpoint_overrides(self, endpoint: str) -> dict[str, object]:
        """The raw per-endpoint override mapping (empty if none)."""
        for name, pairs in self.overrides:
            if name == endpoint:
                return dict(pairs)
        return {}

    def effective(self, endpoint: str) -> EndpointPolicy:
        """The flat resolved policy *endpoint*'s fetches run under."""
        knobs: dict[str, object] = {
            "attempts": self.retry.attempts,
            "backoff_base_ms": self.retry.backoff_base_ms,
            "backoff_multiplier": self.retry.backoff_multiplier,
            "backoff_jitter": self.retry.backoff_jitter,
            "cache_ttl_s": self.cache.ttl_s,
            "serve_stale": self.cache.serve_stale,
            "stale_grace_s": self.cache.stale_grace_s,
            "breaker_enabled": self.breaker.enabled,
            "breaker_failure_threshold": self.breaker.failure_threshold,
            "breaker_reset_timeout_s": self.breaker.reset_timeout_s,
            "breaker_half_open_max_calls": self.breaker.half_open_max_calls,
        }
        knobs.update(self.endpoint_overrides(endpoint))
        return EndpointPolicy(**knobs)

    # -- legacy read-through properties ------------------------------------

    @property
    def attempts(self) -> int:
        """Read-through to ``retry.attempts`` (pre-layering spelling)."""
        return self.retry.attempts

    @property
    def backoff_base_ms(self) -> float:
        """Read-through to ``retry.backoff_base_ms``."""
        return self.retry.backoff_base_ms

    @property
    def backoff_multiplier(self) -> float:
        """Read-through to ``retry.backoff_multiplier``."""
        return self.retry.backoff_multiplier

    @property
    def cache_ttl_s(self) -> float:
        """Read-through to ``cache.ttl_s``."""
        return self.cache.ttl_s

    @property
    def cache_max_entries(self) -> int:
        """Read-through to ``cache.max_entries``."""
        return self.cache.max_entries


_DEFAULT_POLICY: "ExecutionPolicy | None" = None


def _jitter_fraction(endpoint: str, attempt: int) -> float:
    """Deterministic pseudo-random fraction in [-1, 1).

    Keyed on (endpoint, attempt) via CRC32 — Python's ``hash()`` of
    strings is randomised per process and would make retry schedules
    unreproducible across runs.
    """
    seed = zlib.crc32(f"{endpoint}#{attempt}".encode("utf-8"))
    return (seed / 0xFFFFFFFF) * 2.0 - 1.0


# -- outcomes, health, deadlines ---------------------------------------------


class FetchStatus(Enum):
    """How a fetch concluded — the four arms of a :class:`FetchOutcome`."""

    #: A fresh result: live fetch or unexpired cache entry.
    OK = "ok"
    #: The endpoint was invoked and failed (post-retry).
    ERROR = "error"
    #: An expired cache entry served under an open breaker or exhausted
    #: deadline; the result is usable but explicitly degraded.
    STALE = "stale"
    #: The fetch was never attempted (open breaker / spent deadline) and
    #: no stale fallback existed.
    SKIPPED = "skipped"


@dataclass(frozen=True)
class ProviderHealth:
    """One provider's condition within a degraded operation."""

    provider: str
    endpoint: str
    status: str  # a FetchStatus value: "ok" | "error" | "stale" | "skipped"
    detail: str = ""

    @property
    def degraded(self) -> bool:
        return self.status != FetchStatus.OK.value


@dataclass(frozen=True)
class FetchOutcome:
    """The uniform envelope every engine fetch returns.

    Exactly one of ``result``/``error`` carries the payload for ``ok``
    and ``error`` outcomes; ``stale`` outcomes carry a result *and* a
    reason, ``skipped`` outcomes carry the error that would have been
    raised (:class:`~repro.errors.CircuitOpenError` or
    :class:`~repro.errors.DeadlineExceededError`).  ``status`` is
    inferred from ``result``/``error`` when not given, which keeps the
    historical two-field construction working.
    """

    endpoint: str
    result: ProviderResult | None = None
    error: HumboldtError | None = None
    status: FetchStatus | None = None
    #: Human-readable degradation note ("circuit open; serving cached
    #: result 320s past TTL"); empty for fresh outcomes.
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status is None:
            inferred = (
                FetchStatus.ERROR if self.error is not None else FetchStatus.OK
            )
            object.__setattr__(self, "status", inferred)

    @property
    def ok(self) -> bool:
        """Whether a usable result is present (fresh **or** stale)."""
        return self.error is None

    @property
    def fresh(self) -> bool:
        return self.status is FetchStatus.OK

    @property
    def stale(self) -> bool:
        return self.status is FetchStatus.STALE

    @property
    def skipped(self) -> bool:
        return self.status is FetchStatus.SKIPPED

    @property
    def degraded(self) -> bool:
        """True when the outcome is anything but a fresh success."""
        return self.status is not FetchStatus.OK

    def health_marker(self, provider: str = "") -> ProviderHealth:
        """This outcome as a :class:`ProviderHealth` marker."""
        detail = self.reason or (str(self.error) if self.error else "")
        return ProviderHealth(
            provider=provider or self.endpoint,
            endpoint=self.endpoint,
            status=self.status.value,
            detail=detail,
        )


@dataclass(frozen=True)
class Deadline:
    """A request-level budget in the engine's timer coordinates.

    Created by :meth:`ExecutionEngine.deadline` and threaded through
    evaluator/discovery/exploration fan-outs; once spent, remaining
    fetches are skipped (or served stale), not attempted.
    """

    expires_at: float
    budget_ms: float = 0.0

    def remaining_ms(self, now: float) -> float:
        return max(0.0, (self.expires_at - now) * 1000.0)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One endpoint's closed → open → half-open state machine.

    Not self-locking: the engine mutates it under its own lock.  Time is
    whatever the engine's timer says, so simulation-clock engines test
    every transition without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int,
        reset_timeout_s: float,
        half_open_max_calls: int = 1,
    ):
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_calls = half_open_max_calls
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probes_inflight = 0

    def allow(self, now: float) -> bool:
        """Whether a fetch may proceed; transitions open → half-open."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at < self.reset_timeout_s:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probes_inflight = 0
        if self._probes_inflight >= self.half_open_max_calls:
            return False
        self._probes_inflight += 1
        return True

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip(now)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip(now)

    def retry_after_s(self, now: float) -> float:
        """Seconds until an open breaker admits a probe (0 if not open)."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self.reset_timeout_s - (now - self.opened_at))

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.consecutive_failures = max(
            self.consecutive_failures, self.failure_threshold
        )


#: A cache slot: (fresh_until, stale_until, result).  Entries past
#: ``fresh_until`` but within ``stale_until`` are only servable through
#: the stale-while-revalidate path, explicitly marked.
_CacheEntry = tuple[float, float, ProviderResult]


class _InflightFetch:
    """One in-progress fetch other threads may join (single-flight).

    The first thread to miss on a request key becomes the *leader* and
    runs the fetch; concurrent threads missing on the same key become
    *waiters*, blocking on :attr:`done` and sharing the leader's outcome
    instead of re-invoking the provider.
    """

    __slots__ = ("done", "outcome", "leader_span_id")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.outcome: FetchOutcome | None = None
        #: The leader's ``engine.fetch`` span id (set when tracing is on)
        #: — waiter spans link to it, tying a join to the one provider
        #: invocation that actually did the work.
        self.leader_span_id: str | None = None


class ExecutionEngine:
    """Cached, parallel, instrumented, resilient execution of fetches.

    Thread-safety contract: one engine is safe to share across request
    threads and tenants.  The cache, breakers, stats, in-flight table and
    resolved-policy memos are guarded by the engine lock; request-scoped
    state (:meth:`scope` memos, active deadlines) is per-thread and
    explicitly handed to pool workers by :meth:`execute_many`.  See
    ``docs/load_testing.md`` for the full contract.
    """

    def __init__(
        self,
        registry: EndpointRegistry,
        store: "CatalogStore | None" = None,
        policy: ExecutionPolicy | None = None,
        middlewares: Sequence[Middleware] = (),
        timer: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
        clock: "SimulationClock | None" = None,
        single_flight: bool = True,
        tracer: "Tracer | None" = None,
    ):
        self.registry = registry
        self.store = store
        if clock is not None:
            # A simulation-clock engine: time only moves when something
            # sleeps, so TTLs, breakers and deadlines are deterministic.
            timer = clock.now
            sleep = lambda seconds: clock.advance(seconds=seconds)  # noqa: E731
        self.stats = ExecutionStats()
        #: The span source for every instrumented path.  The default is
        #: the shared no-op tracer (falsy spans, no allocation); assign a
        #: real :class:`repro.obs.Tracer` — or call
        #: :meth:`enable_tracing` — to turn tracing on.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._timer = timer
        self._sleep = sleep
        self._lock = threading.RLock()
        self._endpoint_policies: dict[tuple[str, str], EndpointPolicy] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._policy = policy if policy is not None else ExecutionPolicy.defaults()
        #: Per-tenant policy overlays (tenant id -> ExecutionPolicy); a
        #: tenant's fetches resolve retry/cache knobs from its own policy
        #: without touching the shared engine policy or other tenants.
        self._tenant_policies: dict[str, ExecutionPolicy] = {}
        #: Identical-fetch coalescing across requests/threads: request
        #: key -> the in-flight fetch concurrent callers join.
        self._single_flight = bool(single_flight)
        self._inflight: dict[RequestKey, _InflightFetch] = {}
        self._cache: OrderedDict[RequestKey, _CacheEntry] = OrderedDict()
        self._seen_store_version = store.version if store is not None else -1
        self._seen_registry_version = registry.version
        # Per-domain counters seen at the last sweep; None when the store
        # predates domain versioning (duck-typed), forcing full flushes.
        versions = getattr(store, "domain_versions", None)
        self._seen_domain_versions: dict[str, int] | None = (
            dict(versions) if isinstance(versions, dict) else None
        )
        # Write-ahead log cursor: each invalidation sweep drains the
        # store's event records from here so patchable mutations *update*
        # cached results instead of dropping them (docs/write_path.md).
        events = getattr(store, "events", None)
        self._seen_event_offset = (
            events.offset if isinstance(events, EventLog) else 0
        )
        coalesced = getattr(store, "coalesced_bumps", 0)
        self._seen_coalesced_bumps = (
            coalesced if isinstance(coalesced, int) else 0
        )
        # Spec-declared dependencies overlaid per endpoint URI; unioned
        # with registry-declared dependencies by :meth:`dependencies_for`.
        # Each entry is stamped with the endpoint's registration
        # generation at declaration time, so re-registering the endpoint
        # (possibly with a callable declaring nothing) retires the stale
        # overlay instead of silently narrowing invalidation.
        self._dependency_overlay: dict[str, tuple[int, frozenset[str]]] = {}
        self._memos = threading.local()
        self._ambient = threading.local()
        self._pool: ThreadPoolExecutor | None = None
        #: max_workers the live pool was built with; a policy swap that
        #: changes the width retires the stale-sized pool (see the
        #: ``policy`` setter).
        self._pool_workers = 0
        # Innermost first: validation sits at the boundary, retries wrap
        # it (so a transient failure re-enters validation too), and
        # caller-supplied middlewares observe the whole stack.
        chain: CallNext = self._invoke
        chain = self._wrap(_validation_middleware, chain)
        chain = self._wrap(self._retry_middleware, chain)
        for middleware in reversed(tuple(middlewares)):
            chain = self._wrap(middleware, chain)
        self._chain = chain

    # -- tracing -------------------------------------------------------------

    def enable_tracing(self, *exporters: object) -> Tracer:
        """Build and install a :class:`repro.obs.Tracer` on this engine.

        The tracer runs on the engine's own injectable timer, so a
        simulation-clock engine produces exact simulated-time spans.
        Returns the tracer (callers usually also hand it a ring buffer:
        ``tracer = engine.enable_tracing(RingBufferExporter())``).
        """
        tracer = Tracer(timer=self._timer, exporters=tuple(exporters))
        self.tracer = tracer
        return tracer

    # -- policy ------------------------------------------------------------

    @property
    def policy(self) -> ExecutionPolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: ExecutionPolicy) -> None:
        """Swap the policy, dropping resolved-per-endpoint state.

        Breakers reset too — their thresholds/timeouts were resolved from
        the old policy, and carrying tripped state across a reconfigure
        would surprise more than it protects.  In-flight fetches finish
        under the old policy and their breaker records are discarded (the
        breaker they gated through no longer exists; see
        :meth:`_breaker_record`).  A swap that changes ``max_workers``
        retires the lazily-built thread pool so the next fan-out builds
        one at the new width instead of silently keeping the stale size.
        """
        with self._lock:
            stale_pool = None
            if (
                self._pool is not None
                and policy.max_workers != self._pool_workers
            ):
                stale_pool, self._pool = self._pool, None
            self._policy = policy
            self._endpoint_policies.clear()
            self._breakers.clear()
        if stale_pool is not None:
            # Outside the lock: running fan-outs keep their submitted
            # futures; only new submissions move to the resized pool.
            stale_pool.shutdown(wait=False)

    # -- per-tenant policies -------------------------------------------------

    def set_tenant_policy(self, tenant_id: str, policy: ExecutionPolicy) -> None:
        """Give *tenant_id*'s fetches their own policy overlay.

        A fetch belongs to a tenant via its request context's ``team_id``
        (which also participates in the request key, so tenants never
        share cache entries whose answers could differ).  The overlay
        governs retry/backoff and cache knobs; **circuit breakers stay
        engine-wide** — endpoint health is a property of the provider,
        not of who asked — so breaker knobs in a tenant policy are
        ignored.  Setting an overlay never perturbs other tenants or the
        shared engine policy.
        """
        if not tenant_id:
            raise ValueError("tenant_id must be non-empty")
        with self._lock:
            self._tenant_policies[tenant_id] = policy
            self._drop_tenant_resolutions(tenant_id)

    def clear_tenant_policy(self, tenant_id: str) -> None:
        """Remove *tenant_id*'s overlay; its fetches rejoin the shared policy."""
        with self._lock:
            self._tenant_policies.pop(tenant_id, None)
            self._drop_tenant_resolutions(tenant_id)

    def tenant_policy(self, tenant_id: str) -> ExecutionPolicy:
        """The policy *tenant_id*'s fetches run under (shared if no overlay)."""
        with self._lock:
            return self._tenant_policies.get(tenant_id, self._policy)

    def _drop_tenant_resolutions(self, tenant_id: str) -> None:
        """Forget resolved EndpointPolicy memos for one tenant (lock held)."""
        for memo_key in [
            k for k in self._endpoint_policies if k[0] == tenant_id
        ]:
            del self._endpoint_policies[memo_key]

    def _policy_for(self, endpoint: str, tenant: str = "") -> EndpointPolicy:
        if tenant and tenant not in self._tenant_policies:
            tenant = ""  # no overlay: share the engine-wide resolution
        memo_key = (tenant, endpoint)
        resolved = self._endpoint_policies.get(memo_key)
        if resolved is None:
            with self._lock:
                resolved = self._endpoint_policies.get(memo_key)
                if resolved is None:
                    policy = self._tenant_policies.get(tenant, self._policy)
                    resolved = policy.effective(endpoint)
                    self._endpoint_policies[memo_key] = resolved
        return resolved

    # -- deadlines ---------------------------------------------------------

    def deadline(self, budget_ms: float | None = None) -> Deadline | None:
        """A :class:`Deadline` starting now, or None for "no budget".

        Falls back to the policy's ``deadline.default_budget_ms`` when
        the caller names no budget; 0 or negative means unbounded.
        """
        if budget_ms is None:
            budget_ms = self._policy.deadline.default_budget_ms
        if budget_ms is None or budget_ms <= 0:
            return None
        return Deadline(
            expires_at=self._timer() + budget_ms / 1000.0, budget_ms=budget_ms
        )

    def _deadline_stack(self) -> list:
        stack = getattr(self._ambient, "deadlines", None)
        if stack is None:
            stack = self._ambient.deadlines = []
        return stack

    def _current_deadline(self) -> Deadline | None:
        stack = getattr(self._ambient, "deadlines", None)
        return stack[-1] if stack else None

    # -- the public fetch API ----------------------------------------------

    def execute(
        self,
        endpoint: str,
        request: ProviderRequest,
        deadline: Deadline | None = None,
    ) -> FetchOutcome:
        """One fetch through cache, breaker, deadline and middleware.

        Never raises for provider failures — every arm of the resilience
        layer maps to a :class:`FetchOutcome` status:

        * fresh cache hit or successful invocation → ``ok``;
        * invocation failed post-retry → ``error`` (breaker notified);
        * breaker open / deadline spent, expired-but-in-grace cache entry
          available → ``stale``;
        * breaker open / deadline spent, no fallback → ``skipped``.
        """
        tracer = self.tracer
        key = request_key(endpoint, request)
        if not tracer.enabled:
            # Untraced fast path: the cache-hit case is the hottest line
            # in the engine and pays nothing for observability here.
            cached = self._lookup(key)
            if cached is not None:
                self.stats.record_cache_hit(endpoint)
                return FetchOutcome(endpoint, result=cached)
            self.stats.record_cache_miss(endpoint)
            return self._run_guarded(endpoint, request, key, deadline)
        with tracer.span("engine.execute") as sp:
            sp.set("endpoint", endpoint)
            cached = self._lookup(key)
            if cached is not None:
                self.stats.record_cache_hit(endpoint)
                sp.set("cache", "hit")
                return FetchOutcome(endpoint, result=cached)
            self.stats.record_cache_miss(endpoint)
            sp.set("cache", "miss")
            outcome = self._run_guarded(endpoint, request, key, deadline)
            sp.set("outcome", outcome.status.value)
            return outcome

    def execute_many(
        self,
        calls: Sequence[tuple[str, ProviderRequest]],
        deadline: Deadline | None = None,
    ) -> list[FetchOutcome]:
        """Execute *calls* concurrently; outcomes align with the input.

        Duplicate request keys within the batch are fetched once.  Each
        failing call yields a :class:`FetchOutcome` carrying its error —
        one broken endpoint never poisons its neighbours (§6.1 fault
        containment, now in one place instead of per call site).  A
        *deadline* applies per call: fetches starting after it expires
        are skipped (or served stale), not attempted.
        """
        tracer = self.tracer
        with tracer.span("engine.execute_many") as batch_sp:
            keys = [request_key(endpoint, request) for endpoint, request in calls]
            outcomes: dict[RequestKey, FetchOutcome] = {}
            hit_keys: set[RequestKey] = set()
            pending: list[tuple[RequestKey, str, ProviderRequest]] = []
            for key, (endpoint, request) in zip(keys, calls):
                if key in outcomes:
                    # A duplicate of a key already answered by the cache is
                    # another hit; a duplicate of a pending miss shares that
                    # miss's single execution — counting it as a hit inflated
                    # cache_hit_rate, so it gets its own counter.
                    if key in hit_keys:
                        self.stats.record_cache_hit(endpoint)
                    else:
                        self.stats.record_dedup(endpoint)
                    continue
                cached = self._lookup(key)
                if cached is not None:
                    self.stats.record_cache_hit(endpoint)
                    hit_keys.add(key)
                    outcomes[key] = FetchOutcome(endpoint, result=cached)
                else:
                    self.stats.record_cache_miss(endpoint)
                    outcomes[key] = FetchOutcome(endpoint)  # placeholder
                    pending.append((key, endpoint, request))

            # The caller's request-scoped memo (if a scope is open) travels
            # with the submitted work: pool workers push it onto their own
            # thread-local stack so parallel And/Or branches see — and feed —
            # the same memo the serial path would.  The trace context rides
            # along identically, so worker-side spans parent under this
            # batch instead of rooting orphan traces.
            caller_stack = self._memo_stack()
            scope_memo = caller_stack[-1] if caller_stack else None
            caller_ctx = tracer.context() if tracer.enabled else None

            def run_one(
                key: RequestKey, endpoint: str, request: ProviderRequest
            ) -> FetchOutcome:
                with tracer.attach(caller_ctx):
                    if scope_memo is None:
                        return self._run_guarded(endpoint, request, key, deadline)
                    stack = self._memo_stack()
                    stack.append(scope_memo)
                    try:
                        return self._run_guarded(endpoint, request, key, deadline)
                    finally:
                        stack.pop()

            # Misses whose key is already in flight on another thread are not
            # submitted to the pool: a submitted waiter would occupy a scarce
            # pool slot doing nothing but waiting on the leader's event, so
            # under a saturated pool a thundering herd of identical fan-outs
            # used to queue *behind itself*.  Joining from this thread leaves
            # every slot for fetches that actually invoke a provider.
            to_join: list[
                tuple[RequestKey, str, ProviderRequest, _InflightFetch]
            ] = []
            to_run = pending
            if self._single_flight and pending:
                leading = self._leading_keys()
                to_run = []
                with self._lock:
                    for key, endpoint, request in pending:
                        flight = self._inflight.get(key)
                        if flight is not None and key not in leading:
                            to_join.append((key, endpoint, request, flight))
                        else:
                            to_run.append((key, endpoint, request))

            if len(to_run) > 1 and self._policy.max_workers > 1:
                futures = [
                    self._executor().submit(run_one, key, endpoint, request)
                    for key, endpoint, request in to_run
                ]
                for key, endpoint, request, flight in to_join:
                    outcomes[key] = self._await_flight(
                        endpoint, request, key, flight, deadline
                    )
                finished = [future.result() for future in futures]
            else:
                for key, endpoint, request, flight in to_join:
                    outcomes[key] = self._await_flight(
                        endpoint, request, key, flight, deadline
                    )
                finished = [
                    run_one(key, endpoint, request)
                    for key, endpoint, request in to_run
                ]
            for (key, _, _), outcome in zip(to_run, finished):
                outcomes[key] = outcome
            if batch_sp:
                batch_sp.set("calls", len(calls))
                batch_sp.set("hits", len(hit_keys))
                batch_sp.set("ran", len(to_run))
                batch_sp.set("joined", len(to_join))
            return [outcomes[key] for key in keys]

    def fetch(self, endpoint: str, request: ProviderRequest) -> ProviderResult:
        """**Deprecated** raise-through shim over :meth:`execute`.

        Pre-redesign call sites expect a bare :class:`ProviderResult` and
        a raised :class:`~repro.errors.ProviderError` on failure; this
        preserves that contract (a ``skipped`` outcome raises its
        :class:`~repro.errors.CircuitOpenError` /
        :class:`~repro.errors.DeadlineExceededError`).  The stale-vs-ok
        distinction is lost — callers that care use :meth:`execute`.
        """
        outcome = self.execute(endpoint, request)
        if outcome.result is not None:
            return outcome.result
        raise outcome.error

    def fetch_many(
        self,
        calls: Sequence[tuple[str, ProviderRequest]],
        deadline: Deadline | None = None,
    ) -> list[FetchOutcome]:
        """Alias of :meth:`execute_many` (the pre-redesign name)."""
        return self.execute_many(calls, deadline=deadline)

    def estimate(self, endpoint: str, request: ProviderRequest) -> int | None:
        """Predict the fetch's result cardinality without invoking it.

        Sources, in order of trust:

        1. **the cache** — a live cached result for this exact request
           key answers with its true size (and the later fetch will be a
           hit, so planning on it is free);
        2. **the endpoint's estimator hook** — declared via
           :func:`~repro.providers.base.estimates_with` or
           ``registry.register(..., estimator=...)``; cheap index-size
           arithmetic supplied by the provider author.

        Returns ``None`` when neither source can say — the planner then
        treats the branch's cardinality as unknown.  Estimates order
        query evaluation; they never replace a fetch, so a wrong hook
        costs speed, not correctness (and a hook that raises is treated
        as "no estimate", same fault containment as fetches).
        """
        key = request_key(endpoint, request)
        cached = self._lookup(key)
        if cached is not None:
            self.stats.record_estimate(endpoint)
            return len(cached.artifact_ids())
        getter = getattr(self.registry, "estimator", None)
        estimator = getter(endpoint) if callable(getter) else None
        if estimator is None:
            try:
                resolved = self.registry.resolve(endpoint)
            except ProviderError:
                return None
            estimator = declared_estimator(resolved)
        if estimator is None:
            return None
        try:
            value = estimator(request)
        except Exception:
            return None
        if value is None:
            return None
        self.stats.record_estimate(endpoint)
        return max(0, int(value))

    @contextmanager
    def scope(self) -> Iterator[None]:
        """Open a request-scoped memo for one logical operation.

        Within the scope, repeated fetches of one request key reuse the
        first result regardless of TTL — a single search evaluating
        ``owned_by: alex | owned_by: alex`` must not pay twice.  Scopes
        nest; the memo dies with the outermost exit.
        """
        stack = self._memo_stack()
        stack.append({} if not stack else stack[-1])
        try:
            yield
        finally:
            stack.pop()

    def invalidate(self, endpoint: str | None = None) -> None:
        """Drop cached results — all of them, or one endpoint's.

        Called on spec swap; catalog mutation invalidates automatically
        through the store's ``version`` counter.  Dropped entries are
        gone for the stale-while-revalidate path too — an invalidated
        result is *wrong*, not merely old, so serving it marked "stale"
        would still be serving a lie.  A full invalidation also clears
        the spec-declared dependency overlay: the swapped-in spec
        re-declares its dependencies when its interface is built, and
        keeping the old spec's declarations around would let them linger
        past the spec they came from.
        """
        with self._lock:
            if endpoint is None:
                self._cache.clear()
                self._dependency_overlay.clear()
            else:
                for key in [k for k in self._cache if k[0] == endpoint]:
                    del self._cache[key]

    @property
    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- health ------------------------------------------------------------

    def health(self, snapshot: dict | None = None) -> dict[str, dict]:
        """A JSON-friendly resilience report, per endpoint URI.

        Merges breaker state (live, including time-to-probe) with the
        degradation counters of :class:`ExecutionStats`.  Backs the CLI's
        ``health`` subcommand.  Pass a :meth:`ExecutionStats.snapshot`
        to derive the report and other views (the health table's footer,
        say) from one consistent cut of the counters.
        """
        if snapshot is None:
            snapshot = self.stats.snapshot()
        snap = snapshot["endpoints"]
        now = self._timer()
        with self._lock:
            breakers = {
                uri: (
                    breaker.state.value,
                    breaker.consecutive_failures,
                    breaker.retry_after_s(now),
                )
                for uri, breaker in self._breakers.items()
            }
        report: dict[str, dict] = {}
        for uri in sorted(set(snap) | set(breakers)):
            s = snap.get(uri, {})
            state, failures, retry_after = breakers.get(
                uri, (BreakerState.CLOSED.value, 0, 0.0)
            )
            report[uri] = {
                "breaker": state,
                "consecutive_failures": failures,
                "retry_after_s": round(retry_after, 3),
                "calls": s.get("calls", 0),
                "errors": s.get("errors", 0),
                "stale_served": s.get("stale_served", 0),
                "deadline_skips": s.get("deadline_skips", 0),
                "breaker_rejections": s.get("breaker_rejections", 0),
                "delta_patches": s.get("delta_patches", 0),
                "delta_fallbacks": s.get("delta_fallbacks", 0),
            }
        return report

    def render_health(self) -> str:
        """Plain-text health table (CLI ``health`` subcommand).

        Rows and the coalesced-bumps footer derive from **one** stats
        snapshot — historically the footer re-read the live counter, so
        a concurrent write stream could make the table disagree with
        its own footer.
        """
        snapshot = self.stats.snapshot()
        report = self.health(snapshot)
        lines = [
            f"{'endpoint':<32}{'breaker':>10}{'fails':>7}{'retry s':>9}"
            f"{'calls':>7}{'err':>5}{'stale':>7}{'dskip':>7}{'brej':>6}"
            f"{'patch':>7}{'dfall':>7}"
        ]
        for uri, row in report.items():
            lines.append(
                f"{uri:<32}{row['breaker']:>10}"
                f"{row['consecutive_failures']:>7}"
                f"{row['retry_after_s']:>9.1f}"
                f"{row['calls']:>7}{row['errors']:>5}"
                f"{row['stale_served']:>7}{row['deadline_skips']:>7}"
                f"{row['breaker_rejections']:>6}"
                f"{row['delta_patches']:>7}{row['delta_fallbacks']:>7}"
            )
        if len(lines) == 1:
            lines.append("(no fetches recorded)")
        lines.append(
            "coalesced version bumps:"
            f" {snapshot['totals']['coalesced_bumps']}"
        )
        return "\n".join(lines)

    # -- dependency declarations ---------------------------------------------

    def declare_dependencies(
        self, endpoint: str, domains: "frozenset[str] | Sequence[str]"
    ) -> None:
        """Overlay a dependency declaration for *endpoint*.

        Discovery calls this with each :class:`ProviderSpec`'s declared
        ``dependencies`` so spec-level declarations reach the cache even
        when the endpoint callable carries no ``@depends_on`` decoration.
        Empty *domains* is a no-op (an empty declaration means
        "undeclared", not "depends on nothing").

        The declaration is bound to the endpoint's *current* registration
        generation: when the endpoint is later re-registered, the overlay
        entry is retired (see :meth:`dependencies_for`) rather than
        applied to a callable it never described.
        """
        frozen = coerce_domains(domains)
        if not frozen:
            return
        generation = self._registration_generation(endpoint)
        with self._lock:
            entry = self._dependency_overlay.get(endpoint)
            current = (
                entry[1]
                if entry is not None and entry[0] == generation
                else frozenset()
            )
            self._dependency_overlay[endpoint] = (generation, current | frozen)

    def dependencies_for(self, endpoint: str) -> frozenset[str] | None:
        """Effective domains for *endpoint*: registry ∪ overlay, or None.

        ``None`` means no declaration exists anywhere, and the endpoint's
        cached results are conservatively dropped on any catalog write.
        Overlay entries declared against an earlier registration of the
        endpoint are dropped here — a swapped-in callable with no
        declaration of its own must fall back to conservative
        invalidation, not inherit its predecessor's narrower set.
        """
        declared = self.registry.dependencies(endpoint) if hasattr(
            self.registry, "dependencies"
        ) else None
        with self._lock:
            entry = self._dependency_overlay.get(endpoint)
            if entry is not None and entry[0] != self._registration_generation(
                endpoint
            ):
                del self._dependency_overlay[endpoint]
                entry = None
        overlaid = entry[1] if entry is not None else None
        if declared is None and overlaid is None:
            return None
        return (declared or frozenset()) | (overlaid or frozenset())

    def _registration_generation(self, endpoint: str) -> int:
        """The registry's stamp for *endpoint*'s current registration."""
        getter = getattr(self.registry, "registration_generation", None)
        return getter(endpoint) if callable(getter) else 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the lazily-created thread pool, joining its workers.

        Idempotent; a later :meth:`execute_many` lazily recreates the
        pool, so closing is safe even on engines that keep serving.
        Without this, every engine leaked its workers for the process
        lifetime.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_workers = 0
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- cache internals ----------------------------------------------------

    def _memo_stack(self) -> list[dict]:
        stack = getattr(self._memos, "stack", None)
        if stack is None:
            stack = self._memos.stack = []
        return stack

    def _lookup(self, key: RequestKey) -> ProviderResult | None:
        stack = self._memo_stack()
        if stack and key in stack[-1]:
            return stack[-1][key]
        with self._lock:
            self._check_store_version()
            entry = self._cache.get(key)
            if entry is None:
                return None
            fresh_until, stale_until, result = entry
            now = self._timer()
            if now >= stale_until:
                del self._cache[key]
                return None
            if now >= fresh_until:
                # Expired but within the stale grace window: a miss for
                # the fresh path, retained for stale-while-revalidate.
                return None
            self._cache.move_to_end(key)
            return result

    def _lookup_stale(self, key: RequestKey) -> tuple[ProviderResult, float] | None:
        """An expired-but-in-grace entry and its age past TTL, if any."""
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                return None
            fresh_until, stale_until, result = entry
            now = self._timer()
            if now >= stale_until:
                del self._cache[key]
                return None
            return (result, max(0.0, now - fresh_until))

    def _remember(
        self,
        key: RequestKey,
        result: ProviderResult,
        stamp: "tuple | None" = None,
    ) -> None:
        stack = self._memo_stack()
        if stack:
            stack[-1][key] = result
        policy = self._policy_for(key[0], tenant=key[3])
        if policy.cache_ttl_s <= 0:
            return
        with self._lock:
            self._check_store_version()
            if (
                stamp is not None
                and stamp != self._version_stamp()
                and not self._cacheable_despite_mutation(key[0], stamp)
            ):
                # The catalog or registry mutated while this fetch was in
                # flight in a way that may affect this endpoint: the
                # result may predate the mutation, and caching it would
                # resurrect data the sweep just invalidated.  The caller
                # still gets it (and the request-scoped memo holds it by
                # design); it just never enters the shared cache.
                return
            now = self._timer()
            fresh_until = now + policy.cache_ttl_s
            stale_until = fresh_until + (
                policy.stale_grace_s if policy.serve_stale else 0.0
            )
            self._cache[key] = (fresh_until, stale_until, result)
            self._cache.move_to_end(key)
            while len(self._cache) > self._policy.cache.max_entries:
                self._cache.popitem(last=False)

    def _check_store_version(self) -> None:
        """Sweep the cache when the catalog or registry mutated (lock held).

        Registry mutation (an endpoint swapped or removed) still clears
        everything — any entry may now belong to a different callable.
        Catalog mutation is dependency-aware: only entries whose endpoint
        depends on a mutated domain are dropped; endpoints without any
        declaration are dropped on every write (conservative fallback).
        """
        registry_version = self.registry.version
        if registry_version != self._seen_registry_version:
            self._cache.clear()
            self._seen_registry_version = registry_version
        if self.store is None:
            return
        version = self.store.version
        if version == self._seen_store_version:
            return
        self._seen_store_version = version
        self._mirror_coalesced_bumps()
        current = getattr(self.store, "domain_versions", None)
        if not isinstance(current, dict) or self._seen_domain_versions is None:
            # Store without domain versioning: monolithic behaviour.
            self._cache.clear()
            return
        changed = {
            domain
            for domain, counter in current.items()
            if self._seen_domain_versions.get(domain) != counter
        }
        self._seen_domain_versions = dict(current)
        if not changed:
            return
        self._apply_domain_changes(changed)

    def _mirror_coalesced_bumps(self) -> None:
        """Fold the store's saved-bump counter into the stats (lock held)."""
        total = getattr(self.store, "coalesced_bumps", 0)
        if isinstance(total, int) and total > self._seen_coalesced_bumps:
            self.stats.record_coalesced_bumps(
                total - self._seen_coalesced_bumps
            )
            self._seen_coalesced_bumps = total

    def _apply_domain_changes(self, changed: set[str]) -> None:
        """Patch or drop cache entries after catalog mutations (lock held).

        The store's write-ahead event log (:mod:`repro.catalog.events`)
        is drained from the last sweep's offset.  Entries whose endpoint
        depends only on *patchable* changed domains — the monotonic
        common cases: usage counters, lineage edges, membership — are
        handed to the endpoint's registered patcher together with those
        records, and stay cached (updated in place, original expiry).
        Everything else, and every patcher decline or failure, takes the
        PR 2 drop-and-refetch path, so this is never less correct than
        dropping — only cheaper.

        Domains seen in drained records are treated as changed even when
        their counter has not moved yet: a mutator appends its record
        *before* bumping, so a sweep triggered by a concurrent write may
        observe records slightly ahead of the counters.  Patching from
        them early is sound because patchers rebuild from live
        aggregates (re-applying an event is a no-op).
        """
        with self.tracer.span("engine.sweep") as sp:
            log = getattr(self.store, "events", None)
            records: tuple = ()
            patchable: set[str] = set()
            if isinstance(log, EventLog):
                drained, next_offset, truncated = log.since(
                    self._seen_event_offset
                )
                self._seen_event_offset = next_offset
                if truncated:
                    # Events fell off the bounded log before this sweep saw
                    # them — no domain's deltas are trustworthy any more.
                    changed = set(DOMAINS)
                else:
                    records = drained
                    changed = changed | {r.domain for r in drained}
                    opaque = {
                        r.domain
                        for r in drained
                        if isinstance(r, OpaqueEventRecord)
                    }
                    patchable = (changed & PATCHABLE_DOMAINS) - opaque
            hard = changed - patchable
            dependencies: dict[str, frozenset[str] | None] = {}
            patchers: dict[str, ResultPatcher | None] = {}
            patched_n = dropped_n = 0
            for key, entry in list(self._cache.items()):
                endpoint = key[0]
                if endpoint not in dependencies:
                    dependencies[endpoint] = self.dependencies_for(endpoint)
                deps = dependencies[endpoint]
                if deps is None or deps & hard:
                    del self._cache[key]
                    self.stats.record_invalidation(endpoint)
                    dropped_n += 1
                    continue
                if not (deps & patchable):
                    continue  # unaffected by this sweep
                if endpoint not in patchers:
                    patchers[endpoint] = self._patcher_for(endpoint)
                patcher = patchers[endpoint]
                if patcher is None:
                    del self._cache[key]
                    self.stats.record_invalidation(endpoint)
                    dropped_n += 1
                    continue
                fresh_until, stale_until, result = entry
                try:
                    patched = patcher(_request_from_key(key), result, records)
                except Exception:
                    patched = None
                if patched is None:
                    del self._cache[key]
                    self.stats.record_invalidation(endpoint)
                    self.stats.record_delta_fallback(endpoint)
                    dropped_n += 1
                    continue
                if patched is not result:
                    self._cache[key] = (fresh_until, stale_until, patched)
                self.stats.record_delta_patch(endpoint)
                patched_n += 1
            if sp:
                sp.set("domains", ",".join(sorted(changed)))
                sp.set("records", len(records))
                sp.set("patched", patched_n)
                sp.set("dropped", dropped_n)

    def _patcher_for(self, endpoint: str) -> ResultPatcher | None:
        getter = getattr(self.registry, "patcher", None)
        patcher = getter(endpoint) if callable(getter) else None
        return patcher if callable(patcher) else None

    # -- execution internals -------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        """The fan-out pool, built lazily **under the engine lock** so two
        first-callers racing can never each build (and one leak) a pool.
        The width it was built with is recorded; a policy swap that
        changes ``max_workers`` retires it (see the ``policy`` setter)."""
        with self._lock:
            if self._pool is None:
                self._pool_workers = self._policy.max_workers
                self._pool = ThreadPoolExecutor(
                    max_workers=self._pool_workers,
                    thread_name_prefix="humboldt-exec",
                )
            return self._pool

    def _run_guarded(
        self,
        endpoint: str,
        request: ProviderRequest,
        key: RequestKey,
        deadline: Deadline | None,
    ) -> FetchOutcome:
        """Post-cache-miss execution, coalesced across requests.

        With single-flight enabled (the default), the first thread to
        miss on *key* becomes the leader and runs the gated fetch; any
        thread missing on the same key while that fetch is in flight
        waits for the leader's outcome instead of invoking the provider
        again — one provider call, N waiters.
        """
        if not self._single_flight:
            return self._run_gated(endpoint, request, key, deadline)
        leading = self._leading_keys()
        if key in leading:
            # Re-entrant fetch of a key this thread is already leading
            # (a provider calling back into the engine): joining our own
            # flight would deadlock, so run directly.
            return self._run_gated(endpoint, request, key, deadline)
        with self._lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _InflightFetch()
        if not leader:
            return self._await_flight(endpoint, request, key, flight, deadline)
        leading.add(key)
        outcome: FetchOutcome | None = None
        try:
            outcome = self._run_gated(
                endpoint, request, key, deadline, flight=flight
            )
            return outcome
        finally:
            leading.discard(key)
            with self._lock:
                if self._inflight.get(key) is flight:
                    del self._inflight[key]
            flight.outcome = outcome
            flight.done.set()

    def _await_flight(
        self,
        endpoint: str,
        request: ProviderRequest,
        key: RequestKey,
        flight: _InflightFetch,
        deadline: Deadline | None,
    ) -> FetchOutcome:
        """Wait on an identical in-flight fetch and share its outcome.

        The waiter's span *links* to the leader's fetch span (it is not
        a child — the leader belongs to someone else's trace), so a
        traced join points at the invocation that did the work.  The
        link is resolved after the wait: the leader publishes its span
        id on the flight when its gated fetch starts.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._await_flight_inner(
                endpoint, request, key, flight, deadline
            )
        with tracer.span("engine.join") as sp:
            sp.set("endpoint", endpoint)
            outcome = self._await_flight_inner(
                endpoint, request, key, flight, deadline
            )
            if flight.leader_span_id:
                sp.links = (flight.leader_span_id,)
            sp.set("outcome", outcome.status.value)
            return outcome

    def _await_flight_inner(
        self,
        endpoint: str,
        request: ProviderRequest,
        key: RequestKey,
        flight: _InflightFetch,
        deadline: Deadline | None,
    ) -> FetchOutcome:
        if deadline is None:
            flight.done.wait()
        else:
            remaining_s = deadline.remaining_ms(self._timer()) / 1000.0
            if not flight.done.wait(timeout=remaining_s):
                # The shared fetch is still running and this caller's
                # budget is spent: degrade exactly like a direct miss.
                tenant = request.context.team_id
                policy = self._policy_for(endpoint, tenant)
                self.stats.record_deadline_skip(endpoint)
                stale = self._stale_outcome(
                    endpoint, key, policy, "deadline exhausted"
                )
                if stale is not None:
                    return stale
                return FetchOutcome(
                    endpoint,
                    error=DeadlineExceededError(endpoint, deadline.budget_ms),
                    status=FetchStatus.SKIPPED,
                    reason="deadline exhausted",
                )
        outcome = flight.outcome
        if outcome is None:
            # The leader died without publishing (a non-HumboldtError
            # escaped); fall back to fetching directly.
            return self._run_gated(endpoint, request, key, deadline)
        self.stats.record_single_flight(endpoint)
        if outcome.fresh and outcome.result is not None:
            stack = self._memo_stack()
            if stack:
                stack[-1][key] = outcome.result
        return outcome

    def _leading_keys(self) -> set:
        keys = getattr(self._ambient, "leading", None)
        if keys is None:
            keys = self._ambient.leading = set()
        return keys

    def _run_gated(
        self,
        endpoint: str,
        request: ProviderRequest,
        key: RequestKey,
        deadline: Deadline | None,
        flight: _InflightFetch | None = None,
    ) -> FetchOutcome:
        """Deadline and breaker gates, then the middleware chain, mapping
        every arm to a :class:`FetchOutcome`.  When this fetch leads a
        single-flight, its span id is published on *flight* so waiters
        can link to it."""
        with self.tracer.span("engine.fetch") as sp:
            if sp:
                sp.set("endpoint", endpoint)
                if flight is not None:
                    flight.leader_span_id = sp.span_id
            tenant = request.context.team_id
            policy = self._policy_for(endpoint, tenant)
            # Breakers are engine-wide: their knobs resolve from the shared
            # policy so a tenant overlay can never weaken another tenant's
            # protection against a failing provider.
            base = policy if not tenant else self._policy_for(endpoint)
            now = self._timer()
            if deadline is not None and deadline.expired(now):
                self.stats.record_deadline_skip(endpoint)
                stale = self._stale_outcome(
                    endpoint, key, policy, "deadline exhausted"
                )
                if sp:
                    sp.set("gate", "deadline")
                    sp.set("outcome", "stale" if stale is not None else "skipped")
                if stale is not None:
                    return stale
                return FetchOutcome(
                    endpoint,
                    error=DeadlineExceededError(endpoint, deadline.budget_ms),
                    status=FetchStatus.SKIPPED,
                    reason="deadline exhausted",
                )
            breaker: CircuitBreaker | None = None
            if base.breaker_enabled:
                allowed, retry_after, breaker = self._breaker_gate(
                    endpoint, base, now
                )
                if not allowed:
                    self.stats.record_breaker_rejection(endpoint)
                    stale = self._stale_outcome(
                        endpoint, key, policy, "circuit open"
                    )
                    if sp:
                        sp.set("gate", "breaker")
                        sp.set(
                            "outcome", "stale" if stale is not None else "skipped"
                        )
                    if stale is not None:
                        return stale
                    return FetchOutcome(
                        endpoint,
                        error=CircuitOpenError(endpoint, retry_after),
                        status=FetchStatus.SKIPPED,
                        reason="circuit open",
                    )
            stamp = self._version_stamp()
            stack = self._deadline_stack()
            stack.append(deadline)
            try:
                result = self._execute(endpoint, request)
            except HumboldtError as exc:
                self._breaker_record(endpoint, ok=False, breaker=breaker)
                if sp:
                    sp.set("outcome", "error")
                    sp.set("error", type(exc).__name__)
                return FetchOutcome(endpoint, error=exc)
            finally:
                stack.pop()
            self._breaker_record(endpoint, ok=True, breaker=breaker)
            self._remember(key, result, stamp=stamp)
            if sp:
                sp.set("outcome", "ok")
            return FetchOutcome(endpoint, result=result)

    def _version_stamp(self) -> tuple:
        """(registry version, store version, domain counters) as of now —
        taken *before* invoking an endpoint, so a result computed against
        pre-mutation state is never cached as fresh after the mutation's
        sweep (see :meth:`_remember`).  The per-domain counters let
        :meth:`_cacheable_despite_mutation` admit results whose endpoint
        provably doesn't read any mutated domain — without them, a
        sustained write stream to *any* domain would void every insert.
        """
        if self.store is None:
            return (self.registry.version, -1, None)
        versions = getattr(self.store, "domain_versions", None)
        domains = (
            tuple(sorted(versions.items()))
            if isinstance(versions, dict)
            else None
        )
        return (self.registry.version, self.store.version, domains)

    def _cacheable_despite_mutation(
        self, endpoint: str, stamp: tuple
    ) -> bool:
        """True when a mid-flight mutation provably cannot have affected
        *endpoint*: the registry is unchanged and every domain counter
        that moved since *stamp* lies outside the endpoint's declared
        dependency set (lock held)."""
        current = self._version_stamp()
        if stamp[0] != current[0]:
            return False  # endpoint may have been swapped mid-flight
        old_domains, new_domains = stamp[2], current[2]
        if old_domains is None or new_domains is None:
            return False
        deps = self.dependencies_for(endpoint)
        if deps is None:
            return False  # undeclared: conservative, as everywhere else
        old = dict(old_domains)
        changed = {
            domain
            for domain, counter in new_domains
            if old.get(domain) != counter
        }
        return not (deps & changed)

    def _stale_outcome(
        self,
        endpoint: str,
        key: RequestKey,
        policy: EndpointPolicy,
        reason: str,
    ) -> FetchOutcome | None:
        """A stale-while-revalidate outcome, if policy and cache allow."""
        if not policy.serve_stale:
            return None
        held = self._lookup_stale(key)
        if held is None:
            return None
        result, age_s = held
        self.stats.record_stale_served(endpoint)
        return FetchOutcome(
            endpoint,
            result=result,
            status=FetchStatus.STALE,
            reason=f"{reason}; serving cached result {age_s:.0f}s past TTL",
        )

    def _breaker_for(self, endpoint: str, policy: EndpointPolicy) -> CircuitBreaker:
        """The endpoint's breaker, lazily created (lock held)."""
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = self._breakers[endpoint] = CircuitBreaker(
                failure_threshold=policy.breaker_failure_threshold,
                reset_timeout_s=policy.breaker_reset_timeout_s,
                half_open_max_calls=policy.breaker_half_open_max_calls,
            )
        return breaker

    def _breaker_gate(
        self, endpoint: str, policy: EndpointPolicy, now: float
    ) -> tuple[bool, float, CircuitBreaker]:
        """(allowed, retry_after_s, breaker); transitions open → half-open.

        The breaker instance is returned so the post-fetch
        :meth:`_breaker_record` can verify it is recording against the
        *same* state machine it gated through — a policy swap mid-flight
        replaces the breaker table, and recording a result against a
        freshly-minted breaker would corrupt probe accounting and lose
        trip state.
        """
        with self._lock:
            breaker = self._breaker_for(endpoint, policy)
            before = breaker.state
            allowed = breaker.allow(now)
            if breaker.state is not before:
                self.stats.record_breaker_state(endpoint, breaker.state.value)
            return allowed, breaker.retry_after_s(now), breaker

    def _breaker_record(
        self,
        endpoint: str,
        ok: bool,
        breaker: CircuitBreaker | None,
    ) -> None:
        """Record a fetch result against the breaker it gated through.

        *breaker* is the instance :meth:`_breaker_gate` admitted this
        fetch through (None when breaking was disabled at gate time).  If
        a policy swap retired it while the fetch was in flight, the
        record is dropped: the swap deliberately reset breaker state, and
        minting a replacement here would both resurrect stale accounting
        and race other threads into duplicate breakers for one endpoint.
        """
        if breaker is None:
            return
        now = self._timer()
        with self._lock:
            if self._breakers.get(endpoint) is not breaker:
                return
            before = breaker.state
            if ok:
                breaker.record_success(now)
            else:
                breaker.record_failure(now)
            if breaker.state is not before:
                self.stats.record_breaker_state(endpoint, breaker.state.value)
                if breaker.state is BreakerState.OPEN:
                    self.stats.record_breaker_open(endpoint)

    def breaker_state(self, endpoint: str) -> BreakerState:
        """The endpoint's current breaker state (CLOSED if untracked)."""
        with self._lock:
            breaker = self._breakers.get(endpoint)
            return breaker.state if breaker is not None else BreakerState.CLOSED

    def _execute(self, endpoint: str, request: ProviderRequest) -> ProviderResult:
        try:
            result = self._chain(endpoint, request)
        except ProviderError:
            self.stats.record_error(endpoint)
            raise
        limit = request.context.limit
        if limit > 0 and result.payload_size() >= limit:
            self.stats.record_truncation(endpoint)
        return result

    def _wrap(self, middleware: Middleware, call_next: CallNext) -> CallNext:
        def wrapped(endpoint: str, request: ProviderRequest) -> ProviderResult:
            return middleware(endpoint, request, call_next)

        return wrapped

    def _invoke(self, endpoint: str, request: ProviderRequest) -> ProviderResult:
        """Terminal stage: resolve and call, timing the invocation."""
        resolved = self.registry.resolve(endpoint)
        with self.tracer.span("provider.invoke") as sp:
            if sp:
                sp.set("endpoint", endpoint)
            started = self._timer()
            try:
                return resolved(request)
            finally:
                self.stats.record_call(
                    endpoint, (self._timer() - started) * 1000.0
                )

    def _retry_middleware(
        self, endpoint: str, request: ProviderRequest, call_next: CallNext
    ) -> ProviderResult:
        """Retry transient failures with jittered, deadline-capped backoff.

        The active request deadline (pushed by :meth:`_run_guarded`, so
        worker threads see their own) bounds the schedule two ways: an
        expired deadline stops retrying immediately, and a backoff delay
        never sleeps past the remaining budget.
        """
        policy = self._policy_for(endpoint, request.context.team_id)
        deadline = self._current_deadline()
        attempt = 1
        while True:
            try:
                return call_next(endpoint, request)
            except ProviderError as exc:
                if attempt >= policy.attempts or not is_transient(exc):
                    raise
                now = self._timer()
                if deadline is not None and deadline.expired(now):
                    raise
                delay_ms = policy.backoff_base_ms * (
                    policy.backoff_multiplier ** (attempt - 1)
                )
                if policy.backoff_jitter > 0:
                    delay_ms *= 1.0 + policy.backoff_jitter * _jitter_fraction(
                        endpoint, attempt
                    )
                if deadline is not None:
                    delay_ms = min(delay_ms, deadline.remaining_ms(now))
                self.stats.record_retry(endpoint)
                if delay_ms > 0:
                    self._sleep(delay_ms / 1000.0)
                attempt += 1


def _validation_middleware(
    endpoint: str, request: ProviderRequest, call_next: CallNext
) -> ProviderResult:
    """Enforce the response envelope at the execution boundary."""
    result = call_next(endpoint, request)
    if not isinstance(result, ProviderResult):
        raise ProviderError(
            endpoint,
            f"endpoint returned {type(result).__name__}, expected ProviderResult",
        )
    return result.validate(endpoint)
