"""The default Humboldt specification for the built-in provider suite.

This is the reproduction's analogue of the spec the paper's use case
installs in Sigma Workbook (Section 6.1, Figure 2): every built-in
provider declared with its category, representation, inputs, visibility
and ranking — including the paper's Listing 1 global ranking weights
(``favorite``: 4.3, ``views``: 1.5).
"""

from __future__ import annotations

from repro.core.spec.builder import SpecBuilder
from repro.core.spec.model import HumboldtSpec, Visibility


def default_spec() -> HumboldtSpec:
    """Build the full default specification (validated)."""
    builder = (
        SpecBuilder()
        # -- interaction providers ------------------------------------
        .provider(
            "recents", "catalog://recents", "list",
            category="interaction",
            title="Recents",
            description="Artifacts you recently viewed or edited.",
            inputs=[("user", "user", False)],
            ranking=[("recency", 5.0)],
            dependencies=("usage", "entities"),
        )
        .provider(
            "recent_documents", "catalog://recent_documents", "list",
            category="interaction",
            title="Recent Documents",
            description="Workbooks and documents you recently used.",
            inputs=[("user", "user", False)],
            visibility=Visibility(overview=False, exploration=False,
                                  search=True),
            dependencies=("usage", "entities"),
        )
        .provider(
            "most_viewed", "catalog://most_viewed", "tiles",
            category="interaction",
            title="Most Viewed",
            description="The most viewed artifacts across the organisation.",
            ranking=[("views", 2.0), ("recency", 1.0)],
            dependencies=("usage", "entities"),
        )
        .provider(
            "newest", "catalog://newest", "list",
            category="interaction",
            title="Newly Created",
            description="Artifacts created most recently.",
            ranking=[("freshness", 3.0)],
            dependencies=("entities",),
        )
        .provider(
            "favorites", "catalog://favorites", "list",
            category="interaction",
            title="Favorites",
            description="Artifacts you marked as favorites.",
            inputs=[("user", "user", False)],
            dependencies=("usage", "entities"),
        )
        # -- annotation providers ---------------------------------------
        .provider(
            "owned_by", "catalog://owned_by", "list",
            category="annotation",
            title="Owned By",
            description="Artifacts owned by a given user.",
            inputs=[("user", "user", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities", "membership"),
        )
        .provider(
            "created_by", "catalog://created_by", "list",
            category="annotation",
            title="Created By",
            description="Artifacts created by a given user.",
            inputs=[("user", "user", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities", "membership"),
        )
        .provider(
            "of_type", "catalog://of_type", "list",
            category="annotation",
            title="Of Type",
            description="Artifacts of a given type (table, workbook, ...).",
            inputs=[("artifact_type", "artifact_type", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            search_field="type",
            dependencies=("entities",),
        )
        .provider(
            "types", "catalog://types", "categories",
            category="annotation",
            title="Type",
            description="All artifacts grouped by artifact type.",
            visibility=Visibility(overview=True, exploration=False,
                                  search=False),
            dependencies=("entities",),
        )
        .provider(
            "badges", "catalog://badges", "categories",
            category="annotation",
            title="Badges",
            description="All artifacts grouped by badge.",
            visibility=Visibility(overview=True, exploration=False,
                                  search=False),
            dependencies=("entities",),
        )
        .provider(
            "badged", "catalog://badged", "list",
            category="annotation",
            title="Badged",
            description="Artifacts carrying a given badge.",
            inputs=[("badge", "badge", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities",),
        )
        .provider(
            "badged_by", "catalog://badged_by", "list",
            category="annotation",
            title="Badged By",
            description="Artifacts with a badge granted by a given user.",
            inputs=[("user", "user", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities", "membership"),
        )
        .provider(
            "tagged", "catalog://tagged", "list",
            category="annotation",
            title="Tagged",
            description="Artifacts carrying a given tag.",
            inputs=[("text", "text", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities",),
        )
        # -- team providers -----------------------------------------------
        .provider(
            "team_popular", "catalog://team_popular", "list",
            category="team",
            title="Popular With Your Team",
            description="Most viewed by members of your team.",
            inputs=[("team", "team", False)],
            dependencies=("usage", "membership", "entities"),
        )
        .provider(
            "team_docs", "catalog://team_docs", "tiles",
            category="team",
            title="Team Documents",
            description="Artifacts belonging to your team.",
            inputs=[("team", "team", False)],
            dependencies=("entities", "membership"),
        )
        # -- relatedness providers ---------------------------------------------
        .provider(
            "joinable", "catalog://joinable", "graph",
            category="relatedness",
            title="Joinable",
            description="Tables joinable to the selected table, as a graph.",
            inputs=[("artifact", "artifact", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities",),
        )
        .provider(
            "lineage", "catalog://lineage", "hierarchy",
            category="relatedness",
            title="Lineage",
            description="Artifacts derived from the selected artifact.",
            inputs=[("artifact", "artifact", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("lineage", "entities"),
        )
        .provider(
            "lineage_graph", "catalog://lineage_graph", "graph",
            category="relatedness",
            title="Lineage Graph",
            description="Upstream and downstream lineage neighbourhood.",
            inputs=[("artifact", "artifact", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=False),
            dependencies=("lineage", "entities"),
        )
        .provider(
            "similar", "catalog://similar", "list",
            category="relatedness",
            title="Similar",
            description="Artifacts similar to the selected one "
                        "(semantic + schema ensemble).",
            inputs=[("artifact", "artifact", True)],
            visibility=Visibility(overview=False, exploration=True,
                                  search=True),
            dependencies=("entities", "text"),
        )
        .provider(
            "embedding_map", "catalog://embedding_map", "embedding",
            category="relatedness",
            title="Catalog Map",
            description="2-D embedding of the whole catalog.",
            visibility=Visibility(overview=True, exploration=False,
                                  search=False),
            dependencies=("entities", "text"),
        )
        # -- global ranking: the paper's Listing 1 ------------------------------
        .ranking("favorite", 4.3)
        .ranking("views", 1.5)
    )
    return builder.build()
