"""Segmented JSON-stream snapshot/export for catalogs.

The single-document snapshot (:mod:`.persistence`) is convenient for
small corpora but loads and saves as one blob: exporting a 200k-artifact
catalog re-serialises everything, every time.  This module writes the
same records as **segments** — gzip-compressed JSON-stream files (one
record per line) of bounded size, one stream per metadata domain, tied
together by a ``manifest.json``:

``membership-*.jsonl.gz``   user and team records (tagged by ``kind``)
``entities-*.jsonl.gz``     artifact records, in id order
``usage-*.jsonl.gz``        usage events, in arrival order
``lineage-*.jsonl.gz``      lineage edges

Segment files are append-only: records are written line-by-line and a
file, once complete, is never edited in place.  The ``usage`` stream is
a stable prefix of the event log, so re-exporting a grown catalog
re-uses every previously completed usage segment untouched and only
writes the new tail — the other streams are sorted snapshots and are
rewritten when their content changes (cheap, because unchanged complete
segments are detected by record count + first/last id and skipped).

The manifest also carries the domain-version counters and the clock, so
a catalog rebuilt from segments is cache-coherent with the original
(same guarantee as persistence format v2).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.catalog.codecs import (
    artifact_from_dict,
    artifact_to_dict,
    event_from_dict,
    event_to_dict,
    team_from_dict,
    team_to_dict,
    user_from_dict,
    user_to_dict,
)
from repro.catalog.store import CatalogStore
from repro.errors import CatalogError
from repro.util.clock import SimulationClock

#: Manifest format; unknown versions fail loudly on import.
SEGMENT_FORMAT_VERSION = 1

#: Default records per segment file.
DEFAULT_SEGMENT_RECORDS = 10_000

MANIFEST_NAME = "manifest.json"

_STREAMS = ("membership", "entities", "usage", "lineage")


def _segment_name(stream: str, index: int) -> str:
    return f"{stream}-{index:05d}.jsonl.gz"


def _stream_records(store: CatalogStore, stream: str) -> Iterator[dict[str, Any]]:
    if stream == "membership":
        for user in store.users():
            yield {"kind": "user", **user_to_dict(user)}
        for team in store.teams():
            yield {"kind": "team", **team_to_dict(team)}
    elif stream == "entities":
        for artifact in store.artifacts():
            yield artifact_to_dict(artifact)
    elif stream == "usage":
        for event in store.usage.events():
            yield event_to_dict(event)
    elif stream == "lineage":
        for edge in store.lineage.edges():
            yield {"src": edge.src, "dst": edge.dst, "kind": edge.kind}
    else:  # pragma: no cover - internal misuse
        raise CatalogError(f"unknown segment stream {stream!r}")


def _chunked(records: Iterable[dict[str, Any]],
             size: int) -> Iterator[list[dict[str, Any]]]:
    chunk: list[dict[str, Any]] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _segment_meta(name: str, chunk: list[dict[str, Any]]) -> dict[str, Any]:
    first = chunk[0]
    last = chunk[-1]
    return {
        "file": name,
        "records": len(chunk),
        "first_id": first.get("id", ""),
        "last_id": last.get("id", ""),
    }


def export_segments(store: CatalogStore, directory: str | Path,
                    segment_records: int = DEFAULT_SEGMENT_RECORDS) -> Path:
    """Export *store* to *directory*; returns the manifest path.

    Re-exporting into the same directory is incremental: a segment whose
    manifest entry (record count and id range) already matches is left
    untouched, so for append-mostly growth only new or changed segments
    are re-serialised.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_NAME
    previous: dict[str, Any] = {}
    if manifest_path.exists():
        try:
            previous = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            previous = {}

    streams: dict[str, Any] = {}
    for stream in _STREAMS:
        known = {
            meta["file"]: meta
            for meta in previous.get("streams", {}).get(stream, {}).get(
                "segments", []
            )
        }
        segments: list[dict[str, Any]] = []
        total = 0
        for index, chunk in enumerate(
            _chunked(_stream_records(store, stream), segment_records)
        ):
            name = _segment_name(stream, index)
            meta = _segment_meta(name, chunk)
            path = directory / name
            if known.get(name) != meta or not path.exists():
                with gzip.open(path, "wt", encoding="utf-8") as handle:
                    for record in chunk:
                        handle.write(json.dumps(record, sort_keys=True))
                        handle.write("\n")
            segments.append(meta)
            total += len(chunk)
        # Drop stale trailing segments from a previously larger export.
        for name in known:
            if name not in {meta["file"] for meta in segments}:
                (directory / name).unlink(missing_ok=True)
        streams[stream] = {"segments": segments, "records": total}

    manifest = {
        "format": SEGMENT_FORMAT_VERSION,
        "epoch": store.clock.epoch,
        "now": store.clock.now(),
        "domain_versions": store.domain_versions,
        "total_version": store.version,
        "segment_records": segment_records,
        "streams": streams,
    }
    manifest_path.write_text(json.dumps(manifest, indent=1), encoding="utf-8")
    return manifest_path


def read_segments(directory: str | Path) -> Iterator[tuple[str, dict[str, Any]]]:
    """Yield ``(stream, record)`` pairs from an exported directory."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise CatalogError(f"no segment manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    fmt = manifest.get("format")
    if fmt != SEGMENT_FORMAT_VERSION:
        raise CatalogError(
            f"unsupported segment format {fmt!r}; "
            f"expected {SEGMENT_FORMAT_VERSION}"
        )
    for stream in _STREAMS:
        for meta in manifest.get("streams", {}).get(stream, {}).get(
            "segments", []
        ):
            with gzip.open(directory / meta["file"], "rt",
                           encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        yield stream, json.loads(line)


def import_segments(directory: str | Path,
                    store: CatalogStore | None = None) -> CatalogStore:
    """Rebuild a catalog from :func:`export_segments` output.

    With *store* given (e.g. a freshly opened persistent store), records
    are loaded into it; otherwise a new in-memory store is built.  Either
    way the manifest's clock and domain-version counters are restored.
    """
    directory = Path(directory)
    manifest = json.loads(
        (directory / MANIFEST_NAME).read_text(encoding="utf-8")
    )
    if store is None:
        clock = SimulationClock(
            epoch=manifest.get("epoch", SimulationClock().epoch)
        )
        store = CatalogStore(clock=clock)
    for stream, record in read_segments(directory):
        if stream == "membership":
            if record.get("kind") == "team":
                store.add_team(team_from_dict(record))
            else:
                store.add_user(user_from_dict(record))
        elif stream == "entities":
            store.add_artifact(artifact_from_dict(record))
        elif stream == "usage":
            store.record_event(event_from_dict(record))
        elif stream == "lineage":
            store.lineage.add_edge(
                record["src"], record["dst"], record.get("kind", "derives")
            )
    target_now = manifest.get("now")
    if target_now is not None and target_now > store.clock.now():
        store.clock.advance(seconds=target_now - store.clock.now())
    store.restore_domain_versions(
        manifest.get("domain_versions", {}), manifest.get("total_version")
    )
    return store
