"""The catalog store: entities, secondary indexes, usage and lineage.

A :class:`CatalogStore` is the single object metadata providers are handed.
All lookups providers need in their hot paths (by type, owner, badge, tag,
team, name token) are maintained as secondary indexes on write, because the
paper's motivating scale is catalogs of "up to millions" of tables where
linear scans per query are not viable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator

from repro.catalog.domains import (
    ALL_DOMAINS,
    DOMAIN_ENTITIES,
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_TEXT,
    DOMAIN_USAGE,
    DOMAINS,
)
from repro.catalog.lineage import LineageGraph
from repro.catalog.model import Artifact, ArtifactType, BadgeAssignment, Team, UsageEvent, User
from repro.catalog.usage import UsageLog, UsageStats
from repro.errors import DuplicateEntityError, UnknownEntityError
from repro.util.clock import SimulationClock
from repro.util.textutil import tokenize


class CatalogStore:
    """In-memory enterprise catalog with secondary indexes."""

    def __init__(self, clock: SimulationClock | None = None):
        self.clock = clock or SimulationClock()
        # Monotonic mutation counters.  ``_version`` counts every write;
        # ``_versions`` splits the count by metadata domain so the
        # provider execution layer can invalidate only the results whose
        # providers depend on what actually changed.
        self._version = 0
        self._versions: dict[str, int] = {domain: 0 for domain in DOMAINS}
        self.usage = UsageLog()
        # Lineage edges are added through ``store.lineage`` directly
        # (bulk loaders, persistence), so the graph reports its writes
        # back — without the hook, lineage mutations would be invisible
        # to cache invalidation.
        self.lineage = LineageGraph(
            on_mutate=lambda: self._mutated(DOMAIN_LINEAGE)
        )
        self._artifacts: dict[str, Artifact] = {}
        self._users: dict[str, User] = {}
        self._teams: dict[str, Team] = {}
        # Secondary indexes (artifact ids, kept sorted on read not write).
        self._by_type: dict[ArtifactType, set[str]] = defaultdict(set)
        self._by_owner: dict[str, set[str]] = defaultdict(set)
        self._by_badge: dict[str, set[str]] = defaultdict(set)
        self._by_badge_grantor: dict[tuple[str, str], set[str]] = defaultdict(set)
        self._by_tag: dict[str, set[str]] = defaultdict(set)
        self._by_team: dict[str, set[str]] = defaultdict(set)
        self._by_token: dict[str, set[str]] = defaultdict(set)
        # Display name -> ids; a multimap because display names are not
        # unique, and "resolve if unique" must detect collisions.
        self._users_by_name: dict[str, set[str]] = defaultdict(set)
        # Per-artifact (name tokens, searchable-text tokens) memo for the
        # query evaluator's text scoring; dropped on reindex.
        self._token_cache: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        # Sorted artifact-id list memo, keyed on the entities version —
        # Not-queries materialise the universe per search, and re-sorting
        # a million-id catalog on every keystroke is pure waste.
        self._sorted_ids: list[str] | None = None
        self._sorted_ids_version = -1

    @property
    def version(self) -> int:
        """Count of catalog mutations; bumped on every write."""
        return self._version

    @property
    def domain_versions(self) -> dict[str, int]:
        """Per-domain mutation counters (a copy; see :mod:`.domains`)."""
        return dict(self._versions)

    def domain_version(self, domain: str) -> int:
        """Mutation count of one domain; unknown domains raise KeyError."""
        return self._versions[domain]

    def _mutated(self, *domains: str) -> None:
        """Record a write to *domains* (all of them when unspecified —
        the conservative choice for callers that cannot say)."""
        self._version += 1
        for domain in domains or ALL_DOMAINS:
            self._versions[domain] += 1

    # -- sizes ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._artifacts)

    @property
    def artifact_count(self) -> int:
        return len(self._artifacts)

    @property
    def user_count(self) -> int:
        return len(self._users)

    @property
    def team_count(self) -> int:
        return len(self._teams)

    # -- users and teams ---------------------------------------------------

    def add_user(self, user: User) -> User:
        if user.id in self._users:
            raise DuplicateEntityError("user", user.id)
        self._users[user.id] = user
        self._users_by_name[user.name.lower()].add(user.id)
        self._mutated(DOMAIN_MEMBERSHIP)
        return user

    def add_team(self, team: Team) -> Team:
        if team.id in self._teams:
            raise DuplicateEntityError("team", team.id)
        self._teams[team.id] = team
        self._mutated(DOMAIN_MEMBERSHIP)
        return team

    def set_team(self, team: Team) -> Team:
        """Replace an existing team (e.g. to update its roster/admins)."""
        if team.id not in self._teams:
            raise UnknownEntityError("team", team.id)
        self._teams[team.id] = team
        self._mutated(DOMAIN_MEMBERSHIP)
        return team

    def user(self, user_id: str) -> User:
        try:
            return self._users[user_id]
        except KeyError:
            raise UnknownEntityError("user", user_id) from None

    def team(self, team_id: str) -> Team:
        try:
            return self._teams[team_id]
        except KeyError:
            raise UnknownEntityError("team", team_id) from None

    def users(self) -> list[User]:
        return [self._users[uid] for uid in sorted(self._users)]

    def teams(self) -> list[Team]:
        return [self._teams[tid] for tid in sorted(self._teams)]

    def find_user_by_name(self, name: str) -> User | None:
        """Resolve a display name (case-insensitive) to a user, if unique.

        Display names are not unique: when two or more users share the
        name the lookup is ambiguous and returns ``None`` rather than an
        arbitrary (historically: last-added) user.
        """
        user_ids = self._users_by_name.get(name.lower())
        if not user_ids or len(user_ids) > 1:
            return None
        (user_id,) = user_ids
        return self._users.get(user_id)

    def teams_of(self, user_id: str) -> list[Team]:
        """Teams the user belongs to.

        Membership is recorded on both sides (Team rosters and
        ``User.team_ids``); either side suffices, so late-added users with
        only ``team_ids`` still resolve.
        """
        user = self.user(user_id)
        return [
            t
            for t in self.teams()
            if t.is_member(user_id) or t.id in user.team_ids
        ]

    # -- artifacts ----------------------------------------------------------

    def add_artifact(self, artifact: Artifact) -> Artifact:
        if artifact.id in self._artifacts:
            raise DuplicateEntityError("artifact", artifact.id)
        self._artifacts[artifact.id] = artifact
        self._index(artifact)
        self._mutated(DOMAIN_ENTITIES, DOMAIN_TEXT)
        return artifact

    def artifact(self, artifact_id: str) -> Artifact:
        try:
            return self._artifacts[artifact_id]
        except KeyError:
            raise UnknownEntityError("artifact", artifact_id) from None

    def has_artifact(self, artifact_id: str) -> bool:
        return artifact_id in self._artifacts

    def artifacts(self) -> Iterator[Artifact]:
        """All artifacts in id order (deterministic)."""
        for artifact_id in sorted(self._artifacts):
            yield self._artifacts[artifact_id]

    def artifact_ids(self) -> list[str]:
        """All artifact ids, sorted; the sort is memoised per entities
        version (callers receive a copy they may mutate freely)."""
        version = self._versions[DOMAIN_ENTITIES]
        if self._sorted_ids is None or self._sorted_ids_version != version:
            self._sorted_ids = sorted(self._artifacts)
            self._sorted_ids_version = version
        return list(self._sorted_ids)

    def resolve(self, artifact_ids: Iterable[str]) -> list[Artifact]:
        """Map ids to artifacts, skipping ids that no longer exist."""
        return [
            self._artifacts[aid] for aid in artifact_ids if aid in self._artifacts
        ]

    # -- index lookups -------------------------------------------------------

    def by_type(self, artifact_type: ArtifactType | str) -> list[str]:
        return sorted(self._by_type.get(ArtifactType.coerce(artifact_type), ()))

    def by_owner(self, user_id: str) -> list[str]:
        return sorted(self._by_owner.get(user_id, ()))

    def by_badge(self, badge: str, granted_by: str | None = None) -> list[str]:
        if granted_by is None:
            return sorted(self._by_badge.get(badge, ()))
        return sorted(self._by_badge_grantor.get((badge, granted_by), ()))

    def by_tag(self, tag: str) -> list[str]:
        return sorted(self._by_tag.get(tag.lower(), ()))

    def by_team(self, team_id: str) -> list[str]:
        return sorted(self._by_team.get(team_id, ()))

    def by_token(self, token: str) -> list[str]:
        """Artifacts whose searchable text contains *token*."""
        return sorted(self._by_token.get(token.lower(), ()))

    def index_size(self, kind: str, key: str) -> int:
        """Bucket size of one secondary index, without materialising it.

        The query planner's cardinality estimates live on this: a
        ``by_*`` accessor sorts its bucket (O(k log k)) where planning
        only needs ``len`` (O(1)).  *kind* is one of ``type``, ``owner``,
        ``badge``, ``tag``, ``team``, ``token``; unknown kinds and
        unindexed keys are size 0.
        """
        if kind == "type":
            try:
                coerced = ArtifactType.coerce(key)
            except ValueError:
                return 0
            return len(self._by_type.get(coerced, ()))
        index = {
            "owner": self._by_owner,
            "badge": self._by_badge,
            "tag": self._by_tag,
            "team": self._by_team,
            "token": self._by_token,
        }.get(kind)
        if index is None:
            return 0
        if kind in ("tag", "token"):
            key = key.lower()
        return len(index.get(key, ()))

    def badges_in_use(self) -> list[str]:
        """Badge names that appear on at least one artifact."""
        return sorted(badge for badge, ids in self._by_badge.items() if ids)

    def tags_in_use(self) -> list[str]:
        return sorted(tag for tag, ids in self._by_tag.items() if ids)

    def artifact_tokens(self, artifact_id: str) -> tuple[frozenset[str], frozenset[str]]:
        """``(name tokens, searchable-text tokens)`` for one artifact.

        Tokenizing every result artifact per query dominated text scoring
        at scale; the sets are immutable per artifact revision, so they
        are memoised here and dropped when the artifact is reindexed.
        """
        cached = self._token_cache.get(artifact_id)
        if cached is None:
            artifact = self.artifact(artifact_id)
            cached = (
                frozenset(tokenize(artifact.name)),
                frozenset(tokenize(artifact.searchable_text())),
            )
            self._token_cache[artifact_id] = cached
        return cached

    def clear_token_cache(self) -> None:
        """Drop all memoised token sets (benchmarking hook)."""
        self._token_cache.clear()

    def search_tokens(self, tokens: Iterable[str]) -> list[str]:
        """Artifact ids matching *all* tokens (conjunctive keyword search)."""
        result: set[str] | None = None
        for token in tokens:
            ids = self._by_token.get(token.lower(), set())
            result = set(ids) if result is None else result & ids
            if not result:
                return []
        return sorted(result) if result else []

    # -- mutation of artifact metadata ----------------------------------------

    def grant_badge(
        self, artifact_id: str, badge: str, granted_by: str, at: float | None = None
    ) -> Artifact:
        """Attach a badge to an artifact, reindexing it."""
        artifact = self.artifact(artifact_id)
        self.user(granted_by)  # validate grantor exists
        assignment = BadgeAssignment(
            badge=badge,
            granted_by=granted_by,
            granted_at=self.clock.now() if at is None else at,
        )
        updated = artifact.with_badge(assignment)
        self._deindex(artifact)
        self._artifacts[artifact_id] = updated
        self._index(updated)
        self._mutated(DOMAIN_ENTITIES, DOMAIN_TEXT)
        return updated

    def record_event(self, event: UsageEvent) -> None:
        """Record a usage event; the artifact and user must exist."""
        self.artifact(event.artifact_id)
        self.user(event.user_id)
        self.usage.record(event)
        self._mutated(DOMAIN_USAGE)

    def record(
        self, artifact_id: str, user_id: str, action: str, at: float | None = None
    ) -> None:
        """Convenience wrapper building a :class:`UsageEvent` at clock time."""
        timestamp = self.clock.now() if at is None else at
        self.record_event(UsageEvent(artifact_id, user_id, action, timestamp))

    def usage_stats(self, artifact_id: str) -> UsageStats:
        return self.usage.stats(artifact_id)

    # -- bulk helpers ----------------------------------------------------------

    def filter_artifacts(self, predicate: Callable[[Artifact], bool]) -> list[Artifact]:
        """Linear filter; prefer index lookups in hot paths."""
        return [a for a in self.artifacts() if predicate(a)]

    # -- internal indexing -------------------------------------------------------

    def _index(self, artifact: Artifact) -> None:
        self._token_cache.pop(artifact.id, None)
        self._by_type[artifact.artifact_type].add(artifact.id)
        if artifact.owner_id:
            self._by_owner[artifact.owner_id].add(artifact.id)
        for team_id in artifact.team_ids:
            self._by_team[team_id].add(artifact.id)
        for assignment in artifact.badges:
            self._by_badge[assignment.badge].add(artifact.id)
            key = (assignment.badge, assignment.granted_by)
            self._by_badge_grantor[key].add(artifact.id)
        for tag in artifact.tags:
            self._by_tag[tag.lower()].add(artifact.id)
        for token in set(tokenize(artifact.searchable_text())):
            self._by_token[token].add(artifact.id)

    def _deindex(self, artifact: Artifact) -> None:
        self._token_cache.pop(artifact.id, None)
        self._by_type[artifact.artifact_type].discard(artifact.id)
        if artifact.owner_id:
            self._by_owner[artifact.owner_id].discard(artifact.id)
        for team_id in artifact.team_ids:
            self._by_team[team_id].discard(artifact.id)
        for assignment in artifact.badges:
            self._by_badge[assignment.badge].discard(artifact.id)
            key = (assignment.badge, assignment.granted_by)
            self._by_badge_grantor[key].discard(artifact.id)
        for tag in artifact.tags:
            self._by_tag[tag.lower()].discard(artifact.id)
        for token in set(tokenize(artifact.searchable_text())):
            self._by_token[token].discard(artifact.id)
