"""The catalog store: entities, secondary indexes, usage and lineage.

A :class:`CatalogStore` is the single object metadata providers are handed.
All lookups providers need in their hot paths (by type, owner, badge, tag,
team, name token) are maintained as secondary indexes on write, because the
paper's motivating scale is catalogs of "up to millions" of tables where
linear scans per query are not viable.

The store owns *semantics* — validation, duplicate detection, which
domains a write touches, memoisation — and delegates *state* to a
:class:`~repro.catalog.backend.CatalogBackend`.  ``CatalogStore()`` is the
historical fully-resident store; :meth:`CatalogStore.open` returns one
backed by a persistent SQLite file with per-domain lazy loading, behind
the exact same API and domain-versioning contract.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.catalog.backend import CatalogBackend, InMemoryBackend, grantor_key
from repro.catalog.domains import (
    DOMAIN_ENTITIES,
    DOMAIN_MEMBERSHIP,
    DOMAIN_TEXT,
    DOMAIN_USAGE,
    DOMAINS,
)
from repro.catalog.events import (
    EntitiesEventRecord,
    EventLog,
    EventRecord,
    EventStream,
    LineageEventRecord,
    MembershipEventRecord,
    OpaqueEventRecord,
    UsageEventRecord,
)
from repro.catalog.lineage import LineageGraph
from repro.catalog.model import Artifact, ArtifactType, BadgeAssignment, Team, UsageEvent, User
from repro.catalog.usage import UsageLog, UsageStats
from repro.errors import DuplicateEntityError, UnknownEntityError
from repro.util.clock import SimulationClock
from repro.util.textutil import tokenize

#: Backend state key holding the ``[epoch, now]`` clock snapshot.
_CLOCK_STATE = "clock"
_FINGERPRINT_PREFIX = "fingerprint:"


class CatalogStore:
    """Enterprise catalog with secondary indexes over a pluggable backend."""

    def __init__(self, clock: SimulationClock | None = None,
                 backend: CatalogBackend | None = None):
        self._backend = backend or InMemoryBackend()
        if clock is None:
            clock = self._restore_clock() or SimulationClock()
        self.clock = clock
        # Per-artifact (name tokens, searchable-text tokens) memo for the
        # query evaluator's text scoring; dropped on reindex.
        self._token_cache: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        # Sorted artifact-id list memo, keyed on the entities version —
        # Not-queries materialise the universe per search, and re-sorting
        # a million-id catalog on every keystroke is pure waste.  Between
        # versions the memo is *patched* by replaying entity additions
        # from the write-ahead event log (offset below) instead of
        # refetching every id from the backend.
        self._sorted_ids: list[str] | None = None
        self._sorted_ids_version = -1
        self._sorted_ids_offset = 0
        # The write-ahead event stream: every mutation appends a typed
        # record here *before* bumping its domain version, so engine
        # caches and ranking snapshots can apply per-event deltas (see
        # repro.catalog.events and docs/write_path.md).
        self.events = EventLog()
        #: Version bumps saved by batched event application — a batch of
        #: N usage events bumps once, crediting N-1 here.
        self.coalesced_bumps = 0
        self._coalesce_lock = threading.Lock()
        # Edges added straight through ``store.lineage`` must hit the
        # event log too; the graph exposes a per-edge hook for exactly
        # this (fires after the edge lands, before the version bump).
        self._backend.lineage.on_edge = self._on_lineage_edge

    @classmethod
    def open(cls, path: str | Path,
             clock: SimulationClock | None = None) -> "CatalogStore":
        """Open (or create) a persistent catalog stored at *path*.

        The returned store hydrates lazily per metadata domain: opening a
        200k-artifact catalog reads a few metadata rows, and each domain
        (entities, usage, lineage, token index) loads on first touch.
        Call :meth:`flush` (or :meth:`close`, or use the store as a
        context manager) to persist writes.
        """
        from repro.catalog.sqlite_backend import SqliteBackend

        return cls(clock=clock, backend=SqliteBackend(path))

    def _restore_clock(self) -> SimulationClock | None:
        state = self._backend.get_state(_CLOCK_STATE)
        if state is None:
            return None
        epoch, now = json.loads(state)
        clock = SimulationClock(epoch=epoch)
        if now > epoch:
            clock.advance(seconds=now - epoch)
        return clock

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Persist pending writes (no-op for the in-memory backend)."""
        self._backend.set_state(
            _CLOCK_STATE, json.dumps([self.clock.epoch, self.clock.now()])
        )
        self._backend.flush()

    def compact(self) -> None:
        """Flush, then reclaim backend storage space."""
        self.flush()
        self._backend.compact()

    def close(self) -> None:
        """Flush and release backend resources."""
        self.flush()
        self._backend.close()

    def __enter__(self) -> "CatalogStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def storage_info(self) -> dict:
        """Backend diagnostics (kind, residency/hydration, on-disk size)."""
        return self._backend.info()

    # -- version counters --------------------------------------------------

    @property
    def version(self) -> int:
        """Count of catalog mutations; bumped on every write."""
        return self._backend.version()

    @property
    def domain_versions(self) -> dict[str, int]:
        """Per-domain mutation counters (a copy; see :mod:`.domains`)."""
        return self._backend.domain_versions()

    def domain_version(self, domain: str) -> int:
        """Mutation count of one domain; unknown domains raise KeyError."""
        return self._backend.domain_version(domain)

    def _mutated(self, *domains: str) -> None:
        """Record a write to *domains* (all of them when unspecified —
        the conservative choice for callers that cannot say)."""
        self._backend.bump(domains)

    def _log_event(self, record: EventRecord) -> None:
        """Append one write-ahead record (in-process log + durable
        backend mirror).  Always called after the state change and
        before the version bump — consumers woken by a bump must find
        its explanation already in the log."""
        self.events.append(record)
        self._backend.journal_event(record)

    def _on_lineage_edge(self, src: str, dst: str, kind: str) -> None:
        self._log_event(LineageEventRecord(src=src, dst=dst, kind=kind))

    def restore_domain_versions(self, versions: Mapping[str, int],
                                total: int | None = None) -> None:
        """Merge persisted version counters in, never moving backwards.

        Persistence layers call this after a rebuild so engine caches
        keyed on ``domain_version(...)`` can never collide with keys
        minted against the catalog before it was saved.
        """
        # A restore moves counters without per-event deltas; opaque
        # records force log consumers onto their coarse fallback paths.
        for domain in DOMAINS:
            if domain in versions:
                self._log_event(OpaqueEventRecord(domain, reason="restore"))
        self._backend.restore_versions(versions, total)

    # -- sizes ------------------------------------------------------------

    def __len__(self) -> int:
        return self._backend.artifact_count()

    @property
    def artifact_count(self) -> int:
        return self._backend.artifact_count()

    @property
    def user_count(self) -> int:
        return self._backend.user_count()

    @property
    def team_count(self) -> int:
        return self._backend.team_count()

    # -- usage and lineage -------------------------------------------------

    @property
    def usage(self) -> UsageLog:
        """The usage-event log (lazy backends hydrate it on first touch)."""
        return self._backend.usage

    @property
    def lineage(self) -> LineageGraph:
        """The lineage graph; direct ``lineage.add_edge`` calls version
        correctly because the backend wires the graph's mutation hook."""
        return self._backend.lineage

    # -- users and teams ---------------------------------------------------

    def add_user(self, user: User) -> User:
        if self._backend.get_user(user.id) is not None:
            raise DuplicateEntityError("user", user.id)
        self._backend.put_user(user)
        self._log_event(MembershipEventRecord("user", user.id, added=True))
        self._mutated(DOMAIN_MEMBERSHIP)
        return user

    def add_team(self, team: Team) -> Team:
        if self._backend.get_team(team.id) is not None:
            raise DuplicateEntityError("team", team.id)
        self._backend.put_team(team)
        self._log_event(MembershipEventRecord("team", team.id, added=True))
        self._mutated(DOMAIN_MEMBERSHIP)
        return team

    def set_team(self, team: Team) -> Team:
        """Replace an existing team (e.g. to update its roster/admins)."""
        if self._backend.get_team(team.id) is None:
            raise UnknownEntityError("team", team.id)
        self._backend.put_team(team)
        # Replacement may *remove* members — flagged non-monotonic.
        self._log_event(MembershipEventRecord("team", team.id, added=False))
        self._mutated(DOMAIN_MEMBERSHIP)
        return team

    def user(self, user_id: str) -> User:
        user = self._backend.get_user(user_id)
        if user is None:
            raise UnknownEntityError("user", user_id)
        return user

    def team(self, team_id: str) -> Team:
        team = self._backend.get_team(team_id)
        if team is None:
            raise UnknownEntityError("team", team_id)
        return team

    def users(self) -> list[User]:
        return [self.user(uid) for uid in self._backend.user_ids()]

    def teams(self) -> list[Team]:
        return [self.team(tid) for tid in self._backend.team_ids()]

    def find_user_by_name(self, name: str) -> User | None:
        """Resolve a display name (case-insensitive) to a user, if unique.

        Display names are not unique: when two or more users share the
        name the lookup is ambiguous and returns ``None`` rather than an
        arbitrary (historically: last-added) user.
        """
        user_ids = self._backend.user_ids_by_name(name.lower())
        if len(user_ids) != 1:
            return None
        (user_id,) = user_ids
        return self._backend.get_user(user_id)

    def teams_of(self, user_id: str) -> list[Team]:
        """Teams the user belongs to.

        Membership is recorded on both sides (Team rosters and
        ``User.team_ids``); either side suffices, so late-added users with
        only ``team_ids`` still resolve.
        """
        user = self.user(user_id)
        return [
            t
            for t in self.teams()
            if t.is_member(user_id) or t.id in user.team_ids
        ]

    # -- artifacts ----------------------------------------------------------

    def add_artifact(self, artifact: Artifact) -> Artifact:
        if self._backend.has_artifact(artifact.id):
            raise DuplicateEntityError("artifact", artifact.id)
        self._token_cache.pop(artifact.id, None)
        self._backend.put_artifact(artifact)
        self._log_event(EntitiesEventRecord(artifact.id, added=True))
        self._mutated(DOMAIN_ENTITIES, DOMAIN_TEXT)
        return artifact

    def artifact(self, artifact_id: str) -> Artifact:
        artifact = self._backend.get_artifact(artifact_id)
        if artifact is None:
            raise UnknownEntityError("artifact", artifact_id)
        return artifact

    def has_artifact(self, artifact_id: str) -> bool:
        return self._backend.has_artifact(artifact_id)

    def artifacts(self) -> Iterator[Artifact]:
        """All artifacts in id order (deterministic).

        A full scan by definition, so lazy backends bulk-hydrate the
        entities domain instead of paying one point read per artifact.
        """
        self._backend.hydrate((DOMAIN_ENTITIES,))
        for artifact_id in self.artifact_ids():
            yield self.artifact(artifact_id)

    def artifact_ids(self) -> list[str]:
        """All artifact ids, sorted; the sort is memoised per entities
        version (callers receive a copy they may mutate freely).

        Between versions the memo is maintained *incrementally*: entity
        additions replay from the write-ahead event log at the memoised
        offset as O(log n) sorted inserts, so a streaming catalog never
        pays a full backend refetch per write.  Opaque records and log
        truncation fall back to the refetch.
        """
        version = self._backend.domain_version(DOMAIN_ENTITIES)
        if self._sorted_ids is not None and self._sorted_ids_version != version:
            patched = self._patch_sorted_ids()
            if patched is not None:
                self._sorted_ids = patched
                self._sorted_ids_version = version
        if self._sorted_ids is None or self._sorted_ids_version != version:
            # Offset first: events landing mid-fetch simply replay later,
            # and replaying an addition already in the list is a no-op.
            offset = self.events.offset
            self._sorted_ids = self._backend.artifact_ids()
            self._sorted_ids_version = version
            self._sorted_ids_offset = offset
        return list(self._sorted_ids)

    def _patch_sorted_ids(self) -> list[str] | None:
        """Replay entity additions since the memoised offset into a new
        sorted list; ``None`` means the log cannot explain the version
        change (truncated, or an opaque entities write) and the caller
        must refetch."""
        base = self._sorted_ids
        records, next_offset, truncated = self.events.since(
            self._sorted_ids_offset
        )
        if truncated or base is None:
            return None
        patched: list[str] | None = None
        for record in records:
            if isinstance(record, EntitiesEventRecord):
                if not record.added:
                    continue  # in-place edit: the id set is unchanged
                ids = patched if patched is not None else base
                pos = bisect_left(ids, record.artifact_id)
                if pos < len(ids) and ids[pos] == record.artifact_id:
                    continue  # replayed twice; insert is idempotent
                if patched is None:
                    patched = list(base)
                patched.insert(pos, record.artifact_id)
            elif (
                isinstance(record, OpaqueEventRecord)
                and record.domain == DOMAIN_ENTITIES
            ):
                return None
        self._sorted_ids_offset = next_offset
        return patched if patched is not None else base

    def resolve(self, artifact_ids: Iterable[str]) -> list[Artifact]:
        """Map ids to artifacts, skipping ids that no longer exist."""
        resolved = (self._backend.get_artifact(aid) for aid in artifact_ids)
        return [artifact for artifact in resolved if artifact is not None]

    # -- index lookups -------------------------------------------------------

    def by_type(self, artifact_type: ArtifactType | str) -> list[str]:
        coerced = ArtifactType.coerce(artifact_type)
        return sorted(self._backend.index_ids("type", coerced.value))

    def by_owner(self, user_id: str) -> list[str]:
        return sorted(self._backend.index_ids("owner", user_id))

    def by_badge(self, badge: str, granted_by: str | None = None) -> list[str]:
        if granted_by is None:
            return sorted(self._backend.index_ids("badge", badge))
        return sorted(
            self._backend.index_ids("badge_grantor",
                                    grantor_key(badge, granted_by))
        )

    def by_tag(self, tag: str) -> list[str]:
        return sorted(self._backend.index_ids("tag", tag.lower()))

    def by_team(self, team_id: str) -> list[str]:
        return sorted(self._backend.index_ids("team", team_id))

    def by_token(self, token: str) -> list[str]:
        """Artifacts whose searchable text contains *token*."""
        return sorted(self._backend.index_ids("token", token.lower()))

    def index_size(self, kind: str, key: str) -> int:
        """Bucket size of one secondary index, without materialising it.

        The query planner's cardinality estimates live on this: a
        ``by_*`` accessor sorts its bucket (O(k log k)) where planning
        only needs ``len`` — O(1) resident, one indexed COUNT on lazy
        backends (no hydration either way).  *kind* is one of ``type``,
        ``owner``, ``badge``, ``tag``, ``team``, ``token``; unknown kinds
        and unindexed keys are size 0.
        """
        if kind == "type":
            try:
                key = ArtifactType.coerce(key).value
            except ValueError:
                return 0
        elif kind in ("tag", "token"):
            key = key.lower()
        elif kind not in ("owner", "badge", "team"):
            return 0
        return self._backend.index_size(kind, key)

    def badges_in_use(self) -> list[str]:
        """Badge names that appear on at least one artifact."""
        return self._backend.index_keys("badge")

    def tags_in_use(self) -> list[str]:
        return self._backend.index_keys("tag")

    def artifact_tokens(self, artifact_id: str) -> tuple[frozenset[str], frozenset[str]]:
        """``(name tokens, searchable-text tokens)`` for one artifact.

        Tokenizing every result artifact per query dominated text scoring
        at scale; the sets are immutable per artifact revision, so they
        are memoised here and dropped when the artifact is reindexed.
        """
        cached = self._token_cache.get(artifact_id)
        if cached is None:
            artifact = self.artifact(artifact_id)
            cached = (
                frozenset(tokenize(artifact.name)),
                frozenset(tokenize(artifact.searchable_text())),
            )
            self._token_cache[artifact_id] = cached
        return cached

    def clear_token_cache(self) -> None:
        """Drop all memoised token sets.

        Counts as a ``text``-domain write: cached results that embedded
        the memoised token sets must not survive the clear, so the
        version bump tells dependency-aware engine caches to drop them.
        """
        self._token_cache.clear()
        self._log_event(OpaqueEventRecord(DOMAIN_TEXT, reason="reindex"))
        self._mutated(DOMAIN_TEXT)

    def search_tokens(self, tokens: Iterable[str]) -> list[str]:
        """Artifact ids matching *all* tokens (conjunctive keyword search)."""
        normalized = [token.lower() for token in tokens]
        if not normalized:
            return []
        return self._backend.intersect_tokens(normalized)

    # -- mutation of artifact metadata ----------------------------------------

    def grant_badge(
        self, artifact_id: str, badge: str, granted_by: str, at: float | None = None
    ) -> Artifact:
        """Attach a badge to an artifact, reindexing it."""
        artifact = self.artifact(artifact_id)
        self.user(granted_by)  # validate grantor exists
        assignment = BadgeAssignment(
            badge=badge,
            granted_by=granted_by,
            granted_at=self.clock.now() if at is None else at,
        )
        updated = artifact.with_badge(assignment)
        self._token_cache.pop(artifact_id, None)
        self._backend.put_artifact(updated)
        # A badge edits an existing artifact in place: non-monotonic
        # for anything caching artifact payloads, hence added=False.
        self._log_event(EntitiesEventRecord(artifact_id, added=False))
        self._mutated(DOMAIN_ENTITIES, DOMAIN_TEXT)
        return updated

    def record_event(self, event: UsageEvent) -> None:
        """Record a usage event; the artifact and user must exist."""
        self.artifact(event.artifact_id)
        self.user(event.user_id)
        self.usage.record(event)
        self._log_event(UsageEventRecord(event=event))
        self._mutated(DOMAIN_USAGE)

    def record_events(self, events: Sequence[UsageEvent]) -> None:
        """Apply a batch of usage events with **one** usage version bump.

        This is the coalescing primitive under :class:`EventStream`:
        every event is validated, folded and logged individually, but
        the domain version moves once for the whole batch — dependent
        caches sweep once instead of N times.  The bumps saved are
        credited to :attr:`coalesced_bumps`.
        """
        batch = list(events)
        if not batch:
            return
        for event in batch:
            self.artifact(event.artifact_id)
            self.user(event.user_id)
        self.usage.record_many(batch)
        for event in batch:
            self._log_event(UsageEventRecord(event=event))
        with self._coalesce_lock:
            self.coalesced_bumps += len(batch) - 1
        self._mutated(DOMAIN_USAGE)

    def record(
        self, artifact_id: str, user_id: str, action: str, at: float | None = None
    ) -> None:
        """Convenience wrapper building a :class:`UsageEvent` at clock time."""
        timestamp = self.clock.now() if at is None else at
        self.record_event(UsageEvent(artifact_id, user_id, action, timestamp))

    def stream(
        self, window_s: float = 0.05, max_batch: int = 256
    ) -> EventStream:
        """A coalescing usage-event writer bound to this store (see
        :class:`repro.catalog.events.EventStream`)."""
        return EventStream(self, window_s=window_s, max_batch=max_batch)

    def usage_stats(self, artifact_id: str) -> UsageStats:
        return self.usage.stats(artifact_id)

    # -- ingestion fingerprints -------------------------------------------

    def ingest_fingerprint(self, source: str) -> str | None:
        """Content fingerprint recorded for *source* (None if never run)."""
        return self._backend.get_state(_FINGERPRINT_PREFIX + source)

    def set_ingest_fingerprint(self, source: str, fingerprint: str) -> None:
        """Record that *source* was ingested at *fingerprint*."""
        self._backend.set_state(_FINGERPRINT_PREFIX + source, fingerprint)

    def ingest_fingerprints(self) -> dict[str, str]:
        """All recorded ``source -> fingerprint`` pairs."""
        prefix = _FINGERPRINT_PREFIX
        return {
            key[len(prefix):]: self._backend.get_state(key) or ""
            for key in self._backend.state_keys(prefix)
        }

    # -- bulk helpers ----------------------------------------------------------

    def filter_artifacts(self, predicate: Callable[[Artifact], bool]) -> list[Artifact]:
        """Linear filter; prefer index lookups in hot paths."""
        return [a for a in self.artifacts() if predicate(a)]
