"""Persistent catalog storage on stdlib :mod:`sqlite3` (WAL mode).

The backend keeps the full :class:`~repro.catalog.backend.CatalogBackend`
contract on disk and hydrates **per domain, on first touch**:

``membership``
    Users and teams load together the first time either is read or
    written (they are small and always used as a pair).
``entities``
    Artifact records load *point-wise* — ``get_artifact`` is one row
    lookup — and only full iteration hydrates the whole table.
``entities``/``text`` indexes
    Secondary indexes persist as a ``postings`` table (one row per
    ``(kind, key, artifact_id)``).  ``index_size`` is an indexed COUNT,
    bucket reads hydrate and memoise one bucket at a time, and conjunctive
    token search runs as a single SQL ``INTERSECT`` until a touched bucket
    has unflushed writes.
``usage``
    Aggregates (per-artifact stats, per-user recents) and the raw event
    log hydrate as two separate chunks, so ranking reads never pay for
    the event history and vice versa.
``lineage``
    The graph hydrates whole on first traversal (lineage queries are
    global by nature); ``edge_count`` alone stays a COUNT.

Writes land in the hydrated structures immediately and are journalled;
:meth:`SqliteBackend.flush` persists them in one transaction.  Cold-start
is therefore O(touched): opening a 200k-artifact catalog and answering a
keyword query reads a handful of rows, not the catalog.

Like every backend this module is internal to :mod:`repro.catalog` —
construct stores via ``CatalogStore.open(path)``.

**Stability: internal.**  Import through :mod:`repro` / the package
facades; this module's names may change without notice.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.catalog.backend import CatalogBackend, index_entries
from repro.catalog.codecs import (
    artifact_from_dict,
    artifact_to_dict,
    team_from_dict,
    team_to_dict,
    user_from_dict,
    user_to_dict,
)
from repro.catalog.domains import ALL_DOMAINS, DOMAIN_LINEAGE, DOMAINS
from repro.catalog.lineage import LineageGraph
from repro.catalog.model import Artifact, Team, UsageEvent, User
from repro.catalog.usage import UsageLog, UsageStats
from repro.errors import CatalogError
from repro.obs.metrics import default_registry

#: Per-statement query timing, labelled by SQL verb, on the process-wide
#: observability registry (``repro metrics`` exposes it).  Always on: one
#: histogram observe per statement is noise next to the statement itself.
_QUERY_TIMING = default_registry().histogram(
    "sqlite_query_ms",
    ("op",),
    "SqliteBackend statement latency by SQL verb.",
)


def _observe_query(sql: str, elapsed_ms: float) -> None:
    verb = sql.split(None, 1)[0].upper() if sql else "?"
    _QUERY_TIMING.labels(verb).observe(elapsed_ms)


#: Bump when the table layout changes; unknown versions fail loudly.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS artifacts(
    id TEXT PRIMARY KEY, data TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS users(
    id TEXT PRIMARY KEY, data TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS teams(
    id TEXT PRIMARY KEY, data TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS postings(
    kind TEXT NOT NULL, key TEXT NOT NULL, id TEXT NOT NULL,
    PRIMARY KEY(kind, key, id)) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS usage_events(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    artifact_id TEXT NOT NULL, user_id TEXT NOT NULL,
    action TEXT NOT NULL, ts REAL NOT NULL);
CREATE TABLE IF NOT EXISTS usage_stats(
    artifact_id TEXT PRIMARY KEY, data TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS user_recents(
    user_id TEXT PRIMARY KEY, data TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS lineage_edges(
    src TEXT NOT NULL, dst TEXT NOT NULL, kind TEXT NOT NULL,
    PRIMARY KEY(src, dst)) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS catalog_events(
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    domain TEXT NOT NULL, kind TEXT NOT NULL, data TEXT NOT NULL);
"""


def _stats_to_dict(stats: UsageStats) -> dict[str, Any]:
    return {
        "view_count": stats.view_count,
        "edit_count": stats.edit_count,
        "open_count": stats.open_count,
        "favorite_count": stats.favorite_count,
        "last_viewed_at": stats.last_viewed_at,
        "last_edited_at": stats.last_edited_at,
        "viewers": sorted(stats.viewers),
        "favorited_by": sorted(stats.favorited_by),
    }


def _stats_from_dict(data: dict[str, Any]) -> UsageStats:
    return UsageStats(
        view_count=data.get("view_count", 0),
        edit_count=data.get("edit_count", 0),
        open_count=data.get("open_count", 0),
        favorite_count=data.get("favorite_count", 0),
        last_viewed_at=data.get("last_viewed_at", 0.0),
        last_edited_at=data.get("last_edited_at", 0.0),
        viewers=set(data.get("viewers", ())),
        favorited_by=set(data.get("favorited_by", ())),
    )


class _SqliteUsage(UsageLog):
    """Usage log hydrating its aggregate and event chunks independently."""

    def __init__(self, backend: "SqliteBackend") -> None:
        super().__init__()
        self._sql = backend
        self._stats_loaded = False
        self._events_loaded = False
        self._pending: list[UsageEvent] = []
        self._dirty_stats: set[str] = set()
        self._dirty_recents: set[str] = set()
        self._stored_events: int | None = None

    # -- hydration ---------------------------------------------------------

    def _ensure_stats(self) -> None:
        if self._stats_loaded:
            return
        with self._sql._lock:
            if self._stats_loaded:
                return
            for artifact_id, data in self._sql._execute(
                "SELECT artifact_id, data FROM usage_stats"
            ):
                self._stats[artifact_id] = _stats_from_dict(json.loads(data))
            for user_id, data in self._sql._execute(
                "SELECT user_id, data FROM user_recents"
            ):
                self._user_recents[user_id] = dict(json.loads(data))
            self._stats_loaded = True

    def _ensure_events(self) -> None:
        if self._events_loaded:
            return
        with self._sql._lock:
            if self._events_loaded:
                return
            stored = [
                UsageEvent(artifact_id, user_id, action, ts)
                for artifact_id, user_id, action, ts in self._sql._execute(
                    "SELECT artifact_id, user_id, action, ts "
                    "FROM usage_events ORDER BY seq"
                )
            ]
            self._events = stored + self._pending
            self._events_loaded = True

    def _stored_event_count(self) -> int:
        if self._stored_events is None:
            (count,) = self._sql._execute_one(
                "SELECT COUNT(*) FROM usage_events"
            )
            self._stored_events = int(count)
        return self._stored_events

    # -- overridden log API ------------------------------------------------

    def __len__(self) -> int:
        if self._events_loaded:
            return len(self._events)
        return self._stored_event_count() + len(self._pending)

    def record(self, event: UsageEvent) -> None:
        self._ensure_stats()
        self._fold(event)
        self._pending.append(event)
        if self._events_loaded:
            self._events.append(event)
        self._dirty_stats.add(event.artifact_id)
        self._dirty_recents.add(event.user_id)

    def stats(self, artifact_id: str):
        self._ensure_stats()
        return super().stats(artifact_id)

    def all_stats(self):
        self._ensure_stats()
        return super().all_stats()

    def events(self):
        self._ensure_events()
        return super().events()

    def recent_for_user(self, user_id: str, limit: int = 20) -> list[str]:
        self._ensure_stats()
        return super().recent_for_user(user_id, limit)

    def favorites_of(self, user_id: str) -> list[str]:
        self._ensure_stats()
        return super().favorites_of(user_id)

    def most_viewed(self, limit: int = 20) -> list[tuple[str, int]]:
        self._ensure_stats()
        return super().most_viewed(limit)

    def views_by_users(self, user_ids: set[str]) -> dict[str, int]:
        self._ensure_events()
        return super().views_by_users(user_ids)

    # -- persistence -------------------------------------------------------

    def _flush(self, conn: sqlite3.Connection) -> None:
        if self._pending:
            conn.executemany(
                "INSERT INTO usage_events(artifact_id, user_id, action, ts) "
                "VALUES (?, ?, ?, ?)",
                [(e.artifact_id, e.user_id, e.action, e.timestamp)
                 for e in self._pending],
            )
            if self._stored_events is not None:
                self._stored_events += len(self._pending)
            self._pending.clear()
        if self._dirty_stats:
            conn.executemany(
                "INSERT OR REPLACE INTO usage_stats(artifact_id, data) "
                "VALUES (?, ?)",
                [(aid, json.dumps(_stats_to_dict(self._stats[aid])))
                 for aid in self._dirty_stats],
            )
            self._dirty_stats.clear()
        if self._dirty_recents:
            conn.executemany(
                "INSERT OR REPLACE INTO user_recents(user_id, data) "
                "VALUES (?, ?)",
                [(uid, json.dumps(self._user_recents.get(uid, {})))
                 for uid in self._dirty_recents],
            )
            self._dirty_recents.clear()


class _SqliteLineage(LineageGraph):
    """Lineage graph hydrating whole on first traversal or edge write."""

    def __init__(self, backend: "SqliteBackend") -> None:
        self._sql = backend
        self._loaded = False
        self._pending: list[tuple[str, str, str]] = []
        super().__init__(
            on_mutate=lambda: backend.bump((DOMAIN_LINEAGE,))
        )

    # ``LineageGraph`` reads ``self._graph`` in every method; routing the
    # attribute through a property gives all of them lazy hydration
    # without overriding each one.
    @property
    def _graph(self):
        if not self._loaded:
            with self._sql._lock:
                if not self._loaded:
                    for src, dst, kind in self._sql._execute(
                        "SELECT src, dst, kind FROM lineage_edges"
                    ):
                        self._real.add_edge(src, dst, kind=kind)
                    self._loaded = True
        return self._real

    @_graph.setter
    def _graph(self, value) -> None:
        self._real = value

    @property
    def edge_count(self) -> int:
        if not self._loaded:  # unhydrated implies no unflushed edges
            (count,) = self._sql._execute_one(
                "SELECT COUNT(*) FROM lineage_edges"
            )
            return int(count)
        return self._real.number_of_edges()

    def add_edge(self, src: str, dst: str, kind: str = "derives") -> None:
        super().add_edge(src, dst, kind)
        self._pending.append((src, dst, kind))

    def _flush(self, conn: sqlite3.Connection) -> None:
        if self._pending:
            conn.executemany(
                "INSERT OR REPLACE INTO lineage_edges(src, dst, kind) "
                "VALUES (?, ?, ?)",
                self._pending,
            )
            self._pending.clear()


class SqliteBackend(CatalogBackend):
    """On-disk catalog backend; see the module docstring for the model."""

    def __init__(self, path: str | Path):
        self._path = Path(path) if path != ":memory:" else path
        self._lock = threading.RLock()
        if isinstance(self._path, Path):
            self._path.parent.mkdir(parents=True, exist_ok=True)
        # One *write* connection, guarded by the RLock.  Reads get a
        # connection per thread (see :meth:`_read_connection`): WAL lets
        # any number of readers run concurrently with one writer, so
        # parallel pool workers no longer serialise on a single shared
        # connection + lock.  ``:memory:`` databases keep the historical
        # single-connection behaviour — a second connection to
        # ``:memory:`` would open a different, empty database.
        self._conn = sqlite3.connect(str(self._path),
                                     check_same_thread=False)
        self._closed = False
        self._read_local = threading.local()
        self._read_conns: list[sqlite3.Connection] = []
        self._init_schema()
        # A catalog created this session cannot have unseen buckets on
        # disk, so misses are provably empty and skip the SELECT.
        self._fresh = not self._execute_one(
            "SELECT EXISTS(SELECT 1 FROM postings)"
        )[0]

        self._version = 0
        self._versions: dict[str, int] = {domain: 0 for domain in DOMAINS}
        self._load_versions()

        self._state: dict[str, str] = {
            key[len("state:"):]: value
            for key, value in self._execute(
                "SELECT key, value FROM meta WHERE key LIKE 'state:%'"
            )
        }
        self._dirty_state: set[str] = set()

        # membership (coarse)
        self._membership_loaded = False
        self._users: dict[str, User] = {}
        self._teams: dict[str, Team] = {}
        self._users_by_name: dict[str, set[str]] = {}
        self._dirty_users: set[str] = set()
        self._dirty_teams: set[str] = set()

        # entities (point-wise with full-iteration fallback)
        self._entities_loaded = False
        self._artifacts: dict[str, Artifact] = {}
        self._dirty_artifacts: set[str] = set()
        self._added_ids: set[str] = set()  # new since open (session-lifetime)
        self._stored_ids: list[str] | None = None
        self._stored_count: int | None = None
        self._ids_memo: list[str] | None = None

        # index buckets (bucket-wise)
        self._bucket_memo: dict[tuple[str, str], set[str]] = {}
        self._dirty_buckets: set[tuple[str, str]] = set()
        self._size_memo: dict[tuple[str, str], int] = {}

        # write-ahead event mirror (streaming write path)
        self._pending_journal: list[tuple[str, str, str]] = []

        self._usage = _SqliteUsage(self)
        self._lineage = _SqliteLineage(self)

    # -- connection plumbing -----------------------------------------------

    def _init_schema(self) -> None:
        (schema_version,) = self._conn.execute(
            "PRAGMA user_version"
        ).fetchone()
        if schema_version not in (0, SCHEMA_VERSION):
            self._conn.close()
            raise CatalogError(
                f"unsupported catalog database schema version "
                f"{schema_version}; this build reads version "
                f"{SCHEMA_VERSION} — refusing to guess at the layout"
            )
        with self._conn:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            if schema_version == 0:
                self._conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")

    def _read_connection(self) -> "sqlite3.Connection | None":
        """This thread's read-only connection (None for ``:memory:``).

        Lazily opened per thread and registered with the backend so
        :meth:`close` can release every connection.  ``query_only`` makes
        accidental writes through a read connection fail loudly — all
        writes belong to the write connection under the backend lock.
        """
        if not isinstance(self._path, Path):
            return None
        conn = getattr(self._read_local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(str(self._path), check_same_thread=False)
            conn.execute("PRAGMA query_only=ON")
            with self._lock:
                if self._closed:
                    conn.close()
                    raise CatalogError("catalog database is closed")
                self._read_conns.append(conn)
            self._read_local.conn = conn
        return conn

    def _execute(self, sql: str, params: tuple = ()) -> list[tuple]:
        started = time.perf_counter()
        try:
            read = self._read_connection()
            if read is None:
                with self._lock:
                    return self._conn.execute(sql, params).fetchall()
            return read.execute(sql, params).fetchall()
        finally:
            _observe_query(sql, (time.perf_counter() - started) * 1000.0)

    def _execute_one(self, sql: str, params: tuple = ()) -> tuple:
        started = time.perf_counter()
        try:
            read = self._read_connection()
            if read is None:
                with self._lock:
                    return self._conn.execute(sql, params).fetchone()
            return read.execute(sql, params).fetchone()
        finally:
            _observe_query(sql, (time.perf_counter() - started) * 1000.0)

    # -- version counters --------------------------------------------------

    def _load_versions(self) -> None:
        row = self._execute_one(
            "SELECT value FROM meta WHERE key='versions'"
        )
        if row is None:
            return
        stored = json.loads(row[0])
        self._version = int(stored.get("__total__", 0))
        for domain in DOMAINS:
            self._versions[domain] = int(stored.get(domain, 0))

    def version(self) -> int:
        return self._version

    def domain_version(self, domain: str) -> int:
        return self._versions[domain]

    def domain_versions(self) -> dict[str, int]:
        return dict(self._versions)

    def bump(self, domains: Iterable[str] = ()) -> None:
        self._version += 1
        for domain in domains or ALL_DOMAINS:
            self._versions[domain] += 1

    def restore_versions(self, versions: Mapping[str, int],
                         total: int | None = None) -> None:
        for domain, counter in versions.items():
            if domain in self._versions:
                self._versions[domain] = max(self._versions[domain], counter)
        if total is not None:
            self._version = max(self._version, total)

    # -- membership --------------------------------------------------------

    def _ensure_membership(self) -> None:
        if self._membership_loaded:
            return
        with self._lock:
            if self._membership_loaded:
                return
            for (data,) in self._execute("SELECT data FROM users"):
                user = user_from_dict(json.loads(data))
                self._users[user.id] = user
                self._users_by_name.setdefault(
                    user.name.lower(), set()
                ).add(user.id)
            for (data,) in self._execute("SELECT data FROM teams"):
                team = team_from_dict(json.loads(data))
                self._teams[team.id] = team
            self._membership_loaded = True

    def put_user(self, user: User) -> None:
        self._ensure_membership()
        previous = self._users.get(user.id)
        if previous is not None:
            names = self._users_by_name.get(previous.name.lower())
            if names is not None:
                names.discard(user.id)
        self._users[user.id] = user
        self._users_by_name.setdefault(user.name.lower(), set()).add(user.id)
        self._dirty_users.add(user.id)

    def get_user(self, user_id: str) -> User | None:
        self._ensure_membership()
        return self._users.get(user_id)

    def user_ids(self) -> list[str]:
        self._ensure_membership()
        return sorted(self._users)

    def user_count(self) -> int:
        if not self._membership_loaded:
            return int(self._execute_one("SELECT COUNT(*) FROM users")[0])
        return len(self._users)

    def user_ids_by_name(self, name_lower: str) -> frozenset[str]:
        self._ensure_membership()
        return frozenset(self._users_by_name.get(name_lower, ()))

    def put_team(self, team: Team) -> None:
        self._ensure_membership()
        self._teams[team.id] = team
        self._dirty_teams.add(team.id)

    def get_team(self, team_id: str) -> Team | None:
        self._ensure_membership()
        return self._teams.get(team_id)

    def team_ids(self) -> list[str]:
        self._ensure_membership()
        return sorted(self._teams)

    def team_count(self) -> int:
        if not self._membership_loaded:
            return int(self._execute_one("SELECT COUNT(*) FROM teams")[0])
        return len(self._teams)

    # -- entities ----------------------------------------------------------

    def _ensure_entities(self) -> None:
        if self._entities_loaded:
            return
        with self._lock:
            if self._entities_loaded:
                return
            for artifact_id, data in self._execute(
                "SELECT id, data FROM artifacts"
            ):
                # The overlay cache may hold a newer unflushed revision.
                if artifact_id not in self._artifacts:
                    self._artifacts[artifact_id] = artifact_from_dict(
                        json.loads(data)
                    )
            self._entities_loaded = True

    def put_artifact(self, artifact: Artifact) -> None:
        with self._lock:
            previous = self.get_artifact(artifact.id)
            if previous is not None:
                for kind, key in index_entries(previous):
                    self._mutate_bucket(kind, key, previous.id, add=False)
            elif not self._entities_loaded:
                self._added_ids.add(artifact.id)
            self._artifacts[artifact.id] = artifact
            self._dirty_artifacts.add(artifact.id)
            self._ids_memo = None
            for kind, key in index_entries(artifact):
                self._mutate_bucket(kind, key, artifact.id, add=True)

    def get_artifact(self, artifact_id: str) -> Artifact | None:
        cached = self._artifacts.get(artifact_id)
        if cached is not None or self._entities_loaded:
            return cached
        row = self._execute_one(
            "SELECT data FROM artifacts WHERE id=?", (artifact_id,)
        )
        if row is None:
            return None
        artifact = artifact_from_dict(json.loads(row[0]))
        with self._lock:
            self._artifacts.setdefault(artifact_id, artifact)
        return self._artifacts[artifact_id]

    def has_artifact(self, artifact_id: str) -> bool:
        if artifact_id in self._artifacts:
            return True
        if self._entities_loaded:
            return False
        return self._execute_one(
            "SELECT EXISTS(SELECT 1 FROM artifacts WHERE id=?)",
            (artifact_id,),
        )[0] == 1

    def artifact_ids(self) -> list[str]:
        if self._entities_loaded:
            return sorted(self._artifacts)
        if self._ids_memo is None:
            if self._stored_ids is None:
                self._stored_ids = [
                    row[0] for row in
                    self._execute("SELECT id FROM artifacts ORDER BY id")
                ]
            self._ids_memo = sorted(set(self._stored_ids)
                                    | self._added_ids)
        return list(self._ids_memo)

    def artifact_count(self) -> int:
        if self._entities_loaded:
            return len(self._artifacts)
        if self._stored_count is None:
            self._stored_count = int(
                self._execute_one("SELECT COUNT(*) FROM artifacts")[0]
            )
        return self._stored_count + len(self._added_ids)

    # -- secondary indexes -------------------------------------------------

    def _bucket(self, kind: str, key: str) -> set[str]:
        bucket = self._bucket_memo.get((kind, key))
        if bucket is not None:
            return bucket
        # Hydrate outside the lock so concurrent readers pulling different
        # buckets overlap their SELECTs; setdefault under the lock keeps
        # exactly one winner (and never clobbers a bucket a writer already
        # hydrated and mutated while our SELECT was running).
        if self._fresh:
            loaded: set[str] = set()
        else:
            loaded = {
                row[0] for row in self._execute(
                    "SELECT id FROM postings WHERE kind=? AND key=?",
                    (kind, key),
                )
            }
        with self._lock:
            return self._bucket_memo.setdefault((kind, key), loaded)

    def _mutate_bucket(self, kind: str, key: str, artifact_id: str,
                       add: bool) -> None:
        bucket = self._bucket(kind, key)
        if add:
            bucket.add(artifact_id)
        else:
            bucket.discard(artifact_id)
        self._dirty_buckets.add((kind, key))
        self._size_memo.pop((kind, key), None)

    def index_ids(self, kind: str, key: str) -> frozenset[str]:
        return frozenset(self._bucket(kind, key))

    def index_size(self, kind: str, key: str) -> int:
        bucket = self._bucket_memo.get((kind, key))
        if bucket is not None:
            return len(bucket)
        size = self._size_memo.get((kind, key))
        if size is not None:
            return size
        if self._fresh:
            size = 0
        else:
            size = int(self._execute_one(
                "SELECT COUNT(*) FROM postings WHERE kind=? AND key=?",
                (kind, key),
            )[0])
        self._size_memo[(kind, key)] = size
        return size

    def index_keys(self, kind: str) -> list[str]:
        keys: set[str] = set()
        if not self._fresh:
            keys.update(
                row[0] for row in self._execute(
                    "SELECT DISTINCT key FROM postings WHERE kind=?",
                    (kind,),
                )
            )
        # Hydrated buckets are the truth for their keys (unflushed writes).
        for (bucket_kind, key), ids in self._bucket_memo.items():
            if bucket_kind != kind:
                continue
            if ids:
                keys.add(key)
            else:
                keys.discard(key)
        return sorted(keys)

    def intersect_tokens(self, tokens: list[str]) -> list[str]:
        unique = sorted(set(tokens))
        if not unique:
            return []
        if any(("token", token) in self._dirty_buckets for token in unique):
            # A touched bucket has unflushed writes; the generic
            # hydrate-and-intersect path sees them, SQL would not.
            return super().intersect_tokens(unique)
        sql = " INTERSECT ".join(
            ["SELECT id FROM postings WHERE kind='token' AND key=?"]
            * len(unique)
        )
        return [row[0] for row in
                self._execute(sql + " ORDER BY id", tuple(unique))]

    # -- usage and lineage -------------------------------------------------

    @property
    def usage(self) -> UsageLog:
        return self._usage

    @property
    def lineage(self) -> LineageGraph:
        return self._lineage

    # -- state kv ----------------------------------------------------------

    def get_state(self, key: str) -> str | None:
        return self._state.get(key)

    def set_state(self, key: str, value: str) -> None:
        self._state[key] = value
        self._dirty_state.add(key)

    def state_keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._state if k.startswith(prefix))

    # -- lifecycle ---------------------------------------------------------

    def hydrate(self, domains: Iterable[str] = ()) -> None:
        wanted = set(domains) or set(ALL_DOMAINS) | {"membership"}
        if "membership" in wanted:
            self._ensure_membership()
        if "entities" in wanted:
            self._ensure_entities()
        if "usage" in wanted:
            self._usage._ensure_stats()
            self._usage._ensure_events()
        if "lineage" in wanted:
            self._lineage._graph  # property access hydrates
        if "text" in wanted and not self._fresh:
            with self._lock:
                loaded: dict[tuple[str, str], set[str]] = {}
                for kind, key, artifact_id in self._execute(
                    "SELECT kind, key, id FROM postings"
                ):
                    loaded.setdefault((kind, key), set()).add(artifact_id)
                for bucket_key, ids in loaded.items():
                    # Memoised buckets already reflect unflushed writes.
                    self._bucket_memo.setdefault(bucket_key, ids)

    def journal_event(self, record: object) -> None:
        """Buffer one write-ahead record for the ``catalog_events``
        mirror; persisted with the next :meth:`flush` (same WAL
        transaction as the state it describes)."""
        domain = getattr(record, "domain", "")
        data = json.dumps(dataclasses.asdict(record), sort_keys=True)
        with self._lock:
            self._pending_journal.append(
                (domain, type(record).__name__, data)
            )

    def flush(self) -> None:
        with self._lock, self._conn:
            if self._dirty_artifacts:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO artifacts(id, data) "
                    "VALUES (?, ?)",
                    [(aid, json.dumps(artifact_to_dict(self._artifacts[aid])))
                     for aid in self._dirty_artifacts],
                )
                self._dirty_artifacts.clear()
            if self._added_ids:
                # Flushed additions are now stored rows; fold them into the
                # stored-id memos so they are not counted twice.
                if self._stored_ids is not None:
                    self._stored_ids = sorted(
                        set(self._stored_ids) | self._added_ids
                    )
                if self._stored_count is not None:
                    self._stored_count += len(self._added_ids)
                self._added_ids.clear()
            if self._dirty_buckets:
                self._conn.executemany(
                    "DELETE FROM postings WHERE kind=? AND key=?",
                    sorted(self._dirty_buckets),
                )
                self._conn.executemany(
                    "INSERT INTO postings(kind, key, id) VALUES (?, ?, ?)",
                    [
                        (kind, key, artifact_id)
                        for (kind, key) in sorted(self._dirty_buckets)
                        for artifact_id in self._bucket_memo[(kind, key)]
                    ],
                )
                self._dirty_buckets.clear()
            if self._dirty_users:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO users(id, data) VALUES (?, ?)",
                    [(uid, json.dumps(user_to_dict(self._users[uid])))
                     for uid in self._dirty_users],
                )
                self._dirty_users.clear()
            if self._dirty_teams:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO teams(id, data) VALUES (?, ?)",
                    [(tid, json.dumps(team_to_dict(self._teams[tid])))
                     for tid in self._dirty_teams],
                )
                self._dirty_teams.clear()
            self._usage._flush(self._conn)
            self._lineage._flush(self._conn)
            if self._pending_journal:
                self._conn.executemany(
                    "INSERT INTO catalog_events(domain, kind, data) "
                    "VALUES (?, ?, ?)",
                    self._pending_journal,
                )
                self._pending_journal.clear()
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) "
                "VALUES ('versions', ?)",
                (json.dumps({"__total__": self._version, **self._versions}),),
            )
            if self._dirty_state:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES (?, ?)",
                    [(f"state:{key}", self._state[key])
                     for key in self._dirty_state],
                )
                self._dirty_state.clear()

    def compact(self) -> None:
        self.flush()
        with self._lock:
            # The event mirror is a durability journal, not the source of
            # truth (aggregates and edges are persisted separately), so
            # compaction may prune it freely.
            with self._conn:
                self._conn.execute("DELETE FROM catalog_events")
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            self._conn.execute("VACUUM")

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        with self._lock:
            for conn in self._read_conns:
                conn.close()
            self._read_conns.clear()
            self._read_local = threading.local()
            self._conn.close()
            self._closed = True

    def info(self) -> dict[str, Any]:
        counts = {
            table: int(self._execute_one(f"SELECT COUNT(*) FROM {table}")[0])
            for table in ("artifacts", "users", "teams", "postings",
                          "usage_events", "lineage_edges", "catalog_events")
        }
        size_bytes = (
            self._path.stat().st_size
            if isinstance(self._path, Path) and self._path.exists()
            else 0
        )
        return {
            "backend": "sqlite",
            "path": str(self._path),
            "schema_version": SCHEMA_VERSION,
            "size_bytes": size_bytes,
            "stored": counts,
            "hydrated": {
                "membership": self._membership_loaded,
                "entities": self._entities_loaded,
                "entities_cached": len(self._artifacts),
                "buckets_cached": len(self._bucket_memo),
                "usage_stats": self._usage._stats_loaded,
                "usage_events": self._usage._events_loaded,
                "lineage": self._lineage._loaded,
            },
        }
