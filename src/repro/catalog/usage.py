"""Usage-event log with incrementally maintained aggregates.

The paper's interaction-metadata providers (view counts, recents, favourites,
"frequently viewed by my team") all read from these aggregates; keeping them
incremental lets the scaling benchmarks replay hundreds of thousands of
events without quadratic recomputation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import ItemsView, Sequence

from repro.catalog.model import UsageEvent


@dataclass
class UsageStats:
    """Aggregated interaction metadata for one artifact."""

    view_count: int = 0
    edit_count: int = 0
    open_count: int = 0
    favorite_count: int = 0
    last_viewed_at: float = 0.0
    last_edited_at: float = 0.0
    viewers: set[str] = field(default_factory=set)
    favorited_by: set[str] = field(default_factory=set)

    @property
    def unique_viewers(self) -> int:
        return len(self.viewers)


class UsageLog:
    """Append-only event log plus per-artifact and per-user aggregates."""

    def __init__(self) -> None:
        self._events: list[UsageEvent] = []
        self._stats: dict[str, UsageStats] = defaultdict(UsageStats)
        # Per-user recency: artifact -> last time *this user* touched it.
        self._user_recents: dict[str, dict[str, float]] = defaultdict(dict)

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: UsageEvent) -> None:
        """Append *event* and fold it into the aggregates."""
        self._events.append(event)
        self._fold(event)

    def record_many(self, events: "Sequence[UsageEvent]") -> None:
        """Fold a whole batch in one call.

        The store's streaming write path applies coalesced batches
        through this so the usage domain version bumps once per batch,
        not once per event.
        """
        for event in events:
            self.record(event)

    def _fold(self, event: UsageEvent) -> None:
        """Fold one event into the aggregates (shared with lazy backends,
        which journal the raw event separately from the resident log)."""
        stats = self._stats[event.artifact_id]
        if event.action == "view":
            stats.view_count += 1
            stats.last_viewed_at = max(stats.last_viewed_at, event.timestamp)
            stats.viewers.add(event.user_id)
        elif event.action == "open":
            stats.open_count += 1
            stats.viewers.add(event.user_id)
        elif event.action == "edit":
            stats.edit_count += 1
            stats.last_edited_at = max(stats.last_edited_at, event.timestamp)
        elif event.action == "favorite":
            if event.user_id not in stats.favorited_by:
                stats.favorited_by.add(event.user_id)
                stats.favorite_count += 1
        elif event.action == "unfavorite":
            if event.user_id in stats.favorited_by:
                stats.favorited_by.discard(event.user_id)
                stats.favorite_count -= 1
        recents = self._user_recents[event.user_id]
        previous = recents.get(event.artifact_id, 0.0)
        recents[event.artifact_id] = max(previous, event.timestamp)

    def stats(self, artifact_id: str) -> UsageStats:
        """Aggregates for *artifact_id* (zeros if never used)."""
        return self._stats.get(artifact_id, UsageStats())

    def all_stats(self) -> "ItemsView[str, UsageStats]":
        """Every artifact's aggregates in one pass (live view, no copy).

        The batch field resolver snapshots usage-derived ranking fields
        from this instead of issuing one :meth:`stats` lookup per
        (artifact, field) pair per search.
        """
        return self._stats.items()

    def events(self) -> tuple[UsageEvent, ...]:
        """All events in arrival order (a copy-free snapshot)."""
        return tuple(self._events)

    def recent_for_user(self, user_id: str, limit: int = 20) -> list[str]:
        """Artifact ids *user_id* touched, most recent first."""
        recents = self._user_recents.get(user_id, {})
        ordered = sorted(recents.items(), key=lambda kv: (-kv[1], kv[0]))
        return [artifact_id for artifact_id, _ in ordered[:limit]]

    def favorites_of(self, user_id: str) -> list[str]:
        """Artifact ids currently favourited by *user_id* (sorted for determinism)."""
        return sorted(
            artifact_id
            for artifact_id, stats in self._stats.items()
            if user_id in stats.favorited_by
        )

    def most_viewed(self, limit: int = 20) -> list[tuple[str, int]]:
        """``(artifact_id, view_count)`` pairs, most viewed first."""
        ranked = sorted(
            ((aid, s.view_count) for aid, s in self._stats.items() if s.view_count),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:limit]

    def views_by_users(self, user_ids: set[str]) -> dict[str, int]:
        """Per-artifact view counts restricted to events by *user_ids*.

        Used by the "popular with my team" provider; computed from the raw
        log because per-(user, artifact) counters are not worth maintaining
        for every user.
        """
        counts: dict[str, int] = defaultdict(int)
        for event in self._events:
            if event.action == "view" and event.user_id in user_ids:
                counts[event.artifact_id] += 1
        return dict(counts)
