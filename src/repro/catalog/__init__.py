"""Enterprise data-catalog substrate.

The paper evaluates Humboldt inside Sigma Workbook against Sigma's production
metadata.  This package is the open substitute: a catalog of *data artifacts*
(tables, datasets, visualizations, dashboards, workbooks, documents) with
users, teams, badges, a usage-event log and a lineage graph — everything the
paper's metadata providers draw from.
"""

from repro.catalog.ingest import Ingestor, IngestorRegistry
from repro.catalog.lineage import LineageEdge, LineageGraph
from repro.catalog.model import (
    Artifact,
    ArtifactType,
    BadgeAssignment,
    Column,
    Team,
    UsageEvent,
    User,
)
from repro.catalog.persistence import load_catalog, save_catalog
from repro.catalog.segments import export_segments, import_segments
from repro.catalog.store import CatalogStore
from repro.catalog.usage import UsageLog, UsageStats

__all__ = [
    "Artifact",
    "ArtifactType",
    "BadgeAssignment",
    "CatalogStore",
    "Column",
    "Ingestor",
    "IngestorRegistry",
    "LineageEdge",
    "LineageGraph",
    "Team",
    "UsageEvent",
    "UsageLog",
    "UsageStats",
    "User",
    "export_segments",
    "import_segments",
    "load_catalog",
    "save_catalog",
]
