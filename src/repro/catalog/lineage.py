"""Lineage graph: which artifacts derive from which.

Edges point *downstream*: ``table -> visualization -> dashboard`` means the
visualization was built from the table and embedded in the dashboard.  The
hierarchy view (Section 6.2) and the lineage provider both traverse this
graph; it is a thin, typed wrapper over :mod:`networkx`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.errors import CatalogError


@dataclass(frozen=True)
class LineageEdge:
    """A derivation edge from *src* (upstream) to *dst* (downstream)."""

    src: str
    dst: str
    kind: str = "derives"

    VALID_KINDS = ("derives", "embeds", "joins")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(
                f"unknown lineage kind {self.kind!r}; expected one of "
                f"{self.VALID_KINDS}"
            )


class LineageGraph:
    """Directed acyclic lineage over artifact ids."""

    def __init__(self, on_mutate: Callable[[], None] | None = None) -> None:
        # Callers add edges through the graph directly (bulk loaders,
        # persistence), bypassing the owning store's mutators — the hook
        # lets the store keep its version counters truthful anyway.
        self._graph = nx.DiGraph()
        self._on_mutate = on_mutate
        # Fires once per accepted edge, *before* on_mutate, with
        # (src, dst, kind) — the owning store appends the write-ahead
        # event record here so it lands ahead of the version bump.
        self.on_edge: Callable[[str, str, str], None] | None = None

    def __contains__(self, artifact_id: str) -> bool:
        return artifact_id in self._graph

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def add_edge(self, src: str, dst: str, kind: str = "derives") -> None:
        """Record that *dst* derives from *src*; rejects cycles.

        The cycle check is a targeted reachability query (would *src* be
        reachable from *dst*?) rather than a whole-graph DAG check, so bulk
        loading large catalogs stays near-linear.
        """
        edge = LineageEdge(src, dst, kind)  # validates kind
        if src == dst:
            raise CatalogError(f"self-lineage is not allowed: {src!r}")
        creates_cycle = (
            src in self._graph
            and dst in self._graph
            and nx.has_path(self._graph, dst, src)
        )
        if creates_cycle:
            raise CatalogError(
                f"lineage edge {src!r} -> {dst!r} would create a cycle"
            )
        self._graph.add_edge(src, dst, kind=edge.kind)
        if self.on_edge is not None:
            self.on_edge(src, dst, edge.kind)
        if self._on_mutate is not None:
            self._on_mutate()

    def upstream(self, artifact_id: str, depth: int | None = None) -> list[str]:
        """Ancestors of *artifact_id* within *depth* hops (all if None)."""
        return self._reachable(artifact_id, depth, reverse=True)

    def downstream(self, artifact_id: str, depth: int | None = None) -> list[str]:
        """Descendants of *artifact_id* within *depth* hops (all if None)."""
        return self._reachable(artifact_id, depth, reverse=False)

    def children(self, artifact_id: str) -> list[str]:
        """Direct downstream artifacts, sorted for determinism."""
        if artifact_id not in self._graph:
            return []
        return sorted(self._graph.successors(artifact_id))

    def parents(self, artifact_id: str) -> list[str]:
        """Direct upstream artifacts, sorted for determinism."""
        if artifact_id not in self._graph:
            return []
        return sorted(self._graph.predecessors(artifact_id))

    def roots(self) -> list[str]:
        """Artifacts with no upstream (typically raw tables)."""
        return sorted(n for n in self._graph if self._graph.in_degree(n) == 0)

    def edges(self) -> list[LineageEdge]:
        """All edges, sorted for determinism."""
        return sorted(
            (
                LineageEdge(src, dst, data.get("kind", "derives"))
                for src, dst, data in self._graph.edges(data=True)
            ),
            key=lambda e: (e.src, e.dst),
        )

    def subgraph_around(
        self, artifact_id: str, depth: int = 2
    ) -> tuple[list[str], list[LineageEdge]]:
        """Nodes and edges within *depth* hops in either direction.

        This is the payload shape the graph view renders for "show me the
        lineage of what I'm looking at".
        """
        if artifact_id not in self._graph:
            return ([artifact_id], [])
        nodes = {artifact_id}
        nodes.update(self.upstream(artifact_id, depth))
        nodes.update(self.downstream(artifact_id, depth))
        edges = [
            LineageEdge(src, dst, data.get("kind", "derives"))
            for src, dst, data in self._graph.edges(data=True)
            if src in nodes and dst in nodes
        ]
        edges.sort(key=lambda e: (e.src, e.dst))
        return (sorted(nodes), edges)

    def _reachable(
        self, artifact_id: str, depth: int | None, reverse: bool
    ) -> list[str]:
        if artifact_id not in self._graph:
            return []
        graph = self._graph.reverse(copy=False) if reverse else self._graph
        if depth is None:
            reached = nx.descendants(graph, artifact_id)
        else:
            lengths = nx.single_source_shortest_path_length(
                graph, artifact_id, cutoff=depth
            )
            reached = set(lengths) - {artifact_id}
        return sorted(reached)
