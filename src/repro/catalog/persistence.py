"""JSON persistence for catalogs.

Catalogs serialise to a single JSON document so synthetic corpora can be
snapshotted, diffed and shipped alongside experiments.  The format is
versioned; loading an unknown version fails loudly rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.catalog.model import Artifact, BadgeAssignment, Column, Team, UsageEvent, User
from repro.catalog.store import CatalogStore
from repro.errors import CatalogError
from repro.util.clock import SimulationClock

FORMAT_VERSION = 1


def catalog_to_dict(store: CatalogStore) -> dict[str, Any]:
    """Serialise *store* (entities, usage log, lineage) to plain dicts."""
    return {
        "version": FORMAT_VERSION,
        "epoch": store.clock.epoch,
        "now": store.clock.now(),
        "users": [
            {
                "id": u.id,
                "name": u.name,
                "role": u.role,
                "team_ids": list(u.team_ids),
            }
            for u in store.users()
        ],
        "teams": [
            {
                "id": t.id,
                "name": t.name,
                "admin_ids": list(t.admin_ids),
                "member_ids": list(t.member_ids),
            }
            for t in store.teams()
        ],
        "artifacts": [_artifact_to_dict(a) for a in store.artifacts()],
        "events": [
            {
                "artifact_id": e.artifact_id,
                "user_id": e.user_id,
                "action": e.action,
                "timestamp": e.timestamp,
            }
            for e in store.usage.events()
        ],
        "lineage": [
            {"src": e.src, "dst": e.dst, "kind": e.kind} for e in store.lineage.edges()
        ],
    }


def catalog_from_dict(payload: dict[str, Any]) -> CatalogStore:
    """Rebuild a :class:`CatalogStore` from :func:`catalog_to_dict` output."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CatalogError(
            f"unsupported catalog format version {version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    clock = SimulationClock(epoch=payload.get("epoch", SimulationClock().epoch))
    store = CatalogStore(clock=clock)
    for u in payload.get("users", []):
        store.add_user(
            User(
                id=u["id"],
                name=u["name"],
                role=u.get("role", "analyst"),
                team_ids=tuple(u.get("team_ids", ())),
            )
        )
    for t in payload.get("teams", []):
        store.add_team(
            Team(
                id=t["id"],
                name=t["name"],
                admin_ids=tuple(t.get("admin_ids", ())),
                member_ids=tuple(t.get("member_ids", ())),
            )
        )
    for a in payload.get("artifacts", []):
        store.add_artifact(_artifact_from_dict(a))
    for e in payload.get("events", []):
        store.record_event(
            UsageEvent(
                artifact_id=e["artifact_id"],
                user_id=e["user_id"],
                action=e["action"],
                timestamp=e["timestamp"],
            )
        )
    for edge in payload.get("lineage", []):
        store.lineage.add_edge(edge["src"], edge["dst"], edge.get("kind", "derives"))
    target_now = payload.get("now")
    if target_now is not None and target_now > clock.now():
        clock.advance(seconds=target_now - clock.now())
    return store


def save_catalog(store: CatalogStore, path: str | Path) -> Path:
    """Write *store* as JSON to *path*; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(catalog_to_dict(store), handle, indent=1)
    return path


def load_catalog(path: str | Path) -> CatalogStore:
    """Read a catalog previously written by :func:`save_catalog`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return catalog_from_dict(json.load(handle))


def _artifact_to_dict(artifact: Artifact) -> dict[str, Any]:
    return {
        "id": artifact.id,
        "name": artifact.name,
        "type": artifact.artifact_type.value,
        "description": artifact.description,
        "owner_id": artifact.owner_id,
        "team_ids": list(artifact.team_ids),
        "created_at": artifact.created_at,
        "modified_at": artifact.modified_at,
        "tags": list(artifact.tags),
        "badges": [
            {"badge": b.badge, "granted_by": b.granted_by, "granted_at": b.granted_at}
            for b in artifact.badges
        ],
        "columns": [
            {
                "name": c.name,
                "dtype": c.dtype,
                "sample_values": list(c.sample_values),
            }
            for c in artifact.columns
        ],
        "extra": dict(artifact.extra),
    }


def _artifact_from_dict(data: dict[str, Any]) -> Artifact:
    return Artifact(
        id=data["id"],
        name=data["name"],
        artifact_type=data["type"],
        description=data.get("description", ""),
        owner_id=data.get("owner_id", ""),
        team_ids=tuple(data.get("team_ids", ())),
        created_at=data.get("created_at", 0.0),
        modified_at=data.get("modified_at", 0.0),
        tags=tuple(data.get("tags", ())),
        badges=tuple(
            BadgeAssignment(
                badge=b["badge"],
                granted_by=b["granted_by"],
                granted_at=b.get("granted_at", 0.0),
            )
            for b in data.get("badges", ())
        ),
        columns=tuple(
            Column(
                name=c["name"],
                dtype=c.get("dtype", "string"),
                sample_values=tuple(c.get("sample_values", ())),
            )
            for c in data.get("columns", ())
        ),
        extra=dict(data.get("extra", {})),
    )
