"""JSON persistence for catalogs.

Catalogs serialise to a single JSON document so synthetic corpora can be
snapshotted, diffed and shipped alongside experiments.  The format is
versioned; loading an unknown version fails loudly rather than guessing.

Version history:

``1``
    Entities, usage events and lineage edges; no version counters.
``2``
    Adds the per-domain mutation counters (``domain_versions`` plus the
    ``total_version`` sum).  Without them, a saved-then-reloaded catalog
    restarts its counters near zero, and dependency-aware engine caches
    keyed on ``(domain, version)`` could collide with keys minted against
    the pre-save catalog.  Loading a v1 document still works and applies
    the conservative fallback: one full bump across every domain, which
    can only over-invalidate, never serve stale results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.catalog.codecs import (
    artifact_from_dict,
    artifact_to_dict,
    event_from_dict,
    event_to_dict,
    team_from_dict,
    team_to_dict,
    user_from_dict,
    user_to_dict,
)
from repro.catalog.store import CatalogStore
from repro.errors import CatalogError
from repro.util.clock import SimulationClock

FORMAT_VERSION = 2

#: Every format version this build can read.
SUPPORTED_VERSIONS = (1, 2)


def catalog_to_dict(store: CatalogStore) -> dict[str, Any]:
    """Serialise *store* (entities, usage log, lineage) to plain dicts."""
    return {
        "version": FORMAT_VERSION,
        "epoch": store.clock.epoch,
        "now": store.clock.now(),
        "domain_versions": store.domain_versions,
        "total_version": store.version,
        "users": [user_to_dict(u) for u in store.users()],
        "teams": [team_to_dict(t) for t in store.teams()],
        "artifacts": [artifact_to_dict(a) for a in store.artifacts()],
        "events": [event_to_dict(e) for e in store.usage.events()],
        "lineage": [
            {"src": e.src, "dst": e.dst, "kind": e.kind} for e in store.lineage.edges()
        ],
    }


def catalog_from_dict(payload: dict[str, Any]) -> CatalogStore:
    """Rebuild a :class:`CatalogStore` from :func:`catalog_to_dict` output."""
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise CatalogError(
            f"unsupported catalog format version {version!r}; "
            f"this build reads versions {SUPPORTED_VERSIONS} "
            f"(writes {FORMAT_VERSION}) — refusing to guess at the layout"
        )
    clock = SimulationClock(epoch=payload.get("epoch", SimulationClock().epoch))
    store = CatalogStore(clock=clock)
    for u in payload.get("users", []):
        store.add_user(user_from_dict(u))
    for t in payload.get("teams", []):
        store.add_team(team_from_dict(t))
    for a in payload.get("artifacts", []):
        store.add_artifact(artifact_from_dict(a))
    for e in payload.get("events", []):
        store.record_event(event_from_dict(e))
    for edge in payload.get("lineage", []):
        store.lineage.add_edge(edge["src"], edge["dst"], edge.get("kind", "derives"))
    target_now = payload.get("now")
    if target_now is not None and target_now > clock.now():
        clock.advance(seconds=target_now - clock.now())
    if version >= 2:
        store.restore_domain_versions(
            payload.get("domain_versions", {}),
            payload.get("total_version"),
        )
    else:
        # v1 snapshots carry no counters: bump every domain once so the
        # reloaded catalog's versions are strictly past the rebuild's —
        # over-invalidation is safe, stale cache hits are not.
        store._mutated()
    return store


def save_catalog(store: CatalogStore, path: str | Path) -> Path:
    """Write *store* as JSON to *path*; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(catalog_to_dict(store), handle, indent=1)
    return path


def load_catalog(path: str | Path) -> CatalogStore:
    """Read a catalog previously written by :func:`save_catalog`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return catalog_from_dict(json.load(handle))
