"""Storage backends for the catalog.

:class:`~repro.catalog.store.CatalogStore` is the object every provider,
planner and view is handed — but *where the bytes live* is a separate
concern.  A :class:`CatalogBackend` owns the raw state the store exposes:

* entity records (artifacts, users, teams),
* the secondary index buckets (by type, owner, badge, grantor, tag, team
  and searchable-text token),
* the usage log and the lineage graph,
* the per-domain mutation counters the invalidation layer keys on, and
* a small key/value state area (clock snapshot, ingestion fingerprints).

:class:`InMemoryBackend` is the historical dict-based implementation —
everything resident, cold-start rebuilds the world.  The SQLite backend
(:mod:`.sqlite_backend`) keeps the same contract on disk with per-domain
lazy hydration so cold-start is O(touched), not O(catalog).

Backends are an implementation detail of :mod:`repro.catalog`: nothing
outside the package may import them directly (enforced by a static-scan
test) — callers go through ``CatalogStore`` / ``CatalogStore.open``.

**Stability: internal.**  Import through :mod:`repro` / the package
facades; this module's names may change without notice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Any, Iterable, Iterator, Mapping

from repro.catalog.domains import ALL_DOMAINS, DOMAIN_LINEAGE, DOMAINS
from repro.catalog.lineage import LineageGraph
from repro.catalog.model import Artifact, Team, User
from repro.catalog.usage import UsageLog

#: Secondary-index kinds every backend must maintain.  Keys are plain
#: strings the store normalises before they reach the backend (types are
#: coerced to their enum value, tags/tokens lowercased, badge+grantor
#: pairs joined with :data:`GRANTOR_SEP`).
INDEX_KINDS: tuple[str, ...] = (
    "type", "owner", "badge", "badge_grantor", "tag", "team", "token",
)

#: Separator for the composite ``badge_grantor`` key; a unit separator
#: cannot appear in badge names or user ids.
GRANTOR_SEP = "\x1f"


def grantor_key(badge: str, granted_by: str) -> str:
    """The ``badge_grantor`` bucket key for one (badge, grantor) pair."""
    return f"{badge}{GRANTOR_SEP}{granted_by}"


def index_entries(artifact: Artifact) -> Iterator[tuple[str, str]]:
    """Yield every ``(kind, key)`` bucket *artifact* belongs to.

    This is the single definition of what "indexed" means; both backends
    apply it symmetrically on insert and replace so their buckets can
    never diverge.
    """
    yield ("type", artifact.artifact_type.value)
    if artifact.owner_id:
        yield ("owner", artifact.owner_id)
    for team_id in artifact.team_ids:
        yield ("team", team_id)
    for assignment in artifact.badges:
        yield ("badge", assignment.badge)
        yield ("badge_grantor", grantor_key(assignment.badge,
                                            assignment.granted_by))
    for tag in artifact.tags:
        yield ("tag", tag.lower())
    for token in set(artifact.iter_text_tokens()):
        yield ("token", token)


class CatalogBackend(ABC):
    """Abstract storage contract behind :class:`~repro.catalog.store.CatalogStore`.

    The store owns *semantics* — validation, duplicate detection, which
    domains a write touches, memoisation — and delegates *state* here.
    Implementations must be observably interchangeable: the conformance
    suite in ``tests/test_catalog_backends.py`` runs the same assertions
    (including a hypothesis interleaving property) against every backend.
    """

    # -- version counters --------------------------------------------------

    @abstractmethod
    def version(self) -> int:
        """Total write count across all domains."""

    @abstractmethod
    def domain_version(self, domain: str) -> int:
        """Write count of one domain; unknown domains raise KeyError."""

    @abstractmethod
    def domain_versions(self) -> dict[str, int]:
        """A copy of every domain's counter."""

    @abstractmethod
    def bump(self, domains: Iterable[str] = ()) -> None:
        """Record a write to *domains* (all of them when empty)."""

    @abstractmethod
    def restore_versions(self, versions: Mapping[str, int],
                         total: int | None = None) -> None:
        """Merge persisted counters in, never moving any counter backwards."""

    # -- membership --------------------------------------------------------

    @abstractmethod
    def put_user(self, user: User) -> None: ...

    @abstractmethod
    def get_user(self, user_id: str) -> User | None: ...

    @abstractmethod
    def user_ids(self) -> list[str]: ...

    @abstractmethod
    def user_count(self) -> int: ...

    @abstractmethod
    def user_ids_by_name(self, name_lower: str) -> frozenset[str]: ...

    @abstractmethod
    def put_team(self, team: Team) -> None: ...

    @abstractmethod
    def get_team(self, team_id: str) -> Team | None: ...

    @abstractmethod
    def team_ids(self) -> list[str]: ...

    @abstractmethod
    def team_count(self) -> int: ...

    # -- entities ----------------------------------------------------------

    @abstractmethod
    def put_artifact(self, artifact: Artifact) -> None:
        """Insert or replace one artifact, maintaining every index bucket."""

    @abstractmethod
    def get_artifact(self, artifact_id: str) -> Artifact | None: ...

    @abstractmethod
    def has_artifact(self, artifact_id: str) -> bool: ...

    @abstractmethod
    def artifact_ids(self) -> list[str]:
        """All artifact ids, sorted."""

    @abstractmethod
    def artifact_count(self) -> int: ...

    # -- secondary indexes -------------------------------------------------

    @abstractmethod
    def index_ids(self, kind: str, key: str) -> frozenset[str]:
        """The bucket for ``(kind, key)``; empty when unindexed."""

    @abstractmethod
    def index_size(self, kind: str, key: str) -> int:
        """Bucket size without materialising the bucket (planner path)."""

    @abstractmethod
    def index_keys(self, kind: str) -> list[str]:
        """Sorted keys of *kind* with at least one member."""

    def intersect_tokens(self, tokens: list[str]) -> list[str]:
        """Artifact ids in every token bucket, sorted.

        Backends may override with a storage-side intersection (the SQLite
        backend pushes it into one SQL query); the default hydrates the
        buckets smallest-first so the running intersection stays minimal.
        """
        if not tokens:
            return []
        ordered = sorted(tokens, key=lambda t: self.index_size("token", t))
        result: set[str] | None = None
        for token in ordered:
            ids = self.index_ids("token", token)
            result = set(ids) if result is None else result & ids
            if not result:
                return []
        return sorted(result) if result else []

    # -- usage and lineage -------------------------------------------------

    @property
    @abstractmethod
    def usage(self) -> UsageLog:
        """The usage log (API of :class:`~repro.catalog.usage.UsageLog`)."""

    @property
    @abstractmethod
    def lineage(self) -> LineageGraph:
        """The lineage graph (API of :class:`~repro.catalog.lineage.LineageGraph`)."""

    # -- state kv (clock snapshot, ingestion fingerprints) -----------------

    @abstractmethod
    def get_state(self, key: str) -> str | None: ...

    @abstractmethod
    def set_state(self, key: str, value: str) -> None: ...

    @abstractmethod
    def state_keys(self, prefix: str = "") -> list[str]: ...

    # -- lifecycle ---------------------------------------------------------

    def hydrate(self, domains: Iterable[str] = ()) -> None:
        """Make *domains* fully resident (all of them when empty).

        Full-scan paths (bulk export, ``store.artifacts()`` iteration)
        call this so lazy backends load in one bulk read instead of one
        point read per record.  No-op for resident backends.
        """

    def journal_event(self, record: object) -> None:
        """Mirror one write-ahead event record (see
        :mod:`repro.catalog.events`) into durable storage.  No-op for
        in-memory backends; the sqlite backend appends it to the
        ``catalog_events`` table inside the WAL."""

    def flush(self) -> None:
        """Persist pending writes (no-op for fully resident backends)."""

    def compact(self) -> None:
        """Reclaim storage space (no-op for fully resident backends)."""

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()

    def info(self) -> dict[str, Any]:
        """Storage diagnostics for ``catalog info`` (backend-specific)."""
        return {"backend": type(self).__name__}


class InMemoryBackend(CatalogBackend):
    """The historical dict-based storage: everything resident, no disk.

    This is byte-for-byte the state layout ``CatalogStore`` used to own
    inline; it remains the default so ``CatalogStore()`` keeps its exact
    pre-refactor behaviour and cost profile.
    """

    def __init__(self) -> None:
        self._version = 0
        self._versions: dict[str, int] = {domain: 0 for domain in DOMAINS}
        self._artifacts: dict[str, Artifact] = {}
        self._users: dict[str, User] = {}
        self._teams: dict[str, Team] = {}
        self._users_by_name: dict[str, set[str]] = defaultdict(set)
        self._buckets: dict[str, dict[str, set[str]]] = {
            kind: defaultdict(set) for kind in INDEX_KINDS
        }
        self._usage = UsageLog()
        self._lineage = LineageGraph(
            on_mutate=lambda: self.bump((DOMAIN_LINEAGE,))
        )
        self._state: dict[str, str] = {}

    # -- version counters --------------------------------------------------

    def version(self) -> int:
        return self._version

    def domain_version(self, domain: str) -> int:
        return self._versions[domain]

    def domain_versions(self) -> dict[str, int]:
        return dict(self._versions)

    def bump(self, domains: Iterable[str] = ()) -> None:
        self._version += 1
        for domain in domains or ALL_DOMAINS:
            self._versions[domain] += 1

    def restore_versions(self, versions: Mapping[str, int],
                         total: int | None = None) -> None:
        for domain, counter in versions.items():
            if domain in self._versions:
                self._versions[domain] = max(self._versions[domain], counter)
        if total is not None:
            self._version = max(self._version, total)

    # -- membership --------------------------------------------------------

    def put_user(self, user: User) -> None:
        previous = self._users.get(user.id)
        if previous is not None:
            self._users_by_name[previous.name.lower()].discard(user.id)
        self._users[user.id] = user
        self._users_by_name[user.name.lower()].add(user.id)

    def get_user(self, user_id: str) -> User | None:
        return self._users.get(user_id)

    def user_ids(self) -> list[str]:
        return sorted(self._users)

    def user_count(self) -> int:
        return len(self._users)

    def user_ids_by_name(self, name_lower: str) -> frozenset[str]:
        return frozenset(self._users_by_name.get(name_lower, ()))

    def put_team(self, team: Team) -> None:
        self._teams[team.id] = team

    def get_team(self, team_id: str) -> Team | None:
        return self._teams.get(team_id)

    def team_ids(self) -> list[str]:
        return sorted(self._teams)

    def team_count(self) -> int:
        return len(self._teams)

    # -- entities ----------------------------------------------------------

    def put_artifact(self, artifact: Artifact) -> None:
        previous = self._artifacts.get(artifact.id)
        if previous is not None:
            for kind, key in index_entries(previous):
                self._buckets[kind][key].discard(previous.id)
        self._artifacts[artifact.id] = artifact
        for kind, key in index_entries(artifact):
            self._buckets[kind][key].add(artifact.id)

    def get_artifact(self, artifact_id: str) -> Artifact | None:
        return self._artifacts.get(artifact_id)

    def has_artifact(self, artifact_id: str) -> bool:
        return artifact_id in self._artifacts

    def artifact_ids(self) -> list[str]:
        return sorted(self._artifacts)

    def artifact_count(self) -> int:
        return len(self._artifacts)

    # -- secondary indexes -------------------------------------------------

    def index_ids(self, kind: str, key: str) -> frozenset[str]:
        buckets = self._buckets.get(kind)
        if buckets is None:
            return frozenset()
        return frozenset(buckets.get(key, ()))

    def index_size(self, kind: str, key: str) -> int:
        buckets = self._buckets.get(kind)
        if buckets is None:
            return 0
        return len(buckets.get(key, ()))

    def index_keys(self, kind: str) -> list[str]:
        buckets = self._buckets.get(kind, {})
        return sorted(key for key, ids in buckets.items() if ids)

    def intersect_tokens(self, tokens: list[str]) -> list[str]:
        # Same semantics as the base implementation, without the frozenset
        # copies — this is the keyword-search hot path.
        if not tokens:
            return []
        buckets = self._buckets["token"]
        ordered = sorted(tokens, key=lambda t: len(buckets.get(t, ())))
        result: set[str] | None = None
        for token in ordered:
            ids = buckets.get(token, set())
            result = set(ids) if result is None else result & ids
            if not result:
                return []
        return sorted(result) if result else []

    # -- usage and lineage -------------------------------------------------

    @property
    def usage(self) -> UsageLog:
        return self._usage

    @property
    def lineage(self) -> LineageGraph:
        return self._lineage

    # -- state kv ----------------------------------------------------------

    def get_state(self, key: str) -> str | None:
        return self._state.get(key)

    def set_state(self, key: str, value: str) -> None:
        self._state[key] = value

    def state_keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._state if k.startswith(prefix))

    # -- lifecycle ---------------------------------------------------------

    def info(self) -> dict[str, Any]:
        return {
            "backend": "memory",
            "resident": True,
            "artifacts": len(self._artifacts),
            "users": len(self._users),
            "teams": len(self._teams),
            "usage_events": len(self._usage),
            "lineage_edges": self._lineage.edge_count,
        }
