"""Metadata domains: the invalidation vocabulary of the catalog.

The catalog's writes are not interchangeable.  A usage event changes what
*interaction* providers (recents, most-viewed) should answer but says
nothing about ownership or lineage; a badge grant is the reverse.  The
execution layer's result cache keys validity on these **domains** so that
the overwhelmingly frequent write — a usage event — does not flush results
of providers that never read usage.

Each domain names one independently-versioned slice of catalog state:

``entities``
    Artifact records and their annotations (badges, tags, types, owners)
    plus the secondary indexes over them.
``usage``
    The usage-event log and its aggregates (views, favourites, recency).
``lineage``
    The derivation graph between artifacts.
``membership``
    Users, teams and who belongs to what.
``text``
    The tokenised searchable-text index.

Providers declare the domains they read (see
:func:`repro.providers.base.depends_on`); :class:`~repro.catalog.store.
CatalogStore` bumps the matching counters on write; and the
:class:`~repro.providers.execution.ExecutionEngine` drops exactly the
cache entries whose endpoint depends on a mutated domain.
"""

from __future__ import annotations

from typing import Iterable

DOMAIN_ENTITIES = "entities"
DOMAIN_USAGE = "usage"
DOMAIN_LINEAGE = "lineage"
DOMAIN_MEMBERSHIP = "membership"
DOMAIN_TEXT = "text"

#: Declaration order is also the display order in stats and docs.
DOMAINS: tuple[str, ...] = (
    DOMAIN_ENTITIES,
    DOMAIN_USAGE,
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_TEXT,
)

ALL_DOMAINS: frozenset[str] = frozenset(DOMAINS)


def coerce_domains(domains: Iterable[str]) -> frozenset[str]:
    """Validate and freeze a dependency declaration.

    Unknown names raise immediately — a typo in a dependency declaration
    would otherwise silently widen (or worse, narrow) invalidation.
    """
    frozen = frozenset(domains)
    unknown = frozen - ALL_DOMAINS
    if unknown:
        raise ValueError(
            f"unknown metadata domain(s) {sorted(unknown)}; "
            f"expected a subset of {sorted(ALL_DOMAINS)}"
        )
    return frozen
