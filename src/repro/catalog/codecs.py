"""Plain-dict codecs for catalog entities.

Every persistent surface of the catalog — the versioned JSON snapshot
(:mod:`.persistence`), the segmented JSON-stream export (:mod:`.segments`)
and the SQLite backend (:mod:`.sqlite_backend`) — stores entities as the
same plain dictionaries, so a record written by one can always be read by
another.  Keeping the codecs in one module is what makes that invariant
cheap to hold.
"""

from __future__ import annotations

from typing import Any

from repro.catalog.model import (
    Artifact,
    BadgeAssignment,
    Column,
    Team,
    UsageEvent,
    User,
)


def artifact_to_dict(artifact: Artifact) -> dict[str, Any]:
    return {
        "id": artifact.id,
        "name": artifact.name,
        "type": artifact.artifact_type.value,
        "description": artifact.description,
        "owner_id": artifact.owner_id,
        "team_ids": list(artifact.team_ids),
        "created_at": artifact.created_at,
        "modified_at": artifact.modified_at,
        "tags": list(artifact.tags),
        "badges": [
            {"badge": b.badge, "granted_by": b.granted_by, "granted_at": b.granted_at}
            for b in artifact.badges
        ],
        "columns": [
            {
                "name": c.name,
                "dtype": c.dtype,
                "sample_values": list(c.sample_values),
            }
            for c in artifact.columns
        ],
        "extra": dict(artifact.extra),
    }


def artifact_from_dict(data: dict[str, Any]) -> Artifact:
    return Artifact(
        id=data["id"],
        name=data["name"],
        artifact_type=data["type"],
        description=data.get("description", ""),
        owner_id=data.get("owner_id", ""),
        team_ids=tuple(data.get("team_ids", ())),
        created_at=data.get("created_at", 0.0),
        modified_at=data.get("modified_at", 0.0),
        tags=tuple(data.get("tags", ())),
        badges=tuple(
            BadgeAssignment(
                badge=b["badge"],
                granted_by=b["granted_by"],
                granted_at=b.get("granted_at", 0.0),
            )
            for b in data.get("badges", ())
        ),
        columns=tuple(
            Column(
                name=c["name"],
                dtype=c.get("dtype", "string"),
                sample_values=tuple(c.get("sample_values", ())),
            )
            for c in data.get("columns", ())
        ),
        extra=dict(data.get("extra", {})),
    )


def user_to_dict(user: User) -> dict[str, Any]:
    return {
        "id": user.id,
        "name": user.name,
        "role": user.role,
        "team_ids": list(user.team_ids),
    }


def user_from_dict(data: dict[str, Any]) -> User:
    return User(
        id=data["id"],
        name=data["name"],
        role=data.get("role", "analyst"),
        team_ids=tuple(data.get("team_ids", ())),
    )


def team_to_dict(team: Team) -> dict[str, Any]:
    return {
        "id": team.id,
        "name": team.name,
        "admin_ids": list(team.admin_ids),
        "member_ids": list(team.member_ids),
    }


def team_from_dict(data: dict[str, Any]) -> Team:
    return Team(
        id=data["id"],
        name=data["name"],
        admin_ids=tuple(data.get("admin_ids", ())),
        member_ids=tuple(data.get("member_ids", ())),
    )


def event_to_dict(event: UsageEvent) -> dict[str, Any]:
    return {
        "artifact_id": event.artifact_id,
        "user_id": event.user_id,
        "action": event.action,
        "timestamp": event.timestamp,
    }


def event_from_dict(data: dict[str, Any]) -> UsageEvent:
    return UsageEvent(
        artifact_id=data["artifact_id"],
        user_id=data["user_id"],
        action=data["action"],
        timestamp=data["timestamp"],
    )
