"""Core catalog entities.

These are deliberately plain dataclasses: the provider framework reads them
through a narrow field-accessor (:meth:`Artifact.field`) so that ranking and
query evaluation stay decoupled from the concrete attribute layout, mirroring
how Humboldt's spec references metadata *fields* rather than host-app types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator


class ArtifactType(str, Enum):
    """The kinds of data artifacts the paper's host application manages.

    Section 6.2 gives the canonical chain: "a table can be used to create a
    visualization, which in turn can be embedded in a dashboard".
    """

    TABLE = "table"
    DATASET = "dataset"
    VISUALIZATION = "visualization"
    DASHBOARD = "dashboard"
    WORKBOOK = "workbook"
    DOCUMENT = "document"

    @classmethod
    def coerce(cls, value: "ArtifactType | str") -> "ArtifactType":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown artifact type {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


#: Column dtypes supported by the synthetic warehouse.
COLUMN_DTYPES = ("string", "integer", "float", "date", "boolean")


@dataclass(frozen=True)
class Column:
    """A column of a table/dataset artifact.

    ``sample_values`` feed the MinHash sketches used by the joinability
    provider; they stand in for profiling a real warehouse column.
    """

    name: str
    dtype: str = "string"
    sample_values: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.dtype not in COLUMN_DTYPES:
            raise ValueError(
                f"column {self.name!r}: unknown dtype {self.dtype!r}; "
                f"expected one of {COLUMN_DTYPES}"
            )


@dataclass(frozen=True)
class BadgeAssignment:
    """A badge (e.g. ``endorsed``) granted to an artifact by a user.

    The paper's flagship query — ``badged: endorsed badged_by: 'Mike'`` —
    needs both the badge name and its grantor.
    """

    badge: str
    granted_by: str
    granted_at: float = 0.0


@dataclass(frozen=True)
class User:
    """A person in the organisation."""

    id: str
    name: str
    role: str = "analyst"
    team_ids: tuple[str, ...] = ()


@dataclass(frozen=True)
class Team:
    """A team; team admins configure team home pages (Figure 4)."""

    id: str
    name: str
    admin_ids: tuple[str, ...] = ()
    member_ids: tuple[str, ...] = ()

    def is_admin(self, user_id: str) -> bool:
        return user_id in self.admin_ids

    def is_member(self, user_id: str) -> bool:
        return user_id in self.member_ids or user_id in self.admin_ids


@dataclass(frozen=True)
class UsageEvent:
    """One interaction with an artifact; the raw material of usage metadata."""

    artifact_id: str
    user_id: str
    action: str  # "view" | "open" | "edit" | "favorite" | "unfavorite"
    timestamp: float

    VALID_ACTIONS = ("view", "open", "edit", "favorite", "unfavorite")

    def __post_init__(self) -> None:
        if self.action not in self.VALID_ACTIONS:
            raise ValueError(
                f"unknown usage action {self.action!r}; "
                f"expected one of {self.VALID_ACTIONS}"
            )


@dataclass
class Artifact:
    """A data artifact and its annotation metadata.

    Interaction metadata (view counts, favourites) is derived from the usage
    log by :class:`repro.catalog.store.CatalogStore` and exposed through
    :meth:`field`; relationship metadata lives in the lineage graph and the
    relatedness indexes.  ``extra`` holds organisation-specific fields so new
    metadata can be attached without schema changes — the extensibility the
    paper's spec leans on.
    """

    id: str
    name: str
    artifact_type: ArtifactType
    description: str = ""
    owner_id: str = ""
    team_ids: tuple[str, ...] = ()
    created_at: float = 0.0
    modified_at: float = 0.0
    tags: tuple[str, ...] = ()
    badges: tuple[BadgeAssignment, ...] = ()
    columns: tuple[Column, ...] = ()
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.artifact_type = ArtifactType.coerce(self.artifact_type)
        if not self.modified_at:
            self.modified_at = self.created_at

    # -- metadata-field access -------------------------------------------

    def badge_names(self) -> tuple[str, ...]:
        return tuple(b.badge for b in self.badges)

    def badged_by(self, badge: str | None = None) -> tuple[str, ...]:
        """User ids that granted *badge* (or any badge when None)."""
        return tuple(
            b.granted_by for b in self.badges if badge is None or b.badge == badge
        )

    def has_badge(self, badge: str, granted_by: str | None = None) -> bool:
        for assignment in self.badges:
            if assignment.badge != badge:
                continue
            if granted_by is None or assignment.granted_by == granted_by:
                return True
        return False

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def field(self, name: str, default: Any = None) -> Any:
        """Look up a metadata field by name.

        This is the accessor the ranking engine and query evaluator use; the
        set of names doubles as the vocabulary the spec's ``ranking`` and
        query fields may reference.  Unknown names fall back to ``extra``.
        """
        direct = {
            "id": self.id,
            "name": self.name,
            "type": self.artifact_type.value,
            "description": self.description,
            "owner": self.owner_id,
            "owner_id": self.owner_id,
            "created_at": self.created_at,
            "modified_at": self.modified_at,
            "tags": self.tags,
            "badges": self.badge_names(),
            "columns": self.column_names(),
        }
        if name in direct:
            return direct[name]
        return self.extra.get(name, default)

    def searchable_text(self) -> str:
        """All free-text searched over by keyword queries."""
        parts = [self.name, self.description, *self.tags]
        parts.extend(c.name for c in self.columns)
        return " ".join(p for p in parts if p)

    def with_badge(self, assignment: BadgeAssignment) -> "Artifact":
        """Return a copy of this artifact with one more badge."""
        copy = Artifact(
            id=self.id,
            name=self.name,
            artifact_type=self.artifact_type,
            description=self.description,
            owner_id=self.owner_id,
            team_ids=self.team_ids,
            created_at=self.created_at,
            modified_at=self.modified_at,
            tags=self.tags,
            badges=self.badges + (assignment,),
            columns=self.columns,
            extra=dict(self.extra),
        )
        return copy

    def iter_text_tokens(self) -> Iterator[str]:
        """Tokens of the searchable text (lazy; used to build indexes)."""
        from repro.util.textutil import tokenize

        yield from tokenize(self.searchable_text())
