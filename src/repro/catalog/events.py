"""The catalog's write-ahead event stream.

Every :class:`~repro.catalog.store.CatalogStore` mutation appends a
typed, immutable record to a bounded in-process :class:`EventLog`
*before* bumping the corresponding domain version.  Consumers — the
execution engine's delta-patch sweep, the field resolver's incremental
usage snapshot, the store's own sorted-id memo — read the log by
offset: ``since(offset)`` returns exactly the records appended after
their last visit, so they can apply per-event deltas instead of
rebuilding on every ``domain_version`` change.

Ordering contract (load-bearing — see ``docs/write_path.md``): a
mutator applies state first, appends the event record second, and bumps
the domain version last.  A consumer woken by a version bump therefore
always finds the records explaining it already in the log; conversely a
record may be briefly visible before its bump, which is harmless
because patchers rebuild from live aggregates (re-processing an event
is a no-op).

:class:`EventStream` adds write coalescing on top: usage events are
buffered for a configurable window (or batch size) and applied through
:meth:`CatalogStore.record_events` in one shot — one version bump for
the whole batch instead of one per event.  Buffered events are entirely
invisible until the flush (state, log and bump all happen together), so
coalescing trades bounded *ingestion delay* for amortised invalidation
sweeps without ever serving stale results.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.catalog.domains import (
    DOMAIN_ENTITIES,
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_USAGE,
)
from repro.catalog.model import UsageEvent

if TYPE_CHECKING:  # imported for type hints only; no runtime cycle
    from repro.catalog.store import CatalogStore


@dataclass(frozen=True)
class UsageEventRecord:
    """One usage event (view/open/edit/favorite/unfavorite) was folded
    into the usage log."""

    event: UsageEvent
    domain: str = DOMAIN_USAGE


@dataclass(frozen=True)
class LineageEventRecord:
    """One lineage edge was added to the graph."""

    src: str
    dst: str
    kind: str
    domain: str = DOMAIN_LINEAGE


@dataclass(frozen=True)
class MembershipEventRecord:
    """A user or team was added, or a team's definition replaced.

    ``added`` is False for in-place replacement (``set_team``), which
    may *remove* members — patchers must treat it as non-monotonic.
    """

    entity_kind: str  # "user" | "team"
    entity_id: str
    added: bool = True
    domain: str = DOMAIN_MEMBERSHIP


@dataclass(frozen=True)
class EntitiesEventRecord:
    """An artifact was added (``added=True``) or mutated in place
    (``added=False`` — badge grants and other non-monotonic edits)."""

    artifact_id: str
    added: bool = True
    domain: str = DOMAIN_ENTITIES


@dataclass(frozen=True)
class OpaqueEventRecord:
    """A mutation with no per-event delta representation touched
    ``domain``.  Consumers must fall back to their coarse path (drop the
    cache entry, rebuild the snapshot) for this domain."""

    domain: str
    reason: str = ""


#: Any record the log can hold.
EventRecord = (
    UsageEventRecord
    | LineageEventRecord
    | MembershipEventRecord
    | EntitiesEventRecord
    | OpaqueEventRecord
)


class EventLog:
    """A bounded, thread-safe, offset-addressed event log.

    Offsets are monotonically increasing over the store's lifetime; the
    log retains the most recent ``capacity`` records.  ``since`` tells a
    consumer when its offset fell off the tail (``truncated=True``) so
    it can fall back to a full rebuild instead of silently missing
    events.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[EventRecord] = deque(maxlen=capacity)
        self._next_offset = 0
        # Offset of the oldest retained record; equals _next_offset when
        # the log is empty.  Tracked explicitly (not derived as
        # ``next - len``) so an explicitly truncated-empty log is
        # distinguishable from a brand-new one.
        self._first_offset = 0
        self._lock = threading.Lock()

    @property
    def offset(self) -> int:
        """The offset one past the most recent record."""
        with self._lock:
            return self._next_offset

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(self, record: EventRecord) -> int:
        """Append one record; returns its offset."""
        with self._lock:
            offset = self._next_offset
            self._records.append(record)  # bounded: may evict the oldest
            self._next_offset = offset + 1
            self._first_offset = self._next_offset - len(self._records)
            return offset

    def truncate(self) -> int:
        """Drop every retained record; returns how many were dropped.

        Offsets keep their meaning: the horizon moves to the current
        frontier, so a consumer holding any pre-truncation offset sees
        ``truncated=True`` from :meth:`since` and falls back to its full
        rebuild, exactly as after a capacity eviction.
        """
        with self._lock:
            dropped = len(self._records)
            self._records.clear()
            self._first_offset = self._next_offset
            return dropped

    def since(
        self, offset: int
    ) -> tuple[tuple[EventRecord, ...], int, bool]:
        """Records appended at or after ``offset``.

        Returns ``(records, next_offset, truncated)``: pass
        ``next_offset`` back on the next call.  ``truncated`` is True
        when ``offset`` predates the retained window — some records were
        lost and the consumer must fall back to a full rebuild.  This
        holds even when the log is *empty* (capacity evictions or
        :meth:`truncate` dropped everything): ``offset`` strictly below
        the horizon reports ``truncated=True`` with ``next`` pinned to
        the well-defined current frontier.  An ``offset`` beyond the
        frontier cannot have come from this log and is also reported as
        ``truncated`` rather than silently treated as caught-up.
        """
        with self._lock:
            next_offset = self._next_offset
            if offset < self._first_offset:
                return (), next_offset, True
            if offset > next_offset:
                return (), next_offset, True
            if offset == next_offset:
                return (), next_offset, False
            skip = offset - self._first_offset
            records = tuple(self._records)[skip:]
            return records, next_offset, False


class EventStream:
    """A coalescing writer for sustained usage-event streams.

    Buffers events and applies them through
    :meth:`CatalogStore.record_events` — one domain-version bump per
    flushed batch.  A flush happens when the batch reaches
    ``max_batch``, when the oldest buffered event is older than
    ``window_s``, or explicitly via :meth:`flush` (also on context-
    manager exit).  Thread-safe: many sessions may share one stream.
    """

    def __init__(
        self,
        store: CatalogStore,
        window_s: float = 0.05,
        max_batch: int = 256,
        timer: Callable[[], float] = time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.store = store
        self.window_s = window_s
        self.max_batch = max_batch
        self._timer = timer
        self._lock = threading.Lock()
        self._buffer: list[UsageEvent] = []
        self._window_started = 0.0

    @property
    def pending(self) -> int:
        """Buffered events not yet applied to the store."""
        with self._lock:
            return len(self._buffer)

    def record(
        self,
        artifact_id: str,
        user_id: str,
        action: str,
        at: float | None = None,
    ) -> None:
        """Buffer one usage event; flushes when the coalescing window
        closes or the batch fills."""
        timestamp = self.store.clock.now() if at is None else at
        event = UsageEvent(
            artifact_id=artifact_id,
            user_id=user_id,
            action=action,
            timestamp=timestamp,
        )
        now = self._timer()
        with self._lock:
            if not self._buffer:
                self._window_started = now
            self._buffer.append(event)
            due = (
                len(self._buffer) >= self.max_batch
                or now - self._window_started >= self.window_s
            )
            batch = self._take_locked() if due else None
        if batch:
            self.store.record_events(batch)

    def flush(self) -> int:
        """Apply all buffered events now; returns how many were applied."""
        with self._lock:
            batch = self._take_locked()
        if batch:
            self.store.record_events(batch)
        return len(batch)

    def _take_locked(self) -> list[UsageEvent]:
        batch = self._buffer
        self._buffer = []
        return batch

    def __enter__(self) -> EventStream:
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()


__all__ = [
    "EntitiesEventRecord",
    "EventLog",
    "EventRecord",
    "EventStream",
    "LineageEventRecord",
    "MembershipEventRecord",
    "OpaqueEventRecord",
    "UsageEventRecord",
]
