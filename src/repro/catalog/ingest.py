"""Incremental ingestion: fingerprint-keyed catalog populators.

Persistent catalogs outlive the process that built them, which makes
"populate" an operation that must be safe to re-run.  An
:class:`Ingestor` pairs a populate function with a **content
fingerprint** — a digest of everything that determines its output (a
generator's config, a source file's hash).  The registry compares each
fingerprint against what the store recorded when that ingestor last ran:

* never ran → apply it and record the fingerprint,
* fingerprint unchanged → skip it (the data is already there),
* fingerprint changed → fail loudly; the store holds output of a
  *different* configuration and silently layering the new one on top
  would corrupt it.

Re-running the same pipeline is therefore idempotent, and extending a
pipeline (a new ingestor against an already-populated store) applies
only the new member — that is the incremental contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.catalog.store import CatalogStore

#: Ingestion outcomes reported per ingestor.
APPLIED = "applied"
SKIPPED = "skipped"


@dataclass(frozen=True)
class Ingestor:
    """One populate step: a name, its content fingerprint, the function."""

    name: str
    fingerprint: str
    apply: Callable[["CatalogStore"], None]


class IngestorRegistry:
    """Ordered collection of ingestors applied against one store.

    Order matters: later ingestors may depend on entities earlier ones
    created (the synth usage workload references synth entities), so
    :meth:`ingest_into` applies them in registration order.
    """

    def __init__(self) -> None:
        self._ingestors: list[Ingestor] = []

    def register(self, name: str, fingerprint: str,
                 apply: Callable[["CatalogStore"], None]) -> Ingestor:
        """Add an ingestor; duplicate names are a programming error."""
        if any(existing.name == name for existing in self._ingestors):
            raise CatalogError(f"ingestor {name!r} registered twice")
        ingestor = Ingestor(name=name, fingerprint=fingerprint, apply=apply)
        self._ingestors.append(ingestor)
        return ingestor

    def names(self) -> list[str]:
        return [ingestor.name for ingestor in self._ingestors]

    def ingest_into(self, store: "CatalogStore") -> dict[str, str]:
        """Apply every out-of-date ingestor to *store*.

        Returns ``{name: "applied" | "skipped"}`` in registration order.
        A changed fingerprint raises :class:`CatalogError` — initialise a
        fresh store for a new configuration instead of mixing outputs.
        """
        outcomes: dict[str, str] = {}
        for ingestor in self._ingestors:
            recorded = store.ingest_fingerprint(ingestor.name)
            if recorded == ingestor.fingerprint:
                outcomes[ingestor.name] = SKIPPED
                continue
            if recorded is not None:
                raise CatalogError(
                    f"ingestor {ingestor.name!r} previously ran with "
                    f"fingerprint {recorded} but is now configured as "
                    f"{ingestor.fingerprint}; this store holds the output "
                    f"of a different configuration — initialise a fresh "
                    f"store instead of mixing them"
                )
            ingestor.apply(store)
            store.set_ingest_fingerprint(ingestor.name, ingestor.fingerprint)
            outcomes[ingestor.name] = APPLIED
        return outcomes
