"""Span exporters and renderers.

Exporters receive finished spans from a :class:`repro.obs.Tracer` via
``export(span)``:

- :class:`RingBufferExporter` — bounded in-memory buffer; the test and
  CLI workhorse (``ring.spans()``, ``ring.traces()``).
- :class:`JsonlExporter` / :func:`export_jsonl` — one JSON object per
  line, the on-disk trace format.

:func:`render_span_tree` turns a bag of finished spans back into an
indented text tree with per-span timings, status and attributes — what
``repro search --trace`` prints.

**Stability: public** via :mod:`repro.obs`.
"""

from __future__ import annotations

import io
import json
import threading
from collections import deque
from typing import IO, Any, Iterable, Sequence

from repro.obs.trace import Span

__all__ = [
    "JsonlExporter",
    "RingBufferExporter",
    "export_jsonl",
    "render_span_tree",
]


class RingBufferExporter:
    """Keeps the most recent *capacity* finished spans in memory."""

    def __init__(self, capacity: int = 4096):
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[Span]:
        """Snapshot of buffered spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def traces(self) -> dict[str, list[Span]]:
        """Buffered spans grouped by trace id (insertion order kept)."""
        out: dict[str, list[Span]] = {}
        for span in self.spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def trace(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class JsonlExporter:
    """Streams each finished span to *fp* as one JSON line."""

    def __init__(self, fp: IO[str]):
        self._fp = fp
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._fp.write(line + "\n")


def export_jsonl(spans: Iterable[Span], fp: IO[str] | None = None) -> str:
    """Serialize *spans* as JSONL; returns the text (also written to *fp*)."""
    buffer = io.StringIO()
    for span in spans:
        buffer.write(json.dumps(span.to_dict(), sort_keys=True))
        buffer.write("\n")
    text = buffer.getvalue()
    if fp is not None:
        fp.write(text)
    return text


def render_span_tree(
    spans: Sequence[Span],
    attrs: bool = True,
) -> str:
    """Indented text rendering of one or more traces.

    Children sort by start time under their parent; spans whose parent
    is missing from *spans* (e.g. a ring buffer that rolled over) render
    as roots.  Attribute annotations (``cache=hit``, ``skipped=2`` …)
    follow the timing; waiter→leader links render as ``~> <span_id>``.
    """
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        parts = [
            f"{'  ' * depth}{span.name}",
            f"{span.duration_ms:.3f} ms",
        ]
        if span.status != "ok":
            parts.append(f"[{span.status}]")
        if attrs and span.attrs:
            parts.append(
                " ".join(f"{k}={_short(v)}" for k, v in sorted(span.attrs.items()))
            )
        if span.links:
            parts.append(" ".join(f"~> {link}" for link in span.links))
        lines.append("  ".join(parts))
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def _short(value: Any) -> str:
    text = str(value)
    if len(text) > 60:
        return text[:57] + "..."
    return text
