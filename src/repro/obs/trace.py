"""Hierarchical request tracing.

A :class:`Tracer` produces :class:`Span` trees: every span carries a
trace id, its parent span id, a name, attributes, a status and exact
start/end timestamps taken from an injectable *timer* — hand the tracer
a :class:`repro.util.clock.SimulationClock`'s ``now`` and simulated-time
tests get deterministic durations.

Context propagation is thread-local: ``tracer.span(name)`` pushes the
new span for the duration of the ``with`` block, so spans opened further
down the call stack parent automatically.  Crossing a thread boundary is
explicit: the submitting side calls :meth:`Tracer.context` to capture a
:class:`TraceContext`, the worker wraps its work in
``with tracer.attach(ctx): ...`` and everything it opens parents under
the captured span.  Spans may additionally *link* to spans they did not
descend from (a single-flight waiter links to the leader's fetch span).

The default tracer everywhere in the codebase is :data:`NOOP_TRACER`: a
shared, allocation-free stub whose ``span()``/``attach()`` return
falsy singletons, so instrumented hot paths cost three attribute lookups
per span when tracing is off.  Call sites follow one idiom::

    with tracer.span("engine.fetch") as sp:
        ...
        if sp:                       # False on the no-op path
            sp.set("outcome", "ok")

**Stability: public** via :mod:`repro.obs`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, NamedTuple

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "TraceContext",
    "Tracer",
]


class TraceContext(NamedTuple):
    """A portable reference to a live span, safe to hand across threads."""

    trace_id: str
    span_id: str


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "status",
        "attrs",
        "links",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        links: tuple[str, ...] = (),
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.attrs: dict[str, Any] = {}
        self.links = links

    # Spans are truthy; the no-op stand-in is falsy, which is what lets
    # ``if sp:`` gate attribute writes on the hot path.
    def __bool__(self) -> bool:  # pragma: no cover - trivially True
        return True

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attrs[key] = value
        return self

    def set_status(self, status: str) -> "Span":
        self.status = status
        return self

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready shape (the JSONL exporter's line format)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": round(self.duration_ms, 4),
            "status": self.status,
            "attrs": dict(self.attrs),
            "links": list(self.links),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id},"
            f" {self.duration_ms:.3f} ms, {self.status})"
        )


class _ActiveSpan:
    """Context manager pairing a pushed span with its pop."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)
        return False


class _Attached:
    """Context manager scoping a remote parent onto this thread."""

    __slots__ = ("_tracer", "_ctx")

    def __init__(self, tracer: "Tracer", ctx: TraceContext):
        self._tracer = tracer
        self._ctx = ctx

    def __enter__(self) -> TraceContext:
        self._tracer._stack().append(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._ctx:
            stack.pop()
        return False


class Tracer:
    """Produces spans; thread-safe, with per-thread context stacks.

    *timer* is any ``() -> float`` — ``time.perf_counter`` by default,
    or a simulation clock's ``now`` for deterministic tests.  Finished
    spans are handed to every exporter's ``export(span)``.
    """

    enabled = True

    def __init__(
        self,
        timer: Callable[[], float] | None = None,
        exporters: tuple[Any, ...] = (),
    ):
        self._timer = timer or time.perf_counter
        self.exporters: list[Any] = list(exporters)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- context ------------------------------------------------------------

    def _stack(self) -> list[Any]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | TraceContext | None:
        """The innermost active span (or attached context) on this thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> TraceContext | None:
        """Capture the current position as a portable :class:`TraceContext`."""
        parent = self.current()
        if parent is None:
            return None
        return TraceContext(parent.trace_id, parent.span_id)

    def attach(self, ctx: TraceContext | None) -> Any:
        """Adopt *ctx* as this thread's parent for the ``with`` block.

        ``attach(None)`` is a no-op scope, so callers can propagate an
        optional captured context unconditionally.
        """
        if ctx is None:
            return _NOOP_CM
        return _Attached(self, ctx)

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, links: tuple[str, ...] = ()) -> _ActiveSpan:
        """Open a span as the current thread's innermost context."""
        span = self.start(name, links=links)
        self._stack().append(span)
        return _ActiveSpan(self, span)

    def start(
        self,
        name: str,
        parent: Span | TraceContext | None = None,
        links: tuple[str, ...] = (),
    ) -> Span:
        """Start a detached span (caller must :meth:`end` it).

        Without an explicit *parent* the thread's current context is
        used; with neither, the span roots a new trace.
        """
        if parent is None:
            parent = self.current()
        n = next(self._ids)
        span_id = f"s{n:06x}"
        if parent is None:
            trace_id = f"t{n:06x}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(trace_id, span_id, parent_id, name, self._timer(), links)

    def end(self, span: Span, status: str | None = None) -> Span:
        """Finish a detached span and export it."""
        if status is not None:
            span.status = status
        span.end = self._timer()
        for exporter in self.exporters:
            exporter.export(span)
        return span

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - defensive: out-of-order exit
            try:
                stack.remove(span)
            except ValueError:
                pass
        self.end(span)


class _NoopSpan:
    """Falsy, immutable stand-in; every mutator is a cheap no-op."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    duration_ms = 0.0

    def __bool__(self) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def set_status(self, status: str) -> "_NoopSpan":
        return self


class _NoopCM:
    """Shared no-op context manager: zero allocation per use."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP_CM = _NoopCM()


class NoopTracer:
    """The default tracer: tracing off, no allocation on the hot path.

    ``span()`` / ``attach()`` hand back shared singletons and
    ``context()`` is ``None``, so instrumented code pays only the call
    overhead.  ``enabled`` is False — call sites with extra bookkeeping
    (capturing contexts for pool workers, say) gate on it.
    """

    enabled = False
    exporters: tuple[Any, ...] = ()

    def span(self, name: str, links: tuple[str, ...] = ()) -> _NoopCM:
        return _NOOP_CM

    def attach(self, ctx: Any) -> _NoopCM:
        return _NOOP_CM

    def start(self, name: str, parent: Any = None, links: tuple[str, ...] = ()) -> _NoopSpan:
        return _NOOP_SPAN

    def end(self, span: Any, status: str | None = None) -> _NoopSpan:
        return _NOOP_SPAN

    def current(self) -> None:
        return None

    def context(self) -> None:
        return None


#: Process-wide shared no-op tracer; the default for every engine.
NOOP_TRACER = NoopTracer()
