"""`repro.obs` — the observability subsystem.

Everything in the serving stack that measures itself goes through this
package: hierarchical request tracing (:class:`Tracer` / :class:`Span`),
label-aware metrics (:class:`MetricsRegistry`) and exporters (in-memory
ring buffer, JSONL traces, Prometheus-style text exposition).  The
execution engine's :class:`~repro.providers.execution.ExecutionStats`
is a thin view over a :class:`MetricsRegistry`; the load harnesses use
:func:`percentile` / :func:`summarize_latencies`; no other module may
grow its own timing or counter state (``tests/test_obs_encapsulation.py``
enforces this).

Tracing is off by default — engines carry :data:`NOOP_TRACER`, whose
spans are shared falsy singletons costing a few attribute lookups per
instrumented block.  Enable it by assigning a real :class:`Tracer`
(``engine.tracer = Tracer(exporters=(ring,))`` or
``federation.set_tracer(tracer)``).

See ``docs/observability.md`` for the span model, metric naming
conventions and exporter formats.

**Stability: public.**
"""

from repro.obs.export import (
    JsonlExporter,
    RingBufferExporter,
    export_jsonl,
    render_span_tree,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    percentile,
    summarize_latencies,
)
from repro.obs.trace import NOOP_TRACER, NoopTracer, Span, TraceContext, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "RingBufferExporter",
    "Span",
    "TraceContext",
    "Tracer",
    "default_registry",
    "export_jsonl",
    "percentile",
    "render_span_tree",
    "summarize_latencies",
]
