"""Label-aware metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds metric *families* (a name, a kind, a
tuple of label names); each distinct label-value combination gets its
own child series.  All mutation and collection happens under a single
registry lock, so a :meth:`MetricsRegistry.collect` call sees one
consistent cut across every family — the property the engine's stats
table and health report both build on.

Histograms use fixed bucket boundaries, so p50/p95/p99 come from bucket
interpolation without storing samples; an optional bounded *exemplar
window* additionally retains the most recent raw observations for
callers that need exact recent samples (the engine's per-endpoint
latency snapshots, the load harness's slowest-op attribution).

Module helpers :func:`percentile` and :func:`summarize_latencies` are
the one shared implementation of nearest-rank percentiles — load
harnesses and stats views use these instead of growing private copies
(enforced by ``tests/test_obs_encapsulation.py``).

**Stability: public** via :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Iterable, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "percentile",
    "summarize_latencies",
]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (need not be sorted)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def summarize_latencies(samples: Sequence[float]) -> dict[str, float]:
    """The repo-standard latency summary: mean/p50/p95/p99/max."""
    if not samples:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "p99": percentile(samples, 0.99),
        "max": max(samples),
    }


#: Default histogram boundaries, in milliseconds: sub-millisecond cache
#: hits up through multi-second degraded fetches.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """Monotonically increasing count; one series of a counter family."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down; one series of a gauge family."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram; quantiles without retaining samples.

    ``observe`` is O(log buckets).  Quantile estimates interpolate
    linearly within the owning bucket and are clamped to the exact
    observed min/max, so ``p50 <= p95 <= p99 <= max`` always holds.
    With ``exemplar_window > 0`` the most recent raw observations are
    also kept (bounded deque) for exact-sample consumers.
    """

    __slots__ = (
        "_lock",
        "buckets",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_exemplars",
    )

    def __init__(
        self,
        lock: threading.RLock,
        buckets: tuple[float, ...],
        exemplar_window: int = 0,
    ):
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +1 for +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._exemplars: deque[float] | None = (
            deque(maxlen=exemplar_window) if exemplar_window > 0 else None
        )

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_left(self.buckets, value)] += 1
            if self._count == 0:
                self._min = self._max = value
            else:
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
            self._count += 1
            self._sum += value
            if self._exemplars is not None:
                self._exemplars.append(value)

    # -- reads --------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def min(self) -> float:
        with self._lock:
            return self._min

    def samples(self) -> tuple[float, ...]:
        """The exemplar window (empty when the window is disabled)."""
        with self._lock:
            if self._exemplars is None:
                return ()
            return tuple(self._exemplars)

    def quantile(self, fraction: float) -> float:
        with self._lock:
            return self._quantile_locked(fraction)

    def _quantile_locked(self, fraction: float) -> float:
        if self._count == 0:
            return 0.0
        rank = max(1, round(fraction * self._count))
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[i - 1] if i > 0 else self._min
                upper = (
                    self.buckets[i] if i < len(self.buckets) else self._max
                )
                position = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(self._max, max(self._min, estimate))
            cumulative += bucket_count
        return self._max  # pragma: no cover - unreachable

    def summary(self) -> dict[str, float]:
        """mean/p50/p95/p99/max estimated from buckets (exact mean/max)."""
        with self._lock:
            if self._count == 0:
                return {
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
                }
            return {
                "mean": self._sum / self._count,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "max": self._max,
            }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style."""
        with self._lock:
            out: list[tuple[float, int]] = []
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, self._counts):
                cumulative += bucket_count
                out.append((bound, cumulative))
            out.append((float("inf"), self._count))
            return out


class _Family:
    """One named metric family: kind + label names + child series."""

    __slots__ = ("name", "kind", "help", "labelnames", "children", "_lock", "_opts")

    def __init__(
        self,
        name: str,
        kind: str,
        labelnames: tuple[str, ...],
        help_text: str,
        lock: threading.RLock,
        opts: dict[str, Any],
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.children: dict[tuple[str, ...], Any] = {}
        self._lock = lock
        self._opts = opts

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(
            self._lock,
            self._opts.get("buckets", DEFAULT_LATENCY_BUCKETS_MS),
            self._opts.get("exemplar_window", 0),
        )

    def labels(self, *labelvalues: str) -> Any:
        """The child series for *labelvalues* (created on first use)."""
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames},"
                f" got {labelvalues!r}"
            )
        key = tuple(str(v) for v in labelvalues)
        child = self.children.get(key)
        if child is None:
            with self._lock:
                child = self.children.get(key)
                if child is None:
                    child = self._make_child()
                    self.children[key] = child
        return child

    def get(self, *labelvalues: str) -> Any | None:
        """The child for *labelvalues*, or None — never creates."""
        return self.children.get(tuple(str(v) for v in labelvalues))

    def label_values(self, position: int = 0) -> list[str]:
        """Distinct values seen for the label at *position*."""
        with self._lock:
            return sorted({key[position] for key in self.children})

    def total(self) -> float:
        """Sum of every child's value (counter/gauge families only)."""
        with self._lock:
            return sum(child._value for child in self.children.values())


class MetricsRegistry:
    """A process- or engine-scoped collection of metric families.

    Families are created idempotently by :meth:`counter` /
    :meth:`gauge` / :meth:`histogram`; re-declaring with the same name
    returns the existing family (kind and labels must match).
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- declaration --------------------------------------------------------

    def _declare(
        self, name: str, kind: str, labelnames: Iterable[str], help_text: str,
        **opts: Any,
    ) -> _Family:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already declared as"
                        f" {family.kind}{family.labelnames}"
                    )
                return family
            family = _Family(name, kind, labelnames, help_text, self._lock, opts)
            self._families[name] = family
            return family

    def counter(
        self, name: str, labelnames: Iterable[str] = (), help_text: str = ""
    ) -> _Family:
        return self._declare(name, "counter", labelnames, help_text)

    def gauge(
        self, name: str, labelnames: Iterable[str] = (), help_text: str = ""
    ) -> _Family:
        return self._declare(name, "gauge", labelnames, help_text)

    def histogram(
        self,
        name: str,
        labelnames: Iterable[str] = (),
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        exemplar_window: int = 0,
    ) -> _Family:
        return self._declare(
            name, "histogram", labelnames, help_text,
            buckets=buckets, exemplar_window=exemplar_window,
        )

    def family(self, name: str) -> _Family | None:
        return self._families.get(name)

    # -- collection ---------------------------------------------------------

    def collect(self) -> dict[str, dict[str, Any]]:
        """One consistent snapshot of every family, taken under the lock.

        Counter/gauge series collect to their value; histogram series to
        ``{"count", "sum", "min", "max", "summary", "buckets", "samples"}``.
        """
        with self._lock:
            out: dict[str, dict[str, Any]] = {}
            for name, family in self._families.items():
                series: dict[tuple[str, ...], Any] = {}
                for key, child in family.children.items():
                    if family.kind == "histogram":
                        series[key] = {
                            "count": child._count,
                            "sum": child._sum,
                            "min": child._min,
                            "max": child._max,
                            "summary": child.summary(),
                            "buckets": child.bucket_counts(),
                            "samples": child.samples(),
                        }
                    else:
                        series[key] = child._value
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": family.labelnames,
                    "series": series,
                }
            return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (counters get ``_total``
        left to the caller's naming; histograms expose ``_bucket`` /
        ``_sum`` / ``_count`` series)."""
        lines: list[str] = []
        collected = self.collect()
        for name in sorted(collected):
            info = collected[name]
            if info["help"]:
                lines.append(f"# HELP {name} {info['help']}")
            lines.append(f"# TYPE {name} {info['type']}")
            labelnames = info["labelnames"]
            for key in sorted(info["series"]):
                value = info["series"][key]
                if info["type"] == "histogram":
                    for bound, count in value["buckets"]:
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        labels = _labels(labelnames, key, extra=("le", le))
                        lines.append(f"{name}_bucket{labels} {count}")
                    labels = _labels(labelnames, key)
                    lines.append(f"{name}_sum{labels} {_fmt(value['sum'])}")
                    lines.append(f"{name}_count{labels} {value['count']}")
                else:
                    labels = _labels(labelnames, key)
                    lines.append(f"{name}{labels} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every child series (family declarations survive)."""
        with self._lock:
            for family in self._families.values():
                family.children.clear()


def _fmt(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _labels(
    labelnames: tuple[str, ...],
    labelvalues: tuple[str, ...],
    extra: tuple[str, str] | None = None,
) -> str:
    pairs = [
        f'{n}="{_escape(v)}"' for n, v in zip(labelnames, labelvalues)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (sqlite query timing lands here)."""
    return _DEFAULT
