"""Plain keyword search: the no-metadata baseline.

"A normal search bar is not enough for more complex queries" (P6, §3.1).
This baseline is that normal search bar: conjunctive keyword matching with
TF-IDF relevance ranking, no metadata constraints, no provider calls.  The
search-quality benchmark measures where target artifacts rank here versus
under metadata queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.store import CatalogStore
from repro.metadata.text import TfIdfIndex
from repro.util.textutil import tokenize


@dataclass(frozen=True)
class KeywordHit:
    """One ranked keyword-search result."""

    artifact_id: str
    score: float


class KeywordSearchBaseline:
    """Conjunctive keyword search with TF-IDF ranking."""

    def __init__(self, store: CatalogStore):
        self.store = store
        self._index = TfIdfIndex()
        self._built = False

    def build(self) -> "KeywordSearchBaseline":
        if self._built:
            return self
        for artifact in self.store.artifacts():
            self._index.add(artifact.id, artifact.searchable_text())
        self._built = True
        return self

    def search(self, text: str, limit: int = 50) -> list[KeywordHit]:
        """Artifacts containing every query token, by TF-IDF relevance.

        Tokens that appear in no artifact make the conjunction empty —
        exactly the brittleness users complain about.
        """
        self.build()
        tokens = tokenize(text)
        if not tokens:
            return []
        matching = set(self.store.search_tokens(tokens))
        if not matching:
            return []
        scored = self._index.search(text, limit=max(limit * 5, 100))
        hits = [
            KeywordHit(artifact_id=str(key), score=round(score, 6))
            for key, score in scored
            if str(key) in matching
        ]
        # Conjunctive matches missing from the TF-IDF top-k still count.
        ranked_ids = {hit.artifact_id for hit in hits}
        for artifact_id in sorted(matching - ranked_ids):
            hits.append(KeywordHit(artifact_id=artifact_id, score=0.0))
        return hits[:limit]

    def rank_of(self, text: str, target_id: str, limit: int = 1000) -> int | None:
        """1-based rank of *target_id* for query *text*; None if absent."""
        for index, hit in enumerate(self.search(text, limit=limit)):
            if hit.artifact_id == target_id:
                return index + 1
        return None
