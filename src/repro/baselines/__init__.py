"""Baselines the paper argues against.

* :mod:`repro.baselines.hardcoded` — a conventional, hand-written discovery
  UI with the same features as the generated one.  Its point is the change
  cost: every provider addition touches several code sites, which the
  expressivity benchmark (E3) counts against Humboldt's spec-only edits.
* :mod:`repro.baselines.keyword` — a plain keyword search with no metadata
  support, the comparator for directed-search effectiveness (E10).
"""

from repro.baselines.hardcoded import HardcodedDiscoveryUI
from repro.baselines.keyword import KeywordSearchBaseline

__all__ = ["HardcodedDiscoveryUI", "KeywordSearchBaseline"]
