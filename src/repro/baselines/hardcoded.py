"""A conventional hand-written discovery UI — the change-cost baseline.

The paper's motivation: in existing systems "any update to the metadata
sources requires expensive and error-prone code changes".  This class is
such a system, written the way these UIs actually get written: one view
method per metadata source, an if/elif search dispatcher, a hand-kept
autocomplete list and inline ranking.  It is feature-equivalent to the
generated interface for the providers it supports.

Adding a provider here requires touching every member of
:data:`TOUCH_POINTS` — the expressivity benchmark counts those sites (and
their lines) against the one spec entry Humboldt needs.
"""

from __future__ import annotations

import inspect

from repro.catalog.model import ArtifactType
from repro.catalog.store import CatalogStore
from repro.core.views.base import make_card
from repro.core.views.listing import ListView, TilesView
from repro.providers.fields import FieldResolver

#: Every code site that must change when a metadata source is added,
#: removed or retuned in the hardcoded implementation.
TOUCH_POINTS = (
    "view method (one per source)",
    "home() tab registration",
    "search() field dispatch branch",
    "autocomplete FIELD_NAMES list",
    "ranking weights inline in _rank()",
)


class HardcodedDiscoveryUI:
    """Hand-written discovery UI over the same catalog substrate."""

    #: Hand-maintained autocomplete vocabulary (drifts from reality the
    #: moment someone adds a field and forgets this list).
    FIELD_NAMES = ("owned_by", "badged", "type", "tagged")

    def __init__(self, store: CatalogStore):
        self.store = store
        self.resolver = FieldResolver(store)

    # -- hardcoded views: one method per metadata source --------------------

    def view_recents(self, user_id: str, limit: int = 20) -> ListView:
        ids = self.store.usage.recent_for_user(user_id, limit=limit)
        return self._list_view("recents", "Recents", ids)

    def view_most_viewed(self, limit: int = 20) -> TilesView:
        ranked = self.store.usage.most_viewed(limit=limit)
        ids = [aid for aid, _ in ranked]
        cards = tuple(
            make_card(self.store, aid, score=self._rank(aid))
            for aid in ids
            if self.store.has_artifact(aid)
        )
        return TilesView(
            view_id="most_viewed",
            provider_name="most_viewed",
            title="Most Viewed",
            representation="tiles",
            cards=cards,
        )

    def view_favorites(self, user_id: str, limit: int = 20) -> ListView:
        ids = self.store.usage.favorites_of(user_id)[:limit]
        return self._list_view("favorites", "Favorites", ids)

    def home(self, user_id: str) -> list[ListView | TilesView]:
        """The hardcoded home screen: tabs are enumerated inline, so every
        new source means editing this function too."""
        return [
            self.view_recents(user_id),
            self.view_most_viewed(),
            self.view_favorites(user_id),
        ]

    # -- hardcoded search: an if/elif ladder ----------------------------------

    def search(self, field: str, value: str, limit: int = 50) -> list[str]:
        """Field search via explicit dispatch — the change-cost hot spot."""
        if field == "owned_by":
            user = self.store.find_user_by_name(value)
            if user is None:
                return []
            ids = self.store.by_owner(user.id)
        elif field == "badged":
            ids = self.store.by_badge(value.lower())
        elif field == "type":
            try:
                ids = self.store.by_type(ArtifactType.coerce(value))
            except ValueError:
                return []
        elif field == "tagged":
            ids = self.store.by_tag(value)
        else:
            return []  # unknown fields silently fail — a classic
        ranked = sorted(ids, key=lambda aid: (-self._rank(aid), aid))
        return ranked[:limit]

    def autocomplete_fields(self, prefix: str) -> list[str]:
        """Completes from the hand-kept list, not from any source of truth."""
        prefix = prefix.lower()
        return [f for f in self.FIELD_NAMES if f.startswith(prefix)]

    # -- hardcoded ranking --------------------------------------------------------

    def _rank(self, artifact_id: str) -> float:
        # Weights are literals here; retuning them is a code change and a
        # deploy, which is precisely what Listing 1 avoids.
        return (
            4.3 * self.resolver.value(artifact_id, "favorite")
            + 1.5 * self.resolver.value(artifact_id, "views")
        )

    def _list_view(self, view_id: str, title: str, ids: list[str]) -> ListView:
        cards = tuple(
            make_card(self.store, aid, score=self._rank(aid))
            for aid in ids
            if self.store.has_artifact(aid)
        )
        return ListView(
            view_id=view_id,
            provider_name=view_id,
            title=title,
            representation="list",
            cards=cards,
        )

    # -- change-cost accounting (used by the E3 benchmark) ----------------------------

    @classmethod
    def change_cost_add_source(cls) -> dict[str, int]:
        """Sites and lines a new metadata source touches in this design.

        Lines are measured from live source, so the number tracks the
        actual implementation rather than a hand-waved constant.
        """
        sites = {
            "view method": _loc(cls.view_recents),  # a comparable new method
            "home() registration": _loc(cls.home),
            "search dispatch": _loc(cls.search),
            "autocomplete list": 1,
            "ranking literals": _loc(cls._rank),
        }
        return sites

    @classmethod
    def touched_sites(cls) -> int:
        return len(TOUCH_POINTS)


def _loc(obj) -> int:
    """Source lines of a callable (declaration included)."""
    return len(inspect.getsource(obj).splitlines())
