"""Deterministic workload generation for the concurrent load harness.

A workload is a list of :class:`SessionScript`\\ s — per-user operation
sequences mixing search, overview, exploration, autocomplete and catalog
writes ("touches"), the bursty query/explore mix the dataset-search UX
study observed real users issuing.  Generation is fully seeded: the same
:class:`LoadConfig` over the same catalog always yields the same scripts,
so concurrent runs differ only in thread interleaving, never in the work
itself.

Both the query pool and the user assignment are Zipf-skewed.  Skewing
*users* matters as much as skewing queries: provider request keys carry
the requesting user/team, so identical in-flight fetches — the ones
cross-request single-flight batching can coalesce — only occur when hot
users run overlapping sessions, exactly what a popular dashboard's
audience looks like.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.catalog.store import CatalogStore

#: Operation kinds a script may contain.  ``stream`` and ``lineage`` are
#: the write-heavy additions: a burst of usage events pushed through the
#: store's coalescing :class:`~repro.catalog.events.EventStream`, and a
#: lineage-edge append from inside a session thread.
OP_KINDS = (
    "search",
    "overview",
    "explore",
    "suggest",
    "touch",
    "stream",
    "lineage",
)


@dataclass(frozen=True)
class Op:
    """One scripted session action.

    ``arg`` is the query (search), artifact id (explore/touch) or prefix
    (suggest); overview opens need no argument.
    """

    kind: str
    arg: str = ""


@dataclass(frozen=True)
class SessionScript:
    """One simulated user session: who runs it and what they do."""

    user_id: str
    team_id: str
    ops: tuple[Op, ...]


@dataclass(frozen=True)
class LoadConfig:
    """Knobs for workload generation.

    The mix weights default to the study's observed shape: search-heavy,
    with a steady stream of overview opens and selection-driven
    exploration, a trickle of autocomplete, and enough catalog writes to
    keep invalidation honest (a cache that is never invalidated makes
    every engine look fast).
    """

    seed: int = 7
    sessions: int = 64
    ops_per_session: int = 6
    concurrency: int = 8
    #: Zipf exponent for query and user popularity; higher = more skew.
    zipf_s: float = 1.1
    search_weight: float = 0.45
    overview_weight: float = 0.20
    explore_weight: float = 0.15
    suggest_weight: float = 0.10
    touch_weight: float = 0.10
    #: Write-heavy mix: weight of usage-event bursts pushed through the
    #: store's coalescing event stream, and of lineage-edge appends.
    #: Both default to 0 so existing configs keep their exact op mix.
    stream_weight: float = 0.0
    lineage_weight: float = 0.0
    #: Usage events per ``stream`` op (one burst -> one coalesced batch).
    stream_burst: int = 8
    #: Coalescing window of the shared event stream (seconds).
    coalesce_window_s: float = 0.05
    #: Fixed latency injected per provider invocation, simulating a
    #: remote metadata service; 0 disables injection.
    provider_latency_ms: float = 0.0
    #: When > 0, the harness traces every session op and the report's
    #: ``slowest`` block holds the N slowest op span trees; 0 keeps the
    #: engine on its zero-allocation no-op tracer.
    trace_slowest: int = 0

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.ops_per_session < 1:
            raise ValueError("sessions and ops_per_session must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be > 0")
        if self.stream_burst < 1:
            raise ValueError("stream_burst must be >= 1")
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        if self.trace_slowest < 0:
            raise ValueError("trace_slowest must be >= 0")
        weights = self._weights()
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("mix weights must be >= 0 and not all zero")

    def _weights(self) -> tuple[float, ...]:
        return (
            self.search_weight,
            self.overview_weight,
            self.explore_weight,
            self.suggest_weight,
            self.touch_weight,
            self.stream_weight,
            self.lineage_weight,
        )


def _zipf_ranks(n: int, s: float) -> list[float]:
    """Unnormalised Zipf weights for ranks 1..n."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def _zipf_choice(rng: random.Random, n: int, s: float) -> int:
    """A Zipf-distributed index in [0, n) — rank 0 is the hottest."""
    weights = _zipf_ranks(n, s)
    return rng.choices(range(n), weights=weights, k=1)[0]


def query_pool(store: CatalogStore) -> list[str]:
    """The queries sessions draw from, hottest first.

    Derived from the study tasks (T1's endorsed-badge lookup, T3's
    by-owner workbook search) plus the catalog's own vocabulary — badges,
    tags, types and owner names in use — so the pool scales with the
    catalog instead of hard-coding a toy list.
    """
    pool: list[str] = [
        # T1: metadata-based entry point, then the named table itself.
        "badged: endorsed",
        "AIRLINES",
        "type: table",
        # T3: composed by-owner search.
        "type: workbook",
    ]
    users = store.users()
    for user in users[:4]:
        pool.append(f"type: workbook & owned_by: {user.id}")
    for badge in store.badges_in_use()[:4]:
        pool.append(f"badged: {badge}")
        pool.append(f"badged: {badge} & type: table")
    for tag in store.tags_in_use()[:6]:
        pool.append(f"tagged: {tag}")
    pool.extend(["type: dashboard", "type: dataset", "orders", "sales"])
    # Preserve order (hotness rank) while dropping duplicates.
    seen: set[str] = set()
    unique = [q for q in pool if not (q in seen or seen.add(q))]
    return unique


@dataclass
class _Pools:
    """Catalog-derived choice pools, computed once per workload."""

    queries: list[str] = field(default_factory=list)
    users: list[str] = field(default_factory=list)
    teams: dict[str, str] = field(default_factory=dict)  # user -> team
    artifacts: list[str] = field(default_factory=list)
    prefixes: list[str] = field(default_factory=list)


def _pools(store: CatalogStore) -> _Pools:
    pools = _Pools()
    pools.queries = query_pool(store)
    for user in store.users():
        pools.users.append(user.id)
        teams = store.teams_of(user.id)
        pools.teams[user.id] = teams[0].id if teams else ""
    pools.artifacts = store.artifact_ids()
    pools.prefixes = ["ty", "bad", "tag", "own", "air", "ord"]
    if not pools.users:
        raise ValueError("catalog has no users to simulate")
    if not pools.artifacts:
        raise ValueError("catalog has no artifacts to explore")
    return pools


def build_workload(store: CatalogStore, config: LoadConfig) -> list[SessionScript]:
    """Generate ``config.sessions`` deterministic session scripts."""
    rng = random.Random(config.seed)
    pools = _pools(store)
    weights = config._weights()
    scripts: list[SessionScript] = []
    for _ in range(config.sessions):
        user = pools.users[_zipf_choice(rng, len(pools.users), config.zipf_s)]
        ops: list[Op] = []
        for _ in range(config.ops_per_session):
            kind = rng.choices(OP_KINDS, weights=weights, k=1)[0]
            if kind == "search":
                query = pools.queries[
                    _zipf_choice(rng, len(pools.queries), config.zipf_s)
                ]
                ops.append(Op("search", query))
            elif kind == "overview":
                ops.append(Op("overview"))
            elif kind == "explore":
                artifact = pools.artifacts[
                    _zipf_choice(rng, len(pools.artifacts), config.zipf_s)
                ]
                ops.append(Op("explore", artifact))
            elif kind == "suggest":
                ops.append(Op("suggest", rng.choice(pools.prefixes)))
            else:
                # The remaining kinds are all catalog writes keyed on a
                # Zipf-hot artifact: "touch" records one usage event
                # synchronously, "stream" pushes a burst through the
                # coalescing event stream, "lineage" appends an edge.
                artifact = pools.artifacts[
                    _zipf_choice(rng, len(pools.artifacts), config.zipf_s)
                ]
                ops.append(Op(kind, artifact))
        scripts.append(
            SessionScript(
                user_id=user, team_id=pools.teams[user], ops=tuple(ops)
            )
        )
    return scripts
