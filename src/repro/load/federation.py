"""Concurrent load over a federated deployment.

The single-catalog harness (:mod:`repro.load.harness`) answers "does the
engine hold up when many tenants hammer one workbook".  This scenario
answers the federation-era version: partition one corpus into N member
catalogs, put the :class:`~repro.federation.facade.Discovery` facade in
front, and drive seeded multi-user sessions — cross-catalog searches,
qualified-ref artifact resolution and lineage walks — from a thread
pool.  Every search is leak-checked inline: each returned entry must be
attributed to the member that actually owns its artifact (per the
partition's assignment), so a zero-violation run is evidence the
fan-out/merge path never mixes catalogs up under concurrency.

Usage::

    report = run_federated_load(store, FederatedLoadConfig(parts=4))
    assert report.leakage_violations == 0
    print(report.render())
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.catalog.store import CatalogStore
from repro.federation.facade import Discovery
from repro.federation.partition import CatalogPartition, federate
from repro.load.workload import _zipf_choice, query_pool
from repro.obs.metrics import percentile

#: Operation kinds a federated session may contain.
FED_OP_KINDS = ("search", "artifact", "lineage")


@dataclass(frozen=True)
class FederatedOp:
    """One scripted action: a query (search) or a qualified ref."""

    kind: str
    arg: str


@dataclass(frozen=True)
class FederatedSessionScript:
    """One simulated user session against the federation."""

    user_id: str
    team_id: str
    ops: tuple[FederatedOp, ...]


@dataclass(frozen=True)
class FederatedLoadConfig:
    """Knobs for the federated load scenario."""

    seed: int = 7
    sessions: int = 48
    ops_per_session: int = 6
    concurrency: int = 8
    #: Member catalogs the corpus is partitioned into.
    parts: int = 4
    zipf_s: float = 1.1
    search_weight: float = 0.60
    artifact_weight: float = 0.25
    lineage_weight: float = 0.15
    #: Deadline handed to every federated search; None = no deadline.
    budget_ms: float | None = None
    search_limit: int = 25

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.ops_per_session < 1:
            raise ValueError("sessions and ops_per_session must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.parts < 2:
            raise ValueError("a federated scenario needs parts >= 2")
        weights = self._weights()
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("mix weights must be >= 0 and not all zero")

    def _weights(self) -> tuple[float, ...]:
        return (self.search_weight, self.artifact_weight, self.lineage_weight)


@dataclass
class FederatedLoadReport:
    """Everything one federated run measured, JSON-friendly via
    :meth:`to_dict`.  The acceptance gates are ``errors == 0`` and
    ``leakage_violations == 0``."""

    config: FederatedLoadConfig
    members: tuple[str, ...] = ()
    ops: int = 0
    errors: int = 0
    wall_s: float = 0.0
    latencies_ms: dict[str, list[float]] = field(default_factory=dict)
    #: Entries checked for member attribution, and how many were wrong.
    leakage_checks: int = 0
    leakage_violations: int = 0
    #: Searches that came back flagged degraded (partial results).
    degraded_searches: int = 0

    @property
    def throughput(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    def percentiles(self, kind: str = "") -> dict[str, float]:
        samples = (
            self.latencies_ms.get(kind, [])
            if kind
            else [s for kind_samples in self.latencies_ms.values()
                  for s in kind_samples]
        )
        return {
            "p50": percentile(samples, 0.50),
            "p95": percentile(samples, 0.95),
            "p99": percentile(samples, 0.99),
            "max": max(samples) if samples else 0.0,
        }

    def to_dict(self) -> dict:
        return {
            "members": list(self.members),
            "sessions": self.config.sessions,
            "parts": self.config.parts,
            "concurrency": self.config.concurrency,
            "ops": self.ops,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "throughput_ops_s": round(self.throughput, 2),
            "degraded_searches": self.degraded_searches,
            "leakage": {
                "checks": self.leakage_checks,
                "violations": self.leakage_violations,
            },
            "latency_ms": {
                kind: {k: round(v, 3) for k, v in self.percentiles(kind).items()}
                for kind in sorted(self.latencies_ms)
            },
        }

    def render(self) -> str:
        lines = [
            f"federated load: {self.ops} ops over "
            f"{len(self.members)} members "
            f"({self.config.concurrency} threads) in {self.wall_s:.2f}s "
            f"-> {self.throughput:.0f} ops/s",
            f"errors={self.errors} degraded_searches={self.degraded_searches} "
            f"leakage={self.leakage_violations}/{self.leakage_checks}",
        ]
        for kind in sorted(self.latencies_ms):
            p = self.percentiles(kind)
            lines.append(
                f"  {kind:<9} p50={p['p50']:.2f}ms p95={p['p95']:.2f}ms "
                f"p99={p['p99']:.2f}ms max={p['max']:.2f}ms"
            )
        return "\n".join(lines)


def build_federated_workload(
    store: CatalogStore,
    partition: CatalogPartition,
    config: FederatedLoadConfig,
) -> list[FederatedSessionScript]:
    """Seeded session scripts over the partitioned corpus.

    Queries come from the monolith's study-mix :func:`query_pool`;
    artifact and lineage ops target Zipf-hot *qualified* refs derived
    from the partition's own assignment, so every script is valid for
    exactly the federation it was generated against.
    """
    rng = random.Random(config.seed)
    queries = query_pool(store)
    users = store.users()
    if not users:
        raise ValueError("catalog has no users to simulate")
    refs = [
        f"{partition.assignment[aid]}:{aid}" for aid in store.artifact_ids()
    ]
    if not refs:
        raise ValueError("catalog has no artifacts to resolve")
    weights = config._weights()
    scripts: list[FederatedSessionScript] = []
    for _ in range(config.sessions):
        user = users[_zipf_choice(rng, len(users), config.zipf_s)]
        teams = store.teams_of(user.id)
        ops: list[FederatedOp] = []
        for _ in range(config.ops_per_session):
            kind = rng.choices(FED_OP_KINDS, weights=weights, k=1)[0]
            if kind == "search":
                arg = queries[_zipf_choice(rng, len(queries), config.zipf_s)]
            else:
                arg = refs[_zipf_choice(rng, len(refs), config.zipf_s)]
            ops.append(FederatedOp(kind, arg))
        scripts.append(
            FederatedSessionScript(
                user_id=user.id,
                team_id=teams[0].id if teams else "",
                ops=tuple(ops),
            )
        )
    return scripts


def run_federated_load(
    store: CatalogStore,
    config: FederatedLoadConfig = FederatedLoadConfig(),
) -> FederatedLoadReport:
    """Partition *store*, federate the members, drive the workload.

    The source store is left untouched (it remains the monolith the
    conformance tests compare against); the federation and its member
    stores are closed before returning.
    """
    federation, partition = federate(store, config.parts)
    scripts = build_federated_workload(store, partition, config)
    report = FederatedLoadReport(
        config=config, members=federation.member_ids()
    )
    lock = threading.Lock()

    def run_session(script: FederatedSessionScript) -> None:
        for op in script.ops:
            started = time.perf_counter()
            degraded = False
            checks = violations = 0
            try:
                if op.kind == "search":
                    result = discovery.search(
                        op.arg,
                        user_id=script.user_id,
                        team_id=script.team_id,
                        limit=config.search_limit,
                        budget_ms=config.budget_ms,
                    )
                    degraded = result.degraded
                    for entry in result.entries:
                        checks += 1
                        owner = partition.assignment.get(
                            entry.ref.artifact_id
                        )
                        if owner != entry.ref.catalog_id:
                            violations += 1
                elif op.kind == "artifact":
                    discovery.artifact(op.arg)
                else:
                    discovery.lineage(op.arg, depth=2)
                failed = False
            except Exception:
                failed = True
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                report.ops += 1
                report.errors += int(failed)
                report.degraded_searches += int(degraded)
                report.leakage_checks += checks
                report.leakage_violations += violations
                report.latencies_ms.setdefault(op.kind, []).append(elapsed_ms)

    with Discovery(federation) as discovery:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
            for future in [pool.submit(run_session, s) for s in scripts]:
                future.result()
        report.wall_s = time.perf_counter() - started
    return report


__all__ = [
    "FED_OP_KINDS",
    "FederatedLoadConfig",
    "FederatedLoadReport",
    "FederatedOp",
    "FederatedSessionScript",
    "build_federated_workload",
    "run_federated_load",
]
