"""Deterministic concurrent load generation over the workbook.

See :mod:`repro.load.workload` for the seeded session-script generator
and :mod:`repro.load.harness` for the multi-threaded driver, isolation
checks and :class:`LoadReport`.
"""

from repro.load.harness import (
    LoadHarness,
    LoadReport,
    latency_middleware,
    run_load,
)
from repro.load.workload import (
    LoadConfig,
    Op,
    SessionScript,
    build_workload,
    query_pool,
)

__all__ = [
    "LoadConfig",
    "LoadHarness",
    "LoadReport",
    "Op",
    "SessionScript",
    "build_workload",
    "latency_middleware",
    "query_pool",
    "run_load",
]
