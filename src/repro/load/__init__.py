"""Deterministic concurrent load generation over the workbook.

See :mod:`repro.load.workload` for the seeded session-script generator,
:mod:`repro.load.harness` for the multi-threaded driver, isolation
checks and :class:`LoadReport`, and :mod:`repro.load.federation` for
the federated variant driving a partitioned deployment through the
:class:`~repro.federation.facade.Discovery` facade with inline
cross-catalog leak checks.
"""

from repro.load.federation import (
    FederatedLoadConfig,
    FederatedLoadReport,
    build_federated_workload,
    run_federated_load,
)
from repro.load.harness import (
    LoadHarness,
    LoadReport,
    latency_middleware,
    run_load,
)
from repro.load.workload import (
    LoadConfig,
    Op,
    SessionScript,
    build_workload,
    query_pool,
)

__all__ = [
    "FederatedLoadConfig",
    "FederatedLoadReport",
    "LoadConfig",
    "LoadHarness",
    "LoadReport",
    "Op",
    "SessionScript",
    "build_federated_workload",
    "build_workload",
    "latency_middleware",
    "query_pool",
    "run_federated_load",
    "run_load",
]
