"""The concurrent multi-tenant load harness.

Drives a deterministic workload (see :mod:`repro.load.workload`) over a
shared :class:`~repro.workbook.app.WorkbookApp` from a thread pool —
many simulated sessions in flight at once, the serving shape every
single-request bench so far has ignored.  Each tenant (team) gets its
own customization (a hidden overview provider) and, for alternating
teams, a per-tenant policy overlay, so the run continuously exercises
the engine's isolation guarantees while hammering its cache, breaker
and single-flight paths.

The harness verifies isolation *inline*: every overview op checks that
the tenant's own hidden provider is absent and that no *other* tenant's
hide leaked into this tenant's tabs.  Violations are counted in the
report — the acceptance gate is zero.

Usage::

    report = run_load(store, LoadConfig(sessions=1000, concurrency=32))
    print(report.render())
    json.dumps(report.to_dict())

``single_flight=False`` runs the same workload against a naive engine
(no cross-request coalescing) for A/B comparison.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.catalog.store import CatalogStore
from repro.load.workload import LoadConfig, SessionScript, build_workload
from repro.obs.export import RingBufferExporter, render_span_tree
from repro.obs.metrics import percentile
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import (
    CallNext,
    ExecutionEngine,
    ExecutionPolicy,
    ProviderRequest,
    ProviderResult,
)
from repro.providers.registry import EndpointRegistry
from repro.workbook.app import WorkbookApp


def latency_middleware(latency_ms: float):
    """An engine middleware adding fixed latency per provider invocation,
    simulating the round-trip to a remote metadata service.  This is what
    makes batching measurable: with free providers, coalescing N identical
    fetches into one saves nothing."""
    delay_s = latency_ms / 1000.0

    def middleware(
        endpoint: str, request: ProviderRequest, call_next: CallNext
    ) -> ProviderResult:
        if delay_s > 0:
            time.sleep(delay_s)
        return call_next(endpoint, request)

    return middleware


@dataclass
class LoadReport:
    """Everything one harness run measured, JSON-friendly via
    :meth:`to_dict`."""

    config: LoadConfig
    single_flight: bool
    ops: int = 0
    errors: int = 0
    wall_s: float = 0.0
    latencies_ms: dict[str, list[float]] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    isolation_checks: int = 0
    isolation_violations: int = 0
    #: Top-N slowest op traces (``config.trace_slowest`` > 0 enables
    #: tracing); each entry carries the op root's kind/arg/duration plus
    #: its full span list and a rendered tree.
    slowest: list[dict] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed operations per second of wall clock."""
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        totals = self.stats.get("totals", {})
        hits = totals.get("cache_hits", 0)
        misses = totals.get("cache_misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def _all_latencies(self) -> list[float]:
        merged: list[float] = []
        for samples in self.latencies_ms.values():
            merged.extend(samples)
        return merged

    def percentiles(self, kind: str = "") -> dict[str, float]:
        """p50/p95/p99/max over one op kind, or over everything."""
        samples = (
            self.latencies_ms.get(kind, []) if kind else self._all_latencies()
        )
        return {
            "p50": percentile(samples, 0.50),
            "p95": percentile(samples, 0.95),
            "p99": percentile(samples, 0.99),
            "max": max(samples) if samples else 0.0,
        }

    def to_dict(self) -> dict:
        totals = self.stats.get("totals", {})
        return {
            "mode": "batched" if self.single_flight else "naive",
            "sessions": self.config.sessions,
            "concurrency": self.config.concurrency,
            "seed": self.config.seed,
            "provider_latency_ms": self.config.provider_latency_ms,
            "ops": self.ops,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "throughput_ops_s": round(self.throughput, 2),
            "hit_rate": round(self.hit_rate, 4),
            "latency_ms": {
                "overall": self.percentiles(),
                **{
                    kind: self.percentiles(kind)
                    for kind in sorted(self.latencies_ms)
                },
            },
            "single_flights": totals.get("single_flights", 0),
            "provider_calls": totals.get("calls", 0),
            "degradation": {
                "stale_served": totals.get("stale_served", 0),
                "deadline_skips": totals.get("deadline_skips", 0),
                "breaker_rejections": totals.get("breaker_rejections", 0),
                "errors": totals.get("errors", 0),
            },
            "isolation": {
                "checks": self.isolation_checks,
                "violations": self.isolation_violations,
            },
            "slowest": self.slowest,
            "write_path": {
                "delta_patches": totals.get("delta_patches", 0),
                "delta_fallbacks": totals.get("delta_fallbacks", 0),
                "coalesced_bumps": totals.get("coalesced_bumps", 0),
                "invalidations": totals.get("invalidations", 0),
            },
        }

    def render(self) -> str:
        d = self.to_dict()
        overall = d["latency_ms"]["overall"]
        return (
            f"{d['mode']}: {d['ops']} ops / {d['wall_s']}s "
            f"= {d['throughput_ops_s']} ops/s, "
            f"p50 {overall['p50']:.2f} ms, p99 {overall['p99']:.2f} ms, "
            f"hit rate {d['hit_rate']:.3f}, "
            f"{d['single_flights']} single-flights, "
            f"{d['provider_calls']} provider calls, "
            f"{d['write_path']['delta_patches']} delta patches, "
            f"{d['write_path']['coalesced_bumps']} coalesced bumps, "
            f"{d['isolation']['violations']} isolation violations"
        )

    def render_slowest(self) -> str:
        """The slowest-ops block: one span tree per traced op."""
        if not self.slowest:
            return "slowest ops: tracing disabled (config.trace_slowest=0)"
        lines = [f"slowest {len(self.slowest)} ops:"]
        for entry in self.slowest:
            lines.append(
                f"-- {entry['op']} {entry['arg']!r} "
                f"{entry['duration_ms']:.2f} ms"
            )
            lines.append(entry["tree"])
        return "\n".join(lines)


class LoadHarness:
    """Runs one workload over one engine configuration.

    Owns the app/engine it builds; a harness is single-use — build,
    :meth:`run`, read the report.
    """

    def __init__(
        self,
        store: CatalogStore,
        config: LoadConfig,
        single_flight: bool = True,
        policy: ExecutionPolicy | None = None,
    ):
        self.config = config
        self.single_flight = single_flight
        registry = EndpointRegistry()
        install_builtin_endpoints(registry, BuiltinProviders(store))
        middlewares = (
            (latency_middleware(config.provider_latency_ms),)
            if config.provider_latency_ms > 0
            else ()
        )
        if policy is None:
            policy = ExecutionPolicy.defaults().replace(
                max_workers=max(2, min(8, config.concurrency))
            )
        self.engine = ExecutionEngine(
            registry,
            store=store,
            policy=policy,
            middlewares=middlewares,
            single_flight=single_flight,
        )
        # Tracing is opt-in (config.trace_slowest > 0): every session op
        # gets a root span, engine/evaluator spans nest under it, and the
        # report reconstructs the slowest op traces from the ring buffer.
        self._ring: RingBufferExporter | None = None
        if config.trace_slowest > 0:
            self._ring = RingBufferExporter()
            self.engine.enable_tracing(self._ring)
        self.app = WorkbookApp(store, registry=registry, engine=self.engine)
        # One coalescing event stream shared by every session thread:
        # "stream" ops buffer usage events here, so sustained write
        # pressure arrives at the store as batched single-bump commits.
        self.stream = store.stream(window_s=config.coalesce_window_s)
        # Monotonic suffix for synthetic lineage sinks; unique ids keep
        # concurrent edge appends cycle-free by construction.
        self._lineage_seq = itertools.count()
        self._lock = threading.Lock()
        self._latencies: dict[str, list[float]] = {}
        self._errors = 0
        self._isolation_checks = 0
        self._isolation_violations = 0
        # Tenant setup: each team hides a different overview provider
        # (rotating), and alternating teams get their own policy overlay
        # — both must stay invisible to every other tenant.
        self._hidden_by_team: dict[str, str] = {}
        overview = [p.name for p in self.app.spec.visible_in("overview")]
        teams = sorted(t.id for t in store.teams())
        for index, team_id in enumerate(teams):
            if not overview:
                break
            hidden = overview[index % len(overview)]
            self.app.customization.team_layer(team_id).hide(hidden)
            self._hidden_by_team[team_id] = hidden
            if index % 2 == 1:
                self.engine.set_tenant_policy(
                    team_id, policy.replace(attempts=2)
                )

    # -- session driving ---------------------------------------------------

    def _check_overview_isolation(self, team_id: str, tabs) -> None:
        """Count tenant-customization leaks in an overview tab strip."""
        names = {tab.provider_name for tab in tabs}
        own_hidden = self._hidden_by_team.get(team_id)
        with self._lock:
            self._isolation_checks += 1
            if own_hidden is not None and own_hidden in names:
                self._isolation_violations += 1
        # A provider hidden only by *other* tenants must still be served
        # to this one — a disappearance means state bled across tenants.
        foreign_hidden = {
            hidden
            for team, hidden in self._hidden_by_team.items()
            if team != team_id and hidden != own_hidden
        }
        leaked = foreign_hidden - names
        if leaked:
            with self._lock:
                self._isolation_violations += len(leaked)

    def _run_op(self, session, op) -> None:
        if op.kind == "search":
            session.search(op.arg, limit=20)
        elif op.kind == "overview":
            tabs = session.open_browse()
            self._check_overview_isolation(session.team_id, tabs)
        elif op.kind == "explore":
            session.select_artifact(op.arg)
            session.explore_selection(limit=5)
        elif op.kind == "suggest":
            session.suggest(op.arg, limit=8)
        elif op.kind == "touch":
            self.app.store.record(op.arg, session.user_id, "view")
        elif op.kind == "stream":
            # A burst of usage events through the shared coalescing
            # stream — the streaming write path under test.
            for index in range(self.config.stream_burst):
                action = "view" if index % 2 == 0 else "open"
                self.stream.record(op.arg, session.user_id, action)
        elif op.kind == "lineage":
            self.app.store.lineage.add_edge(
                op.arg, f"load-derived-{next(self._lineage_seq)}", "derives"
            )
        else:  # pragma: no cover - workload only emits known kinds
            raise ValueError(f"unknown op kind {op.kind!r}")

    def _run_session(self, script: SessionScript) -> tuple[int, int]:
        """Run one script; returns (ops completed, errors)."""
        session = self.app.session(script.user_id, script.team_id)
        completed = errors = 0
        local: dict[str, list[float]] = {}
        tracer = self.engine.tracer
        for op in script.ops:
            started = time.perf_counter()
            try:
                with tracer.span(f"op.{op.kind}") as span:
                    if span:
                        span.set("arg", op.arg)
                        span.set("user", script.user_id)
                    self._run_op(session, op)
            except Exception:
                errors += 1
            else:
                completed += 1
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            local.setdefault(op.kind, []).append(elapsed_ms)
        with self._lock:
            self._errors += errors
            for kind, samples in local.items():
                self._latencies.setdefault(kind, []).extend(samples)
        return completed, errors

    def run(self, scripts: list[SessionScript] | None = None) -> LoadReport:
        """Execute the workload with ``config.concurrency`` worker threads."""
        if scripts is None:
            scripts = build_workload(self.app.store, self.config)
        started = time.perf_counter()
        completed = 0
        with ThreadPoolExecutor(
            max_workers=self.config.concurrency,
            thread_name_prefix="load-session",
        ) as pool:
            for done, _ in pool.map(self._run_session, scripts):
                completed += done
        # Drain any usage events still buffered in the coalescing window
        # before the stats snapshot, so the report reflects every write.
        self.stream.flush()
        wall_s = time.perf_counter() - started
        self.app.close()
        return LoadReport(
            config=self.config,
            single_flight=self.single_flight,
            ops=completed,
            errors=self._errors,
            wall_s=wall_s,
            latencies_ms=self._latencies,
            stats=self.engine.stats.snapshot(),
            isolation_checks=self._isolation_checks,
            isolation_violations=self._isolation_violations,
            slowest=self._slowest_block(),
        )

    def _slowest_block(self) -> list[dict]:
        """Reconstruct the top-N slowest op traces from the ring buffer."""
        if self._ring is None:
            return []
        roots = [
            span
            for span in self._ring.spans()
            if span.parent_id is None and span.name.startswith("op.")
        ]
        roots.sort(key=lambda span: span.duration_ms or 0.0, reverse=True)
        block: list[dict] = []
        for root in roots[: self.config.trace_slowest]:
            spans = self._ring.trace(root.trace_id)
            block.append(
                {
                    "op": root.name,
                    "arg": root.attrs.get("arg", ""),
                    "duration_ms": round(root.duration_ms or 0.0, 3),
                    "spans": [span.to_dict() for span in spans],
                    "tree": render_span_tree(spans),
                }
            )
        return block


def run_load(
    store: CatalogStore,
    config: LoadConfig | None = None,
    single_flight: bool = True,
    policy: ExecutionPolicy | None = None,
) -> LoadReport:
    """Build a harness, run the seeded workload, return the report."""
    harness = LoadHarness(
        store,
        config or LoadConfig(),
        single_flight=single_flight,
        policy=policy,
    )
    return harness.run()
