"""Deterministic identifier generation.

Everything in the reproduction must be reproducible from a seed, so ids are
sequence numbers with a typed prefix rather than UUIDs.
"""

from __future__ import annotations

import re
from collections import defaultdict

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Lower-case *text* and replace runs of non-alphanumerics with ``_``.

    >>> slugify("Owned By!")
    'owned_by'
    """
    slug = _SLUG_RE.sub("_", text.lower()).strip("_")
    return slug or "x"


class IdFactory:
    """Produces deterministic ids such as ``table-00042``.

    A single factory is shared per catalog so ids are unique per kind and
    stable across runs with the same construction order.
    """

    def __init__(self, width: int = 5):
        self._width = width
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, kind: str) -> str:
        """Return the next id for *kind*, e.g. ``next('user') -> 'user-00001'``."""
        self._counters[kind] += 1
        return f"{kind}-{self._counters[kind]:0{self._width}d}"

    def peek(self, kind: str) -> int:
        """Return how many ids of *kind* have been issued."""
        return self._counters[kind]

    def reset(self) -> None:
        """Forget all counters (used by tests)."""
        self._counters.clear()
