"""Text normalisation and tokenisation used across search and similarity.

Centralising these keeps the query evaluator, the TF-IDF vectoriser and the
keyword baseline agreeing on what a "token" is.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def normalize(text: str) -> str:
    """Lower-case and collapse whitespace; the canonical comparable form."""
    return " ".join(text.lower().split())


def tokenize(text: str) -> list[str]:
    """Split *text* into lower-case alphanumeric tokens.

    CamelCase identifiers are split first so ``SalesOrders`` yields
    ``['sales', 'orders']``, matching how analysts actually search.

    >>> tokenize("SalesOrders_2024 final")
    ['sales', 'orders', '2024', 'final']
    """
    decamel = _CAMEL_RE.sub(" ", text)
    return _TOKEN_RE.findall(decamel.lower())


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of *n*-grams over *tokens* (empty if too short)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def truncate(text: str, limit: int, ellipsis: str = "…") -> str:
    """Shorten *text* to at most *limit* characters, appending *ellipsis*."""
    if limit < 0:
        raise ValueError("limit must be non-negative")
    if len(text) <= limit:
        return text
    if limit <= len(ellipsis):
        return ellipsis[:limit]
    return text[: limit - len(ellipsis)] + ellipsis
