"""Shared utilities: deterministic ids, a simulation clock, text helpers."""

from repro.util.clock import SimulationClock
from repro.util.ids import IdFactory, slugify
from repro.util.textutil import normalize, tokenize

__all__ = [
    "IdFactory",
    "SimulationClock",
    "normalize",
    "slugify",
    "tokenize",
]
