"""A controllable simulation clock.

Wall-clock time makes tests flaky and synthetic catalogs irreproducible, so
every timestamp in the library flows through a :class:`SimulationClock` that
starts at a fixed epoch and only advances when told to.
"""

from __future__ import annotations

DAY = 86_400.0
HOUR = 3_600.0

#: 2024-01-01T00:00:00Z — an arbitrary but fixed simulation epoch.
DEFAULT_EPOCH = 1_704_067_200.0


class SimulationClock:
    """Monotonic, manually advanced clock.

    >>> clock = SimulationClock()
    >>> t0 = clock.now()
    >>> _ = clock.advance(days=2)
    >>> clock.now() - t0
    172800.0
    """

    def __init__(self, epoch: float = DEFAULT_EPOCH):
        self._epoch = epoch
        self._now = epoch

    @property
    def epoch(self) -> float:
        """The time the clock started at."""
        return self._epoch

    def now(self) -> float:
        """Current simulated time in seconds since the Unix epoch."""
        return self._now

    def advance(self, seconds: float = 0.0, days: float = 0.0) -> float:
        """Move time forward and return the new time.

        Negative advances are rejected to preserve monotonicity.
        """
        delta = seconds + days * DAY
        if delta < 0:
            raise ValueError(f"clock cannot move backwards (delta={delta})")
        self._now += delta
        return self._now

    def at(self, days_after_epoch: float) -> float:
        """Return the absolute timestamp *days_after_epoch* days past the epoch."""
        return self._epoch + days_after_epoch * DAY

    def days_since(self, timestamp: float) -> float:
        """Age of *timestamp* in days relative to the current simulated time."""
        return (self._now - timestamp) / DAY
