"""The federated catalog: one discovery surface over N member catalogs.

ROADMAP item 5 (catalog-of-catalogs): a :class:`FederatedCatalog`
registers any mix of member :class:`~repro.catalog.store.CatalogStore`
backends — fully-resident in-memory stores and lazily-loaded sqlite
files side by side — behind the store's read API with
catalog-qualified ids (see :mod:`repro.federation.refs`).

Cross-catalog search is a fan-out through the execution layer, not a
bespoke loop: each member owns a full single-catalog query stack
(registry, engine, evaluator), and the federation registers one
``fed://<catalog_id>/search`` endpoint per member on its *own*
registry/engine.  A federated search becomes one
:meth:`~repro.providers.execution.ExecutionEngine.execute_many` batch,
so per-member retries, TTL caches, circuit breakers, deadline budgets
and stale-serving all apply per member for free — one slow or failing
member degrades the result (flagged, partial) instead of sinking the
whole query.

Merging is **rank-aware interleaving**: members return their full
scored match lists (scores are per-artifact — no cross-artifact
normalisation — and rounded exactly as :meth:`~repro.core.ranking.
Ranker.top_k` rounds them), and the federation interleaves on
``(-score, artifact_id)``, the same ordering key a single merged
catalog would use.  Over disjoint members this reproduces the monolith
result list bit-for-bit; ``tests/test_federation.py`` holds the
conformance gate.

**Stability: internal.** Import :class:`repro.Discovery` (see
``repro.__all__``) — this module's internals may change without notice.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.catalog.domains import DOMAINS
from repro.catalog.lineage import LineageEdge
from repro.catalog.model import Artifact, ArtifactType, Team, User
from repro.catalog.store import CatalogStore
from repro.catalog.usage import UsageStats
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.core.spec.model import HumboldtSpec
from repro.federation.refs import (
    CatalogRef,
    FederationError,
    UnknownCatalogError,
    parse_ref,
    validate_catalog_id,
)
from repro.obs.trace import Tracer
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    FetchStatus,
    ProviderHealth,
)
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.util.clock import SimulationClock

#: Per-member fetch cap for federated search fan-outs; mirrors
#: :attr:`QueryEvaluator.fetch_limit` so a member contributes its full
#: match list and the merge can never lose a global top-k entry.
FETCH_LIMIT = 10_000


def member_search_endpoint_uri(catalog_id: str) -> str:
    """The federation-registry URI of one member's search endpoint."""
    return f"fed://{catalog_id}/search"


@dataclass(frozen=True)
class FederatedEntry:
    """One ranked search hit, attributed to its member catalog."""

    ref: CatalogRef
    score: float

    @property
    def id(self) -> str:
        """The qualified ``catalog:artifact`` id."""
        return self.ref.qualified

    @property
    def artifact_id(self) -> str:
        """The bare (member-local) artifact id."""
        return self.ref.artifact_id


@dataclass(frozen=True)
class FederatedSearchResult:
    """The merged outcome of one cross-catalog search."""

    query: str
    entries: tuple[FederatedEntry, ...]
    total: int
    #: True when any member's contribution filled :data:`FETCH_LIMIT` —
    #: the merge may then under-report matches from that member.
    truncated: bool = False
    #: True when any member was served stale, skipped, or failed.
    degraded: bool = False
    #: One marker per degraded member fetch explaining why.
    health: tuple[ProviderHealth, ...] = ()
    #: Members whose results are present in ``entries``.
    responded: tuple[str, ...] = ()
    #: Members that contributed nothing (error / open breaker / spent
    #: deadline with no stale fallback).
    failed: tuple[str, ...] = ()

    def artifact_ids(self) -> list[str]:
        """Qualified ids, merged rank order."""
        return [entry.id for entry in self.entries]

    def bare_ids(self) -> list[str]:
        """Member-local ids, merged rank order."""
        return [entry.ref.artifact_id for entry in self.entries]

    def is_empty(self) -> bool:
        return self.total == 0


@dataclass(frozen=True)
class CrossCatalogEdge:
    """A lineage edge whose endpoints live in different members."""

    src: CatalogRef
    dst: CatalogRef
    kind: str = "derives"


@dataclass(frozen=True)
class FederatedEdge:
    """One edge of a stitched lineage neighborhood (qualified ids)."""

    src: str
    dst: str
    kind: str = "derives"
    #: True when the edge crosses a member boundary.
    cross: bool = False


@dataclass(frozen=True)
class FederatedLineage:
    """A lineage neighborhood stitched across member graphs."""

    root: CatalogRef
    nodes: tuple[str, ...]
    edges: tuple[FederatedEdge, ...]


@dataclass
class _Member:
    """One registered catalog plus its private single-catalog stack."""

    catalog_id: str
    store: CatalogStore
    evaluator: QueryEvaluator
    owned: bool = False


class _MemberSearchEndpoint:
    """The fan-out leaf: one member's full scored match list.

    Runs the member's own evaluator at the federation fetch cap so the
    returned payload is the member's *complete* ranked match list (the
    global top-k over disjoint members is a subset of the union of the
    members' lists only when no member pre-truncates below the cap).
    The result rides the execution layer's normal ``ProviderResult``
    envelope, so the federation engine can cache, stale-serve and
    invalidate it like any provider payload.
    """

    def __init__(self, member: _Member):
        self._member = member

    def __call__(self, request: ProviderRequest):
        from repro.providers.base import (
            ProviderResult,
            Representation,
            ScoredArtifact,
        )

        query = request.input("query")
        context = RequestContext(
            user_id=request.context.user_id,
            team_id=request.context.team_id,
            limit=FETCH_LIMIT,
        )
        result = self._member.evaluator.search(
            query, context=context, limit=FETCH_LIMIT
        )
        return ProviderResult(
            representation=Representation.LIST,
            items=tuple(
                ScoredArtifact(artifact_id=e.artifact_id, score=e.score)
                for e in result.entries
            ),
        )


class _FederatedStoreView:
    """Duck-typed version surface the federation engine invalidates on.

    The engine only needs ``version``/``domain_versions`` from its store
    to sweep dependent cache entries; summing the members' counters (plus
    a membership generation bumped on add/remove/default changes) means
    any member write — on any backend — invalidates federated search
    caches conservatively.  No event log is exposed, so the engine takes
    its coarse drop path rather than attempting cross-catalog deltas.
    """

    def __init__(self, catalog: "FederatedCatalog"):
        self._catalog = catalog

    @property
    def version(self) -> int:
        total = self._catalog._generation
        for member in self._catalog._members.values():
            total += member.store.version
        return total

    @property
    def domain_versions(self) -> dict[str, int]:
        totals = {domain: self._catalog._generation for domain in DOMAINS}
        for member in self._catalog._members.values():
            for domain, value in member.store.domain_versions.items():
                totals[domain] = totals.get(domain, 0) + value
        return totals

    def domain_version(self, domain: str) -> int:
        return self.domain_versions[domain]


class FederatedCatalog:
    """N member catalogs behind one read/search/lineage surface.

    Members are added with :meth:`add_member` (a live store, or a path
    opened as a persistent sqlite catalog); the first member added — or
    an explicit :meth:`set_default` — becomes the default that bare
    (unqualified) artifact ids resolve against, which keeps
    single-catalog call sites working unchanged.
    """

    def __init__(
        self,
        *,
        spec: HumboldtSpec | None = None,
        policy: ExecutionPolicy | None = None,
        clock: SimulationClock | None = None,
    ):
        self._spec = spec or default_spec()
        self._policy = policy or ExecutionPolicy.defaults()
        self._clock = clock
        self._language = QueryLanguage(self._spec)
        self._members: dict[str, _Member] = {}
        self._default_id: str | None = None
        #: Bumped on membership/topology changes so the engine's
        #: version-keyed caches can never serve a pre-change merge.
        self._generation = 0
        self._registry = EndpointRegistry()
        self._store_view = _FederatedStoreView(self)
        self._engine = ExecutionEngine(
            self._registry,
            store=self._store_view,
            policy=self._policy,
            clock=self._clock,
        )
        self._cross_edges: list[CrossCatalogEdge] = []
        #: Shared tracer, when tracing is enabled via :meth:`set_tracer`.
        self._tracer: "Tracer | None" = None

    # -- observability -----------------------------------------------------

    def set_tracer(self, tracer: "Tracer") -> None:
        """Share one tracer across the federation and member engines.

        A federated search fans out through the federation engine into
        member evaluators running on their *own* engines; giving every
        engine the same tracer instance keeps the whole fan-out in one
        trace (member-side spans parent under the federation's fetch
        spans via the engine's cross-thread context propagation).
        Members added later inherit the tracer automatically.
        """
        self._tracer = tracer
        self._engine.tracer = tracer
        for member in self._members.values():
            member.evaluator.engine.tracer = tracer

    @property
    def tracer(self) -> "Tracer":
        """The active tracer (the engine's no-op tracer by default)."""
        return self._engine.tracer

    # -- membership --------------------------------------------------------

    def add_member(
        self,
        catalog_id: str,
        source: "CatalogStore | str | Path",
        *,
        default: bool = False,
    ) -> CatalogRef:
        """Register *source* under *catalog_id*.

        *source* may be a live :class:`CatalogStore` (caller keeps
        ownership; the federation only flushes it on close) or a path,
        opened as a persistent catalog the federation owns and closes.
        The first member registered becomes the default automatically.
        """
        validate_catalog_id(catalog_id)
        if catalog_id in self._members:
            raise FederationError(
                f"catalog {catalog_id!r} is already registered"
            )
        owned = not isinstance(source, CatalogStore)
        store = source if isinstance(source, CatalogStore) else CatalogStore.open(source)
        engine = ExecutionEngine(
            EndpointRegistry(),
            store=store,
            policy=self._policy,
            clock=self._clock,
        )
        if self._tracer is not None:
            engine.tracer = self._tracer
        install_builtin_endpoints(engine.registry, BuiltinProviders(store))
        evaluator = QueryEvaluator(
            store, engine, self._language, Ranker(FieldResolver(store))
        )
        member = _Member(
            catalog_id=catalog_id,
            store=store,
            evaluator=evaluator,
            owned=owned,
        )
        self._members[catalog_id] = member
        self._registry.register(
            member_search_endpoint_uri(catalog_id),
            _MemberSearchEndpoint(member),
        )
        if default or self._default_id is None:
            self._default_id = catalog_id
        self._generation += 1
        return CatalogRef(catalog_id=catalog_id, artifact_id="")

    def set_default(self, catalog_id: str) -> None:
        """Make *catalog_id* the member bare ids resolve against."""
        self._member(catalog_id)
        self._default_id = catalog_id
        self._generation += 1

    @property
    def default_id(self) -> str | None:
        return self._default_id

    def member_ids(self) -> tuple[str, ...]:
        """Registered member ids, registration order."""
        return tuple(self._members)

    def member_store(self, catalog_id: str) -> CatalogStore:
        """The underlying store of one member (member-local bare ids)."""
        return self._member(catalog_id).store

    @property
    def registry(self) -> EndpointRegistry:
        """The federation-level registry holding the member endpoints."""
        return self._registry

    @property
    def engine(self) -> ExecutionEngine:
        """The federation-level execution engine the fan-out runs on."""
        return self._engine

    def _member(self, catalog_id: str) -> _Member:
        try:
            return self._members[catalog_id]
        except KeyError:
            raise UnknownCatalogError(catalog_id, self._members) from None

    # -- addressing --------------------------------------------------------

    def parse(self, ref: "str | CatalogRef") -> CatalogRef:
        """Resolve a (possibly bare) ref against the registered members."""
        return parse_ref(ref, self._members, default=self._default_id)

    def qualify(self, catalog_id: str, artifact_id: str) -> str:
        """The qualified id for a member-local artifact id."""
        self._member(catalog_id)
        return CatalogRef(catalog_id, artifact_id).qualified

    # -- store read API (qualified ids) ------------------------------------

    def artifact(self, ref: "str | CatalogRef") -> Artifact:
        parsed = self.parse(ref)
        return self._member(parsed.catalog_id).store.artifact(parsed.artifact_id)

    def has_artifact(self, ref: "str | CatalogRef") -> bool:
        try:
            parsed = self.parse(ref)
        except FederationError:
            return False
        member = self._members.get(parsed.catalog_id)
        return member is not None and member.store.has_artifact(parsed.artifact_id)

    def resolve(self, refs: Iterable["str | CatalogRef"]) -> list[Artifact]:
        """Map refs to artifacts, skipping ones that do not resolve."""
        return [self.artifact(ref) for ref in refs if self.has_artifact(ref)]

    @property
    def artifact_count(self) -> int:
        return sum(m.store.artifact_count for m in self._members.values())

    def artifact_ids(self) -> list[str]:
        """All qualified ids: members in registration order, ids sorted
        within each member (each member's own deterministic order)."""
        return self._collect(lambda store: store.artifact_ids())

    def by_type(self, artifact_type: "ArtifactType | str") -> list[str]:
        return self._collect(lambda store: store.by_type(artifact_type))

    def by_owner(self, user_id: str) -> list[str]:
        return self._collect(lambda store: store.by_owner(user_id))

    def by_badge(self, badge: str, granted_by: str | None = None) -> list[str]:
        return self._collect(lambda store: store.by_badge(badge, granted_by))

    def by_tag(self, tag: str) -> list[str]:
        return self._collect(lambda store: store.by_tag(tag))

    def by_team(self, team_id: str) -> list[str]:
        return self._collect(lambda store: store.by_team(team_id))

    def by_token(self, token: str) -> list[str]:
        return self._collect(lambda store: store.by_token(token))

    def search_tokens(self, tokens: Iterable[str]) -> list[str]:
        tokens = list(tokens)
        return self._collect(lambda store: store.search_tokens(tokens))

    def _collect(self, accessor) -> list[str]:
        qualified: list[str] = []
        for catalog_id, member in self._members.items():
            qualified.extend(
                CatalogRef(catalog_id, artifact_id).qualified
                for artifact_id in accessor(member.store)
            )
        return qualified

    def users(self) -> list[User]:
        """Union of member user directories, first registration wins."""
        seen: dict[str, User] = {}
        for member in self._members.values():
            for user in member.store.users():
                seen.setdefault(user.id, user)
        return list(seen.values())

    def teams(self) -> list[Team]:
        seen: dict[str, Team] = {}
        for member in self._members.values():
            for team in member.store.teams():
                seen.setdefault(team.id, team)
        return list(seen.values())

    def usage_stats(self, ref: "str | CatalogRef") -> UsageStats:
        parsed = self.parse(ref)
        return self._member(parsed.catalog_id).store.usage_stats(parsed.artifact_id)

    @property
    def version(self) -> int:
        """Aggregate mutation counter (member sums + membership changes)."""
        return self._store_view.version

    @property
    def domain_versions(self) -> dict[str, int]:
        return self._store_view.domain_versions

    # -- search ------------------------------------------------------------

    def search(
        self,
        query: str,
        *,
        user_id: str = "",
        team_id: str = "",
        limit: int = 50,
        budget_ms: float | None = None,
        members: Sequence[str] | None = None,
    ) -> FederatedSearchResult:
        """Fan *query* out to every member (or just *members*) and merge.

        One :meth:`ExecutionEngine.execute_many` batch per search: each
        member fetch runs under its own breaker/retry/cache state and
        the shared *budget_ms* deadline.  A member that fails, trips its
        breaker or exhausts the budget is dropped from the merge and the
        result is flagged ``degraded`` with a per-member health marker —
        partial answers beat no answer, which is the federation's
        explicit departure from the single-catalog evaluator's
        fail-loudly contract.
        """
        if not self._members:
            raise FederationError("no member catalogs registered")
        targets = list(members) if members is not None else list(self._members)
        for catalog_id in targets:
            self._member(catalog_id)
        with self._engine.tracer.span("federation.search") as span:
            if span:
                span.set("query", query)
                span.set("members", ",".join(targets))
            result = self._search_fanout(
                query,
                targets,
                user_id=user_id,
                team_id=team_id,
                limit=limit,
                budget_ms=budget_ms,
            )
            if span:
                span.set("responded", len(result.responded))
                span.set("failed", len(result.failed))
                span.set("total", result.total)
                if result.degraded:
                    span.set("degraded", True)
                if result.truncated:
                    span.set("truncated", True)
            return result

    def _search_fanout(
        self,
        query: str,
        targets: list[str],
        *,
        user_id: str,
        team_id: str,
        limit: int,
        budget_ms: float | None,
    ) -> FederatedSearchResult:
        calls = [
            (
                member_search_endpoint_uri(catalog_id),
                ProviderRequest(
                    inputs={"query": query},
                    context=RequestContext(
                        user_id=user_id, team_id=team_id, limit=FETCH_LIMIT
                    ),
                ),
            )
            for catalog_id in targets
        ]
        deadline = self._engine.deadline(budget_ms)
        outcomes = self._engine.execute_many(calls, deadline=deadline)

        entries: list[FederatedEntry] = []
        health: list[ProviderHealth] = []
        responded: list[str] = []
        failed: list[str] = []
        total = 0
        truncated = False
        degraded = False
        for catalog_id, outcome in zip(targets, outcomes):
            if outcome.status is FetchStatus.ERROR or outcome.result is None:
                failed.append(catalog_id)
                degraded = True
                health.append(outcome.health_marker(provider=catalog_id))
                continue
            if outcome.degraded:  # stale-served member payload
                degraded = True
                health.append(outcome.health_marker(provider=catalog_id))
            responded.append(catalog_id)
            items = outcome.result.items
            total += len(items)
            if len(items) >= FETCH_LIMIT:
                truncated = True
            entries.extend(
                FederatedEntry(
                    ref=CatalogRef(catalog_id, item.artifact_id),
                    score=item.score,
                )
                for item in items
            )
        # Rank-aware interleave: scores are rounded per-artifact exactly
        # as Ranker.top_k rounds them, so (-score, bare id) reproduces
        # the ordering one merged catalog would produce; the catalog id
        # breaks the (disjoint-members-impossible) exact tie.
        entries.sort(
            key=lambda e: (-e.score, e.ref.artifact_id, e.ref.catalog_id)
        )
        unique_markers: dict[tuple[str, str], ProviderHealth] = {}
        for marker in health:
            unique_markers.setdefault((marker.provider, marker.status), marker)
        return FederatedSearchResult(
            query=query,
            entries=tuple(entries[: max(limit, 0)]),
            total=total,
            truncated=truncated,
            degraded=degraded,
            health=tuple(unique_markers.values()),
            responded=tuple(responded),
            failed=tuple(failed),
        )

    # -- cross-catalog lineage ---------------------------------------------

    def add_cross_edge(
        self,
        src: "str | CatalogRef",
        dst: "str | CatalogRef",
        kind: str = "derives",
    ) -> CrossCatalogEdge:
        """Record a lineage edge whose endpoints live in different members.

        Both endpoints must resolve to existing artifacts.  Same-member
        edges belong in that member's own graph (which enforces cycle
        checks); routing them here would silently bypass those checks,
        so they are rejected.
        """
        LineageEdge("_src", "_dst", kind)  # validates kind
        src_ref, dst_ref = self.parse(src), self.parse(dst)
        for ref in (src_ref, dst_ref):
            if not self._member(ref.catalog_id).store.has_artifact(ref.artifact_id):
                raise FederationError(
                    f"cross-catalog edge endpoint {ref.qualified!r} does "
                    "not exist"
                )
        if src_ref.catalog_id == dst_ref.catalog_id:
            raise FederationError(
                f"edge {src_ref.qualified!r} -> {dst_ref.qualified!r} stays "
                f"inside {src_ref.catalog_id!r}; add it to that member's "
                "lineage graph instead"
            )
        edge = CrossCatalogEdge(src=src_ref, dst=dst_ref, kind=kind)
        if edge not in self._cross_edges:
            self._cross_edges.append(edge)
            self._generation += 1
        return edge

    def cross_edges(self) -> tuple[CrossCatalogEdge, ...]:
        return tuple(self._cross_edges)

    def lineage(self, ref: "str | CatalogRef", depth: int = 2) -> FederatedLineage:
        """The stitched lineage neighborhood of *ref*.

        Matches :meth:`LineageGraph.subgraph_around` semantics — nodes
        within *depth* hops upstream plus *depth* hops downstream, and
        every retained edge connects two retained nodes — except hops
        may traverse registered cross-catalog edges, so the neighborhood
        spans member graphs.
        """
        root = self.parse(ref)
        self._member(root.catalog_id)
        nodes = {root}
        nodes.update(self._reachable(root, depth, upstream=True))
        nodes.update(self._reachable(root, depth, upstream=False))
        edges: list[FederatedEdge] = []
        touched = {node.catalog_id for node in nodes}
        for catalog_id in touched:
            graph = self._member(catalog_id).store.lineage
            for edge in graph.edges():
                src = CatalogRef(catalog_id, edge.src)
                dst = CatalogRef(catalog_id, edge.dst)
                if src in nodes and dst in nodes:
                    edges.append(
                        FederatedEdge(
                            src=src.qualified,
                            dst=dst.qualified,
                            kind=edge.kind,
                            cross=False,
                        )
                    )
        for cross in self._cross_edges:
            if cross.src in nodes and cross.dst in nodes:
                edges.append(
                    FederatedEdge(
                        src=cross.src.qualified,
                        dst=cross.dst.qualified,
                        kind=cross.kind,
                        cross=True,
                    )
                )
        edges.sort(key=lambda e: (e.src, e.dst))
        return FederatedLineage(
            root=root,
            nodes=tuple(sorted(node.qualified for node in nodes)),
            edges=tuple(edges),
        )

    def _reachable(
        self, root: CatalogRef, depth: int, upstream: bool
    ) -> set[CatalogRef]:
        """Directional BFS over member graphs plus cross edges."""
        reached: set[CatalogRef] = set()
        frontier = [root]
        for _ in range(max(depth, 0)):
            next_frontier: list[CatalogRef] = []
            for node in frontier:
                for neighbor in self._neighbors(node, upstream):
                    if neighbor == root or neighbor in reached:
                        continue
                    reached.add(neighbor)
                    next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
        return reached

    def _neighbors(self, node: CatalogRef, upstream: bool) -> list[CatalogRef]:
        graph = self._member(node.catalog_id).store.lineage
        local = graph.parents(node.artifact_id) if upstream else graph.children(
            node.artifact_id
        )
        neighbors = [CatalogRef(node.catalog_id, aid) for aid in local]
        for edge in self._cross_edges:
            if upstream and edge.dst == node:
                neighbors.append(edge.src)
            elif not upstream and edge.src == node:
                neighbors.append(edge.dst)
        return neighbors

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release engines and flush/close member stores.

        Stores the federation opened itself (path members) are closed;
        caller-provided stores are only flushed — their lifecycle stays
        with the caller.
        """
        self._engine.close()
        for member in self._members.values():
            member.evaluator.engine.close()
            if member.owned:
                member.store.close()
            else:
                member.store.flush()

    def __enter__(self) -> "FederatedCatalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "FETCH_LIMIT",
    "CrossCatalogEdge",
    "FederatedCatalog",
    "FederatedEdge",
    "FederatedEntry",
    "FederatedLineage",
    "FederatedSearchResult",
    "member_search_endpoint_uri",
]
