"""Deterministic partitioning of one catalog into disjoint members.

The conformance gate for federation (a federated search over k disjoint
members must equal the same search on the merged monolith, ids *and*
ordering) needs a way to build both sides from one corpus.
:func:`partition_catalog` shards a generated catalog round-robin over
sorted artifact ids: users and teams are replicated into every member
(directory data is reference data, not partitioned data), artifacts and
their usage events land in exactly one member, intra-member lineage
edges go into that member's own graph, and edges whose endpoints land
in different members come back as the federation's cross-catalog edges.

The member stores share the source store's clock, so recency-derived
ranking fields resolve identically on both sides of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.store import CatalogStore
from repro.core.spec.model import HumboldtSpec
from repro.federation.catalog import FederatedCatalog
from repro.federation.refs import CatalogRef, FederationError, validate_catalog_id
from repro.providers.execution import ExecutionPolicy
from repro.util.clock import SimulationClock


@dataclass(frozen=True)
class CatalogPartition:
    """The output of :func:`partition_catalog`."""

    #: Member id -> disjoint member store, registration order preserved.
    members: dict[str, CatalogStore]
    #: Bare artifact id -> owning member id (total over the source).
    assignment: dict[str, str]
    #: Lineage edges split across members: (src_ref, dst_ref, kind).
    cross_edges: tuple[tuple[CatalogRef, CatalogRef, str], ...]

    def owner(self, artifact_id: str) -> str:
        return self.assignment[artifact_id]


def partition_catalog(
    store: CatalogStore,
    parts: "int | Sequence[str]" = 4,
    *,
    prefix: str = "cat",
) -> CatalogPartition:
    """Split *store* into disjoint in-memory member stores.

    *parts* is a member count (names ``cat0..catN-1``) or an explicit
    sequence of member names.  Assignment is round-robin over sorted
    artifact ids — deterministic and balanced.  The source store is not
    modified; it remains the merged monolith the federation can be
    compared against.
    """
    names = (
        [f"{prefix}{index}" for index in range(parts)]
        if isinstance(parts, int)
        else list(parts)
    )
    if len(names) < 1:
        raise FederationError("partition needs at least one member")
    if len(set(names)) != len(names):
        raise FederationError(f"duplicate member names in {names!r}")
    for name in names:
        validate_catalog_id(name)

    members = {name: CatalogStore(clock=store.clock) for name in names}
    ids = store.artifact_ids()
    assignment = {aid: names[index % len(names)] for index, aid in enumerate(ids)}

    users = store.users()
    teams = store.teams()
    for member in members.values():
        for user in users:
            member.add_user(user)
        for team in teams:
            member.add_team(team)
    for artifact_id in ids:
        members[assignment[artifact_id]].add_artifact(store.artifact(artifact_id))
    for event in store.usage.events():
        owner = assignment.get(event.artifact_id)
        if owner is not None:
            members[owner].record_event(event)

    cross: list[tuple[CatalogRef, CatalogRef, str]] = []
    for edge in store.lineage.edges():
        src_owner = assignment.get(edge.src)
        dst_owner = assignment.get(edge.dst)
        if src_owner is None or dst_owner is None:
            continue  # lineage node with no artifact record; unownable
        if src_owner == dst_owner:
            members[src_owner].lineage.add_edge(edge.src, edge.dst, edge.kind)
        else:
            cross.append(
                (
                    CatalogRef(src_owner, edge.src),
                    CatalogRef(dst_owner, edge.dst),
                    edge.kind,
                )
            )
    return CatalogPartition(
        members=members,
        assignment=assignment,
        cross_edges=tuple(cross),
    )


def federate(
    store: CatalogStore,
    parts: "int | Sequence[str]" = 4,
    *,
    prefix: str = "cat",
    spec: HumboldtSpec | None = None,
    policy: ExecutionPolicy | None = None,
    clock: SimulationClock | None = None,
) -> tuple[FederatedCatalog, CatalogPartition]:
    """Partition *store* and stand a :class:`FederatedCatalog` over it.

    The first member becomes the default; cross-partition lineage edges
    are registered as the federation's cross-catalog edges.  Returns the
    federation plus the partition (for assignment/leakage checks).
    """
    partition = partition_catalog(store, parts, prefix=prefix)
    federation = FederatedCatalog(spec=spec, policy=policy, clock=clock)
    for name, member_store in partition.members.items():
        federation.add_member(name, member_store)
    for src, dst, kind in partition.cross_edges:
        federation.add_cross_edge(src, dst, kind=kind)
    return federation, partition


__all__ = ["CatalogPartition", "federate", "partition_catalog"]
