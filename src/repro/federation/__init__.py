"""Federated multi-catalog discovery (ROADMAP item 5).

One discovery surface over N member catalogs: catalog-qualified
addressing (:mod:`.refs`), engine-mediated search fan-out with
per-member degradation and rank-aware merging (:mod:`.catalog`),
deterministic partitioning for conformance testing (:mod:`.partition`),
and the stable :class:`~repro.federation.facade.Discovery` entry point
(:mod:`.facade`).
"""

from repro.federation.catalog import (
    FETCH_LIMIT,
    CrossCatalogEdge,
    FederatedCatalog,
    FederatedEdge,
    FederatedEntry,
    FederatedLineage,
    FederatedSearchResult,
    member_search_endpoint_uri,
)
from repro.federation.facade import DEFAULT_MEMBER, Discovery
from repro.federation.partition import (
    CatalogPartition,
    federate,
    partition_catalog,
)
from repro.federation.refs import (
    SEPARATOR,
    CatalogRef,
    FederationError,
    UnknownCatalogError,
    parse_ref,
    validate_catalog_id,
)

__all__ = [
    "DEFAULT_MEMBER",
    "FETCH_LIMIT",
    "SEPARATOR",
    "CatalogPartition",
    "CatalogRef",
    "CrossCatalogEdge",
    "Discovery",
    "FederatedCatalog",
    "FederatedEdge",
    "FederatedEntry",
    "FederatedLineage",
    "FederatedSearchResult",
    "FederationError",
    "UnknownCatalogError",
    "federate",
    "member_search_endpoint_uri",
    "parse_ref",
    "partition_catalog",
    "validate_catalog_id",
]
