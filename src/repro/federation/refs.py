"""Catalog-qualified addressing for federated discovery.

A federation serves artifacts from many member catalogs, so ids gain a
catalog qualifier: ``catalog_id:artifact_id``.  Bare ids (no qualifier)
resolve against the federation's *default* member, which is what keeps
single-catalog callers working unchanged when their deployment grows a
second catalog.

Parsing is prefix-aware rather than blindly splitting on ``:``: a ref is
qualified only when the text before the first separator names a
registered member, so artifact ids themselves may contain the separator
without ambiguity (the deterministic synth ids never do, but external
catalogs make no such promise).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.errors import HumboldtError

#: Separator between the catalog qualifier and the artifact id.
SEPARATOR = ":"

#: Legal member names: non-empty, no separator, shell/URL-safe.
_CATALOG_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class FederationError(HumboldtError):
    """Base class for federation errors (bad refs, unknown members)."""


class UnknownCatalogError(FederationError, KeyError):
    """A ref named a catalog the federation has not registered."""

    def __init__(self, catalog_id: str, known: Iterable[str] = ()):
        self.catalog_id = catalog_id
        known_text = ", ".join(sorted(known)) or "<none>"
        super().__init__(
            f"unknown catalog {catalog_id!r} (registered: {known_text})"
        )

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def validate_catalog_id(catalog_id: str) -> str:
    """Check a member name is usable as a ref qualifier; returns it."""
    if not _CATALOG_ID_RE.match(catalog_id):
        raise FederationError(
            f"invalid catalog id {catalog_id!r}: must match "
            f"{_CATALOG_ID_RE.pattern} (no {SEPARATOR!r})"
        )
    return catalog_id


@dataclass(frozen=True, order=True)
class CatalogRef:
    """A fully-qualified reference to one artifact in one member catalog."""

    catalog_id: str
    artifact_id: str

    @property
    def qualified(self) -> str:
        """The canonical ``catalog_id:artifact_id`` spelling."""
        return f"{self.catalog_id}{SEPARATOR}{self.artifact_id}"

    def __str__(self) -> str:
        return self.qualified


def parse_ref(
    ref: "str | CatalogRef",
    known: Iterable[str],
    default: str | None = None,
) -> CatalogRef:
    """Resolve *ref* to a :class:`CatalogRef`.

    *known* is the set of registered member ids; *default* is the member
    bare ids resolve against.  A qualifier that names no known member
    raises :class:`UnknownCatalogError` **only** when the text before the
    separator could not be a plain artifact id falling back to the
    default — concretely: ``head:rest`` with an unknown ``head`` is an
    error, because silently treating a mistyped qualifier as a bare id
    would look up the wrong catalog.
    """
    if isinstance(ref, CatalogRef):
        return ref
    known = set(known)
    head, sep, rest = ref.partition(SEPARATOR)
    if sep and head in known:
        return CatalogRef(catalog_id=head, artifact_id=rest)
    if sep and rest and _CATALOG_ID_RE.match(head):
        # Looks like a qualified ref but the qualifier is unknown.
        raise UnknownCatalogError(head, known)
    if default is None:
        raise FederationError(
            f"bare artifact ref {ref!r} but the federation has no default "
            "member; qualify the ref or set a default"
        )
    if default not in known:
        raise UnknownCatalogError(default, known)
    return CatalogRef(catalog_id=default, artifact_id=ref)


__all__ = [
    "SEPARATOR",
    "CatalogRef",
    "FederationError",
    "UnknownCatalogError",
    "parse_ref",
    "validate_catalog_id",
]
