"""``Discovery`` — the supported entry point for discovery deployments.

Before federation, embedders reached into deep modules for whatever
layer they needed (``WorkbookApp`` here, ``QueryEvaluator`` there); the
api_redesign makes :class:`Discovery` the one stable front door for
both shapes of deployment::

    # single catalog (in-memory, a saved JSON store, or a sqlite path)
    with repro.Discovery.open(store) as discovery:
        result = discovery.search("badged: endorsed")

    # federated: any mix of live stores and sqlite paths
    with repro.Discovery.open(members={
        "sales": "catalogs/sales.db",
        "ml": ml_store,
    }, default="sales") as discovery:
        result = discovery.search("type: table", budget_ms=250.0)
        artifact = discovery.artifact("ml:table-00042")

A single-catalog ``open(source)`` is just a one-member federation named
``main`` — bare artifact ids keep resolving exactly as before, and the
same object grows to N members without the call sites changing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.catalog.model import Artifact
from repro.catalog.store import CatalogStore
from repro.core.spec.model import HumboldtSpec
from repro.federation.catalog import (
    FederatedCatalog,
    FederatedLineage,
    FederatedSearchResult,
)
from repro.federation.refs import CatalogRef, FederationError
from repro.providers.execution import ExecutionEngine, ExecutionPolicy
from repro.util.clock import SimulationClock

#: The member name a single-catalog ``Discovery.open(source)`` uses.
DEFAULT_MEMBER = "main"


class Discovery:
    """One stable discovery surface over one or many catalogs."""

    def __init__(self, federation: FederatedCatalog):
        self.federation = federation

    @classmethod
    def open(
        cls,
        source: "CatalogStore | FederatedCatalog | str | Path | None" = None,
        *,
        members: "Mapping[str, CatalogStore | str | Path] | None" = None,
        default: str | None = None,
        spec: HumboldtSpec | None = None,
        policy: ExecutionPolicy | None = None,
        clock: SimulationClock | None = None,
    ) -> "Discovery":
        """Open a discovery surface.

        Pass exactly one of *source* (a single catalog: a live store, a
        sqlite path, or an already-built :class:`FederatedCatalog`) or
        *members* (name -> store/path, registered in mapping order).
        *default* names the member bare artifact ids resolve against
        (defaults to the first member).  Paths are opened as persistent
        catalogs owned — and closed — by the federation.
        """
        if (source is None) == (members is None):
            raise FederationError(
                "pass exactly one of `source` (single catalog) or "
                "`members` (federated deployment)"
            )
        if isinstance(source, FederatedCatalog):
            if spec is not None or policy is not None or clock is not None:
                raise FederationError(
                    "spec/policy/clock are fixed by the FederatedCatalog "
                    "passed as source"
                )
            return cls(source)
        federation = FederatedCatalog(spec=spec, policy=policy, clock=clock)
        if source is not None:
            federation.add_member(DEFAULT_MEMBER, source, default=True)
        else:
            for catalog_id, member_source in members.items():
                federation.add_member(catalog_id, member_source)
            if default is not None:
                federation.set_default(default)
        return cls(federation)

    # -- the supported surface --------------------------------------------

    def search(
        self,
        query: str,
        *,
        user_id: str = "",
        team_id: str = "",
        limit: int = 50,
        budget_ms: float | None = None,
        members: Sequence[str] | None = None,
    ) -> FederatedSearchResult:
        """Cross-catalog search; see :meth:`FederatedCatalog.search`."""
        return self.federation.search(
            query,
            user_id=user_id,
            team_id=team_id,
            limit=limit,
            budget_ms=budget_ms,
            members=members,
        )

    def artifact(self, ref: "str | CatalogRef") -> Artifact:
        """Resolve a (possibly bare) ref to its artifact."""
        return self.federation.artifact(ref)

    def has_artifact(self, ref: "str | CatalogRef") -> bool:
        return self.federation.has_artifact(ref)

    def lineage(self, ref: "str | CatalogRef", depth: int = 2) -> FederatedLineage:
        """The cross-catalog lineage neighborhood of *ref*."""
        return self.federation.lineage(ref, depth=depth)

    def members(self) -> tuple[str, ...]:
        """Registered member catalog ids, registration order."""
        return self.federation.member_ids()

    @property
    def default_member(self) -> str | None:
        return self.federation.default_id

    @property
    def engine(self) -> ExecutionEngine:
        """The federation-level execution engine (health, stats)."""
        return self.federation.engine

    def render_health(self) -> str:
        """Per-member endpoint resilience state, human-readable."""
        return self.federation.engine.render_health()

    def close(self) -> None:
        self.federation.close()

    def __enter__(self) -> "Discovery":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["DEFAULT_MEMBER", "Discovery"]
