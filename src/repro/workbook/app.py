"""The workbook application object.

Owns the catalog, the endpoint registry with the built-in provider suite
installed, and the generated discovery interface.  Hosts create sessions
per user; spec updates (e.g. a team admin reconfiguring a home page)
regenerate the interface in place, which is exactly the upgrade-free
evolution the paper claims.
"""

from __future__ import annotations

from repro.catalog.store import CatalogStore
from repro.core.interface.discovery import DiscoveryInterface
from repro.core.interface.exploration import ExplorationEngine
from repro.core.interface.homepage import HomePageManager
from repro.core.spec.customization import Customization
from repro.core.spec.model import HumboldtSpec
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    ExecutionStats,
)
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.workbook.session import Session


class WorkbookApp:
    """A running workbook application with Humboldt embedded."""

    def __init__(
        self,
        store: CatalogStore,
        spec: HumboldtSpec | None = None,
        registry: EndpointRegistry | None = None,
        policy: ExecutionPolicy | None = None,
        engine: ExecutionEngine | None = None,
    ):
        self.store = store
        self.registry = registry or EndpointRegistry()
        self.providers = BuiltinProviders(store)
        if registry is None:
            install_builtin_endpoints(self.registry, self.providers)
        self.customization = Customization()
        # *engine* lets hosts (e.g. the load harness) hand in a
        # pre-configured execution layer — custom middlewares, single-
        # flight toggles, tenant policies; *policy* configures a
        # newly-built one and is ignored when *engine* is given.
        self.interface = DiscoveryInterface(
            store=store,
            registry=self.registry,
            spec=spec or default_spec(),
            customization=self.customization,
            policy=policy,
            engine=engine,
        )
        self.exploration = ExplorationEngine(self.interface)
        self.home_pages = HomePageManager(self.interface)

    @property
    def spec(self) -> HumboldtSpec:
        return self.interface.spec

    @property
    def engine(self) -> ExecutionEngine:
        """The provider execution layer all of this app's fetches use."""
        return self.interface.engine

    @property
    def stats(self) -> ExecutionStats:
        """Execution metrics across every session and spec version."""
        return self.interface.stats

    def update_spec(self, spec: HumboldtSpec) -> None:
        """Swap in an updated spec; the UI regenerates, no code changes."""
        self.interface = self.interface.with_spec(spec)
        self.exploration = ExplorationEngine(self.interface)
        self.home_pages = HomePageManager(self.interface)

    def close(self) -> None:
        """Release execution resources (joins the engine's worker pool)
        and flush the store, so sessions against a persistent catalog
        never leave usage events or badge grants unpersisted."""
        self.engine.close()
        self.store.flush()

    def __enter__(self) -> "WorkbookApp":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def session(self, user_id: str, team_id: str = "") -> Session:
        """Open a UI session for *user_id*.

        The user's first team is the ambient team when none is given.
        """
        self.store.user(user_id)  # validate early
        if not team_id:
            teams = self.store.teams_of(user_id)
            if teams:
                team_id = teams[0].id
        return Session(app=self, user_id=user_id, team_id=team_id)
