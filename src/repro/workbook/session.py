"""Per-user UI sessions.

A :class:`Session` is the stateful surface a user (or a simulated study
participant) drives: a tab strip of generated views, a search bar with
autocomplete, artifact selection with preview and exploration panels, and
— after switching to the admin role — the configuration surfaces of
Figure 4.  Every action is event-logged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.interface.config import ConfigurationPanel
from repro.core.interface.discovery import Tab
from repro.core.interface.exploration import SurfacedView
from repro.core.interface.preview import PreviewPane, build_preview
from repro.core.query.autocomplete import Suggestion
from repro.core.query.evaluator import SearchResult
from repro.core.views.base import View
from repro.errors import ConfigurationError
from repro.workbook.events import EventLog

if TYPE_CHECKING:  # circular import guard for type hints only
    from repro.workbook.app import WorkbookApp


class Session:
    """One user's interactive session with the discovery UI."""

    def __init__(self, app: "WorkbookApp", user_id: str, team_id: str = ""):
        self.app = app
        self.user_id = user_id
        self.team_id = team_id
        self.events = EventLog()
        self.role = "user"
        self._tabs: list[Tab] = []
        self._active_tab = 0
        self._selection: str | None = None
        self._last_search: SearchResult | None = None
        self._search_history: list[str] = []
        self._saved_searches: dict[str, str] = {}

    # -- home and tabs (Figure 7B) ----------------------------------------

    def open_home(self) -> list[Tab]:
        """Open the home screen: team home page if configured, else the
        default overview tabs."""
        if self.team_id and self.app.home_pages.page_for(self.team_id):
            page = self.app.home_pages.home_page(
                self.team_id, user_id=self.user_id
            )
            self._tabs = list(page.tabs)
        else:
            self._tabs = self.app.interface.overview_tabs(
                user_id=self.user_id, team_id=self.team_id
            )
        self._active_tab = 0
        self.events.record(
            "home_opened",
            detail=",".join(t.provider_name for t in self._tabs),
            count=len(self._tabs),
        )
        return list(self._tabs)

    def open_browse(self) -> list[Tab]:
        """Open the full overview tab strip, bypassing any configured team
        home page — the "browse everything" surface."""
        self._tabs = self.app.interface.overview_tabs(
            user_id=self.user_id, team_id=self.team_id
        )
        self._active_tab = 0
        self.events.record(
            "home_opened",
            detail="browse",
            count=len(self._tabs),
        )
        return list(self._tabs)

    def tabs(self) -> list[Tab]:
        return list(self._tabs)

    def tab_titles(self) -> list[str]:
        return [tab.title for tab in self._tabs]

    def select_tab(self, name_or_index: "str | int") -> Tab:
        """Activate a tab by provider name, title or index."""
        if isinstance(name_or_index, int):
            index = name_or_index
            if not 0 <= index < len(self._tabs):
                raise IndexError(f"no tab at index {index}")
        else:
            wanted = name_or_index.lower()
            index = next(
                (
                    i
                    for i, tab in enumerate(self._tabs)
                    if wanted in (tab.provider_name.lower(), tab.title.lower())
                ),
                -1,
            )
            if index < 0:
                raise KeyError(f"no tab named {name_or_index!r}")
        self._active_tab = index
        tab = self._tabs[index]
        self.events.record("tab_selected", detail=tab.provider_name)
        return tab

    def active_view(self) -> View | None:
        if not self._tabs:
            return None
        return self._tabs[self._active_tab].view

    # -- search (Figure 7A) -----------------------------------------------------

    def search(
        self, query: str, limit: int = 50, budget_ms: float | None = None
    ) -> SearchResult:
        """Global search; results open in a new search tab (list view).

        *budget_ms* bounds provider work; a budget-limited search may
        return a ``degraded`` result (stale or skipped providers).
        """
        result, view = self.app.interface.search(
            query,
            user_id=self.user_id,
            team_id=self.team_id,
            limit=limit,
            budget_ms=budget_ms,
        )
        tab = Tab(
            provider_name="search",
            title="Search Results",
            category="search",
            view=view,
        )
        self._tabs.append(tab)
        self._active_tab = len(self._tabs) - 1
        self._last_search = result
        self._search_history.append(query)
        self.events.record("search", detail=query, total=result.total)
        return result

    def filter_active_view(self, query: str) -> View:
        """Filter the active view by a query (§5.3 search-over-view)."""
        view = self.active_view()
        if view is None:
            raise ConfigurationError("no active view to filter")
        filtered = self.app.interface.filter_view(
            view, query, user_id=self.user_id, team_id=self.team_id
        )
        tab = self._tabs[self._active_tab]
        self._tabs[self._active_tab] = Tab(
            provider_name=tab.provider_name,
            title=tab.title,
            category=tab.category,
            view=filtered,
        )
        self.events.record(
            "view_filtered",
            detail=query,
            view=tab.provider_name,
            remaining=filtered.count(),
        )
        return filtered

    def suggest(self, partial: str, limit: int = 8) -> list[Suggestion]:
        suggestions = self.app.interface.suggest(partial, limit=limit)
        self.events.record(
            "suggestions_shown", detail=partial, count=len(suggestions)
        )
        return suggestions

    def last_search(self) -> SearchResult | None:
        return self._last_search

    def search_history(self) -> list[str]:
        """Queries run this session, oldest first."""
        return list(self._search_history)

    def save_search(self, name: str, query: str = "") -> None:
        """Save a query under *name* (defaults to the last query run)."""
        query = query or (self._search_history[-1]
                          if self._search_history else "")
        if not query:
            raise ConfigurationError("no query to save")
        self._saved_searches[name] = query

    def saved_searches(self) -> dict[str, str]:
        return dict(self._saved_searches)

    def run_saved(self, name: str, limit: int = 50) -> SearchResult:
        """Re-run a saved query by name."""
        try:
            query = self._saved_searches[name]
        except KeyError:
            raise ConfigurationError(
                f"no saved search named {name!r}; have "
                f"{sorted(self._saved_searches)}"
            ) from None
        return self.search(query, limit=limit)

    # -- selection, preview, exploration (§6.3, Figure 7D) ------------------------

    def select_artifact(self, artifact_id: str) -> PreviewPane:
        """Select an artifact: records the selection, returns the preview."""
        self.app.store.artifact(artifact_id)  # validate
        self._selection = artifact_id
        self.events.record("artifact_selected", detail=artifact_id)
        preview = build_preview(self.app.store, artifact_id)
        self.events.record("preview_shown", detail=artifact_id)
        return preview

    @property
    def selection(self) -> str | None:
        return self._selection

    def explore_selection(self, limit: int = 10) -> list[SurfacedView]:
        """Views surfaced by the current selection (§5.2)."""
        if self._selection is None:
            raise ConfigurationError("no artifact selected")
        surfaced = self.app.exploration.explore(
            self._selection,
            user_id=self.user_id,
            team_id=self.team_id,
            limit=limit,
        )
        self.events.record(
            "exploration_shown",
            detail=self._selection,
            providers=[s.provider_name for s in surfaced],
        )
        return surfaced

    def pivot(self, kind: str, value: str, limit: int = 10) -> list[SurfacedView]:
        """Pivot on a metadata entity — e.g. click an owner name to see
        their artifacts (`pivot("user", "user-alex")`), a badge chip
        (`pivot("badge", "endorsed")`), or a tag.

        Implements the §7.2 improvement request P5 raised.
        """
        surfaced = self.app.exploration.pivot(
            kind, value, user_id=self.user_id, team_id=self.team_id,
            limit=limit,
        )
        self.events.record(
            "exploration_shown",
            detail=f"pivot {kind}={value}",
            providers=[s.provider_name for s in surfaced],
        )
        return surfaced

    # -- roles and configuration (Figure 4, Task 4) ---------------------------------

    def switch_role(self, role: str) -> None:
        if role not in ("user", "team_admin"):
            raise ConfigurationError(f"unknown role {role!r}")
        self.role = role
        self.events.record("role_switched", detail=role)

    def open_team_config(self, team_id: str = "") -> ConfigurationPanel:
        """Open the team configuration panel (requires admin role)."""
        if self.role != "team_admin":
            raise ConfigurationError(
                "switch to the team_admin role to open team configuration"
            )
        team_id = team_id or self.team_id
        panel = ConfigurationPanel(
            self.app.interface, "team", team_id, acting_user=self.user_id
        )
        self.events.record("config_opened", detail=team_id)
        return panel

    def configure_team_home_page(
        self, provider_names: list[str], team_id: str = "", title: str = ""
    ) -> None:
        """Set the team home page (Task 4) and regenerate the interface."""
        if self.role != "team_admin":
            raise ConfigurationError(
                "switch to the team_admin role to configure the home page"
            )
        team_id = team_id or self.team_id
        new_spec = self.app.home_pages.configure(
            team_id, provider_names, acting_user=self.user_id, title=title
        )
        self.app.update_spec(new_spec)
        self.events.record(
            "home_page_configured",
            detail=team_id,
            providers=list(provider_names),
        )

    def hide_provider(self, provider_name: str) -> None:
        """User-level hide (the §4.4 individual customization)."""
        layer = self.app.customization.user_layer(self.user_id)
        layer.hide(provider_name)
        self.events.record("config_changed", detail=f"hide {provider_name}")

    def reorder_providers(self, provider_names: list[str]) -> None:
        """User-level reorder."""
        layer = self.app.customization.user_layer(self.user_id)
        layer.set_order(provider_names)
        self.events.record(
            "config_changed", detail=f"reorder {','.join(provider_names)}"
        )
