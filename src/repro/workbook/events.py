"""UI event logging.

Every session action appends a :class:`UiEvent`; the simulated user study
replays its protocol and then reads this log to measure strategies
(search-first vs. views-first), reminders and completions — the §7.2
observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: Event kinds emitted by :class:`repro.workbook.session.Session`.
EVENT_KINDS = (
    "home_opened",
    "tab_selected",
    "view_opened",
    "view_filtered",
    "search",
    "suggestions_shown",
    "artifact_selected",
    "preview_shown",
    "exploration_shown",
    "config_opened",
    "config_changed",
    "home_page_configured",
    "role_switched",
    "assist",  # experimenter help/reminder, recorded by the study harness
)


@dataclass(frozen=True)
class UiEvent:
    """One logged interaction."""

    kind: str
    detail: str = ""
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )


class EventLog:
    """Append-only event log with simple querying."""

    def __init__(self) -> None:
        self._events: list[UiEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[UiEvent]:
        return iter(self._events)

    def record(self, kind: str, detail: str = "", **data) -> UiEvent:
        event = UiEvent(kind=kind, detail=detail, data=dict(data))
        self._events.append(event)
        return event

    def of_kind(self, kind: str) -> list[UiEvent]:
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        return len(self.of_kind(kind))

    def first_of(self, *kinds: str) -> UiEvent | None:
        """The earliest event among *kinds* (strategy detection)."""
        for event in self._events:
            if event.kind in kinds:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()
