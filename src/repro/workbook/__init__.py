"""A headless "workbook" host application.

The paper implements Humboldt inside Sigma Workbook, a commercial SaaS BI
tool.  This package is the open substitute: a host application that embeds
a generated :class:`~repro.core.interface.discovery.DiscoveryInterface`,
manages per-user sessions with tabs, selections, previews and role
switching, and logs every UI event — the instrumentation the simulated
user study reads.
"""

from repro.workbook.app import WorkbookApp
from repro.workbook.events import EventLog, UiEvent
from repro.workbook.session import Session

__all__ = ["EventLog", "Session", "UiEvent", "WorkbookApp"]
