"""Command-line interface.

Usage (also via ``python -m repro``):

    repro demo                          # guided walkthrough
    repro search "badged: endorsed"     # run a query on a catalog
    repro search --nl "tables owned by Alex endorsed by Mike"
    repro search "type: table" --federate 4       # partitioned federation
    repro search "orders" --member sales=s.db --member ml=ml.db
    repro search "orders" --trace       # print the request's span tree
    repro metrics                       # Prometheus-format metrics dump
    repro study                         # run the simulated study (E1/E2)
    repro spec                          # print the default spec JSON
    repro spec --validate my_spec.json  # validate a spec file
    repro generate --tables 200 --out catalog.json
    repro export --out out/             # HTML views (Figure 6/7)
    repro catalog init --db cat.db --tables 200   # persistent catalog
    repro catalog info --db cat.db

Every command accepts ``--catalog FILE`` to work on a saved catalog JSON,
``--store FILE`` to open a persistent catalog database (see ``repro
catalog``), or ``--tables N --seed S`` to generate one on the fly; the
default is the study catalog with the paper's example entities.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

from repro.catalog.persistence import load_catalog, save_catalog
from repro.catalog.store import CatalogStore
from repro.core.query.nlq import NaturalLanguageTranslator, explain
from repro.core.render import render_preview_text, render_tabs_text
from repro.core.spec import spec_from_json, spec_to_json, validate_spec
from repro.errors import HumboldtError
from repro.federation import Discovery, FederationError, federate
from repro.obs import (
    RingBufferExporter,
    Tracer,
    default_registry,
    render_span_tree,
)
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog, study_catalog
from repro.workbook.app import WorkbookApp


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Humboldt (VLDB 2024) reproduction: metadata-driven "
                    "extensible data discovery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_catalog_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--catalog", type=Path, default=None,
                       help="load a saved catalog JSON instead of generating")
        p.add_argument("--store", type=Path, default=None,
                       help="open a persistent catalog database "
                            "(created with 'repro catalog init')")
        p.add_argument("--tables", type=int, default=None,
                       help="generate a catalog with this many tables")
        p.add_argument("--seed", type=int, default=7,
                       help="generation seed (default 7)")
        p.add_argument("--stats", action="store_true",
                       help="print provider execution stats (calls, cache "
                            "hits, latency percentiles) after the command")

    demo = sub.add_parser("demo", help="guided walkthrough")
    add_catalog_options(demo)

    search = sub.add_parser("search", help="run a query")
    search.add_argument("query", help="query text (or English with --nl)")
    search.add_argument("--nl", action="store_true",
                        help="translate natural language first")
    search.add_argument("--user", default="",
                        help="user id for personalised providers")
    search.add_argument("--limit", type=int, default=10)
    search.add_argument("--explain", action="store_true",
                        help="print the cost-based query plan (estimated "
                             "vs actual cardinality, per-node latency, "
                             "skipped fetches)")
    search.add_argument("--trace", action="store_true",
                        help="trace the request and print the span tree "
                             "(planner, engine, provider fetches — and "
                             "per-member fan-out when federated) with "
                             "timings and cache/skip annotations")
    search.add_argument("--budget-ms", type=float, default=None,
                        help="deadline budget for provider fetches; once "
                             "spent, remaining fetches are skipped or "
                             "served stale and the result is flagged "
                             "degraded")
    search.add_argument("--federate", type=int, default=None, metavar="N",
                        help="partition the resolved catalog into N member "
                             "catalogs and search them through the "
                             "federation layer (qualified ids in output)")
    search.add_argument("--member", action="append", default=[],
                        metavar="NAME=PATH",
                        help="add a persistent catalog database as a "
                             "federation member (repeatable); the first "
                             "member is the default for bare ids")
    add_catalog_options(search)

    metrics = sub.add_parser(
        "metrics",
        help="exercise the overview fan-out, then print every metrics "
             "registry in Prometheus text exposition format",
    )
    metrics.add_argument("--user", default="",
                         help="user id for personalised providers")
    add_catalog_options(metrics)

    health = sub.add_parser(
        "health",
        help="generate an overview, then print per-endpoint resilience "
             "state (circuit breakers, stale serves, deadline skips)",
    )
    health.add_argument("--user", default="",
                        help="user id for personalised providers")
    add_catalog_options(health)

    study = sub.add_parser("study", help="run the simulated user study")
    study.add_argument("--seed", type=int, default=7)

    spec = sub.add_parser("spec", help="print or validate a specification")
    spec.add_argument("--validate", type=Path, default=None,
                      help="validate this spec JSON file")
    spec.add_argument("--lint", action="store_true",
                      help="also print usability warnings")

    generate = sub.add_parser("generate", help="generate a synthetic catalog")
    generate.add_argument("--tables", type=int, default=120)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True)

    export = sub.add_parser("export", help="render the interface to HTML")
    export.add_argument("--out", type=Path, default=Path("out"))
    add_catalog_options(export)

    catalog = sub.add_parser(
        "catalog",
        help="manage persistent catalog databases (init/ingest/compact/info)",
    )
    catsub = catalog.add_subparsers(dest="catalog_command", required=True)

    def add_db_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", type=Path, required=True,
                       help="path of the catalog database file")

    def add_synth_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tables", type=int, default=120,
                       help="synthetic tables to generate (default 120)")
        p.add_argument("--seed", type=int, default=7,
                       help="generation seed (default 7)")
        p.add_argument("--events", type=int, default=4000,
                       help="usage events to generate (default 4000)")

    cat_init = catsub.add_parser(
        "init", help="create a catalog database and ingest a synthetic corpus"
    )
    add_db_option(cat_init)
    add_synth_options(cat_init)
    cat_init.add_argument("--force", action="store_true",
                          help="replace an existing database file")

    cat_ingest = catsub.add_parser(
        "ingest",
        help="re-run the synth ingestion pipeline against an existing "
             "database; up-to-date ingestors are skipped by fingerprint",
    )
    add_db_option(cat_ingest)
    add_synth_options(cat_ingest)

    cat_compact = catsub.add_parser(
        "compact", help="flush pending writes and reclaim file space"
    )
    add_db_option(cat_compact)

    cat_info = catsub.add_parser(
        "info", help="print storage diagnostics and ingestion fingerprints"
    )
    add_db_option(cat_info)

    return parser


def _resolve_store(args) -> CatalogStore:
    if getattr(args, "store", None):
        return CatalogStore.open(args.store)
    if getattr(args, "catalog", None):
        return load_catalog(args.catalog)
    if getattr(args, "tables", None):
        return generate_catalog(
            SynthConfig(seed=args.seed, n_tables=args.tables)
        )
    return study_catalog(seed=getattr(args, "seed", 7))


def _maybe_print_stats(args, app: WorkbookApp, out) -> None:
    if getattr(args, "stats", False):
        print("\nexecution stats:", file=out)
        print(app.stats.render(), file=out)


def _default_user(store: CatalogStore) -> str:
    if store.find_user_by_name("Alex"):
        return store.find_user_by_name("Alex").id
    users = store.users()
    return users[0].id if users else ""


def cmd_demo(args, out) -> int:
    with contextlib.closing(_resolve_store(args)) as store, \
            WorkbookApp(store) as app:
        user_id = _default_user(store)
        session = app.session(user_id)
        tabs = session.open_home()
        print(f"catalog: {store.artifact_count} artifacts, "
              f"{store.user_count} users", file=out)
        print(render_tabs_text(tabs, max_items=5), file=out)
        query = "badged: endorsed"
        result = session.search(query)
        print(f"\nquery> {query}  ({result.total} results)", file=out)
        for entry in result.entries[:5]:
            print(f"  {store.artifact(entry.artifact_id).name}", file=out)
        if result.entries:
            preview = session.select_artifact(result.entries[0].artifact_id)
            print("", file=out)
            print(render_preview_text(preview), file=out)
        _maybe_print_stats(args, app, out)
    return 0


def _open_discovery(args) -> Discovery:
    """Build the federated surface a ``repro search`` invocation asked for."""
    if args.federate is not None and args.member:
        raise FederationError(
            "--federate partitions one catalog; --member joins existing "
            "ones — pass one or the other, not both"
        )
    if args.federate is not None:
        if args.federate < 2:
            raise FederationError("--federate needs at least 2 members")
        with contextlib.closing(_resolve_store(args)) as store:
            federation, _ = federate(store, args.federate)
        return Discovery(federation)
    members: dict[str, Path] = {}
    for item in args.member:
        name, sep, path = item.partition("=")
        if not sep or not name or not path:
            raise FederationError(
                f"--member expects NAME=PATH, got {item!r}"
            )
        if name in members:
            raise FederationError(f"duplicate federation member {name!r}")
        members[name] = Path(path)
    return Discovery.open(members=members)


def _print_trace(ring: RingBufferExporter, out) -> None:
    print("\ntrace:", file=out)
    tree = render_span_tree(ring.spans())
    print(tree if tree else "(no spans recorded)", file=out)


def _federated_search(args, out) -> int:
    if args.nl:
        raise FederationError(
            "--nl is not supported with federated search; translate "
            "against a single catalog first"
        )
    with _open_discovery(args) as discovery:
        ring = None
        if args.trace:
            # One tracer shared by the federation engine and every
            # member engine, so the whole fan-out lands in one trace.
            ring = RingBufferExporter()
            discovery.federation.set_tracer(Tracer(exporters=(ring,)))
        users = discovery.federation.users()
        user_id = args.user or (users[0].id if users else "")
        print(f"federation: {len(discovery.members())} members "
              f"({', '.join(discovery.members())})", file=out)
        result = discovery.search(args.query, user_id=user_id,
                                  limit=args.limit,
                                  budget_ms=args.budget_ms)
        print(f"{result.total} result(s) for {result.query!r}", file=out)
        for entry in result.entries:
            artifact = discovery.artifact(entry.ref)
            print(f"  {entry.id:<44} {artifact.name:<40}"
                  f" score={entry.score:.2f}", file=out)
        if result.truncated:
            print("note: at least one member filled the fetch limit; "
                  "totals may under-report", file=out)
        if result.degraded:
            print("note: DEGRADED result — member catalogs failed or "
                  "answered stale:", file=out)
            for marker in result.health:
                print(f"  {marker.provider}: {marker.status}"
                      f"{' — ' + marker.detail if marker.detail else ''}",
                      file=out)
        if ring is not None:
            _print_trace(ring, out)
        if getattr(args, "stats", False):
            print("\nexecution stats:", file=out)
            print(discovery.engine.stats.render(), file=out)
    return 0 if result.total else 1


def cmd_search(args, out) -> int:
    if args.federate is not None or args.member:
        return _federated_search(args, out)
    with contextlib.closing(_resolve_store(args)) as store, \
            WorkbookApp(store) as app:
        ring = None
        if args.trace:
            ring = RingBufferExporter()
            app.engine.enable_tracing(ring)
        user_id = args.user or _default_user(store)
        query = args.query
        if args.nl:
            translator = NaturalLanguageTranslator(app.interface.language,
                                                   store)
            translation = translator.translate(query)
            query = translation.query_text()
            print(f"translated: {query}", file=out)
        result, _ = app.interface.search(query, user_id=user_id,
                                         limit=args.limit,
                                         budget_ms=args.budget_ms)
        print(f"{result.total} result(s); "
              f"{explain(result.query.node)}", file=out)
        for entry in result.entries:
            artifact = store.artifact(entry.artifact_id)
            print(f"  {artifact.name:<40} {artifact.artifact_type.value:<14}"
                  f" score={entry.score:.2f}", file=out)
        if result.truncated:
            print("note: at least one provider filled the fetch limit; "
                  "totals may under-report", file=out)
        if result.degraded:
            print("note: DEGRADED result — some providers were stale or "
                  "skipped:", file=out)
            for marker in result.health:
                print(f"  {marker.provider}: {marker.status}"
                      f"{' — ' + marker.detail if marker.detail else ''}",
                      file=out)
        if args.explain and result.plan is not None:
            print("", file=out)
            print(result.plan.render(), file=out)
        if ring is not None:
            _print_trace(ring, out)
        _maybe_print_stats(args, app, out)
    return 0 if result.total else 1


def cmd_metrics(args, out) -> int:
    """Exercise the overview fan-out, then dump every metrics registry.

    Two registries exist: the engine's own (execution counters, invoke
    latency histogram, breaker state) and the process-wide default
    registry (always-on instrumentation such as sqlite statement
    timings).  Both are printed in Prometheus text exposition format.
    """
    with contextlib.closing(_resolve_store(args)) as store, \
            WorkbookApp(store) as app:
        user_id = args.user or _default_user(store)
        app.interface.overview_tabs(user_id=user_id)
        print("# engine registry", file=out)
        print(app.engine.stats.metrics.render_prometheus(), file=out)
        print("# process default registry", file=out)
        print(default_registry().render_prometheus(), file=out)
    return 0


def cmd_health(args, out) -> int:
    """Exercise the overview fan-out, then report resilience state.

    Exit code 1 signals degradation (an open breaker, a failed provider,
    stale serves) so scripts can alert on it; 0 means fully healthy.
    """
    with contextlib.closing(_resolve_store(args)) as store, \
            WorkbookApp(store) as app:
        user_id = args.user or _default_user(store)
        app.interface.overview_tabs(user_id=user_id)
        print(app.engine.render_health(), file=out)
        degraded = app.interface.degraded
        if degraded:
            print("\ndegraded providers:", file=out)
            for marker in app.interface.last_health:
                if marker.degraded:
                    print(f"  {marker.provider}: {marker.status}"
                          f"{' — ' + marker.detail if marker.detail else ''}",
                          file=out)
        _maybe_print_stats(args, app, out)
    return 1 if degraded else 0


def cmd_study(args, out) -> int:
    from repro.study.executor import run_study
    from repro.study.report import full_report

    run = run_study(seed=args.seed)
    print(full_report(run), file=out)
    return 0


def cmd_spec(args, out) -> int:
    if args.validate:
        spec = spec_from_json(args.validate.read_text(encoding="utf-8"))
        problems = validate_spec(spec, strict=False)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=out)
            return 1
        print(f"OK: {len(spec)} providers, spec is valid", file=out)
        if args.lint:
            from repro.core.spec import lint_spec

            for warning in lint_spec(spec):
                print(f"WARN: {warning}", file=out)
        return 0
    print(spec_to_json(default_spec()), file=out)
    return 0


def cmd_generate(args, out) -> int:
    store = generate_catalog(SynthConfig(seed=args.seed,
                                         n_tables=args.tables))
    path = save_catalog(store, args.out)
    print(f"wrote {store.artifact_count} artifacts to {path}", file=out)
    return 0


def cmd_export(args, out) -> int:
    from repro.core.render import render_interface_html, render_view_html

    with contextlib.closing(_resolve_store(args)) as store, \
            WorkbookApp(store) as app:
        session = app.session(_default_user(store))
        tabs = session.open_home()
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "interface.html").write_text(
            render_interface_html(tabs), encoding="utf-8"
        )
        for tab in tabs:
            path = args.out / f"view_{tab.provider_name}.html"
            path.write_text(
                "<!DOCTYPE html><html><body>"
                + render_view_html(tab.view)
                + "</body></html>",
                encoding="utf-8",
            )
        print(f"wrote {len(tabs) + 1} HTML files to {args.out}", file=out)
        _maybe_print_stats(args, app, out)
    return 0


def _synth_config(args) -> SynthConfig:
    return SynthConfig(seed=args.seed, n_tables=args.tables,
                       usage_events=args.events)


def cmd_catalog(args, out) -> int:
    from repro.errors import CatalogError
    from repro.synth import synth_ingestors

    if args.catalog_command == "init":
        if args.db.exists():
            if not args.force:
                raise CatalogError(
                    f"{args.db} already exists; pass --force to replace it "
                    f"or use 'repro catalog ingest' to extend it"
                )
            for suffix in ("", "-wal", "-shm"):
                Path(str(args.db) + suffix).unlink(missing_ok=True)
        with CatalogStore.open(args.db) as store:
            outcomes = synth_ingestors(_synth_config(args)).ingest_into(store)
            for name, outcome in outcomes.items():
                print(f"  {name}: {outcome}", file=out)
            print(f"initialised {args.db}: {store.artifact_count} artifacts, "
                  f"{store.user_count} users, {len(store.usage)} events",
                  file=out)
        return 0

    if args.catalog_command == "ingest":
        with CatalogStore.open(args.db) as store:
            outcomes = synth_ingestors(_synth_config(args)).ingest_into(store)
            for name, outcome in outcomes.items():
                print(f"  {name}: {outcome}", file=out)
        return 0

    if args.catalog_command == "compact":
        with CatalogStore.open(args.db) as store:
            before = store.storage_info().get("size_bytes", 0)
            store.compact()
            after = store.storage_info().get("size_bytes", 0)
            print(f"compacted {args.db}: {before} -> {after} bytes", file=out)
        return 0

    # info
    with CatalogStore.open(args.db) as store:
        info = store.storage_info()
        print(f"backend:  {info['backend']} (schema v{info['schema_version']})",
              file=out)
        print(f"path:     {info['path']} ({info['size_bytes']} bytes)",
              file=out)
        print("stored:   "
              + ", ".join(f"{k}={v}" for k, v in info["stored"].items()),
              file=out)
        print("hydrated: "
              + ", ".join(f"{k}={v}" for k, v in info["hydrated"].items()),
              file=out)
        versions = store.domain_versions
        print("versions: total={} {}".format(
            store.version,
            " ".join(f"{d}={v}" for d, v in sorted(versions.items()))),
            file=out)
        fingerprints = store.ingest_fingerprints()
        if fingerprints:
            print("ingested:", file=out)
            for name, fingerprint in sorted(fingerprints.items()):
                print(f"  {name}: {fingerprint}", file=out)
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "search": cmd_search,
    "metrics": cmd_metrics,
    "health": cmd_health,
    "study": cmd_study,
    "spec": cmd_spec,
    "generate": cmd_generate,
    "export": cmd_export,
    "catalog": cmd_catalog,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except HumboldtError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
