"""Federated multi-catalog discovery: refs, conformance, degradation,
backend mix, lineage stitching and the ``Discovery`` facade.

The conformance class is the PR's acceptance gate: a federation over k
disjoint members must return, for the study-task query mix, exactly the
result set — ids *and* ordering — that one merged monolith returns, with
zero cross-catalog leakage.
"""

from __future__ import annotations

import pytest

from repro.catalog.model import Artifact, ArtifactType, Team, User
from repro.catalog.store import CatalogStore
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.federation import (
    CatalogRef,
    Discovery,
    FederatedCatalog,
    FederationError,
    UnknownCatalogError,
    federate,
    member_search_endpoint_uri,
    parse_ref,
    partition_catalog,
    validate_catalog_id,
)
from repro.load.workload import query_pool
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import ExecutionEngine, RequestContext
from repro.providers.faults import FlakyEndpoint
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog
from repro.util.clock import DAY, SimulationClock


# ---------------------------------------------------------------------------
# helpers


def monolith_evaluator(store: CatalogStore) -> QueryEvaluator:
    """The single-catalog evaluator a federation must reproduce."""
    engine = ExecutionEngine(EndpointRegistry(), store=store)
    install_builtin_endpoints(engine.registry, BuiltinProviders(store))
    return QueryEvaluator(
        store, engine, QueryLanguage(default_spec()),
        Ranker(FieldResolver(store)),
    )


def two_member_stores() -> tuple[CatalogStore, CatalogStore]:
    """Two hand-built disjoint member catalogs sharing a clock."""
    clock = SimulationClock()
    clock.advance(days=100)
    stores = (CatalogStore(clock=clock), CatalogStore(clock=clock))
    for store in stores:
        store.add_user(User(id="u-ann", name="Ann Lee", role="analyst",
                            team_ids=("t-1",)))
        store.add_team(Team(id="t-1", name="Alpha", admin_ids=("u-ann",),
                            member_ids=("u-ann",)))
    epoch = clock.epoch
    left, right = stores
    left.add_artifact(Artifact(
        id="t-orders", name="ORDERS", artifact_type=ArtifactType.TABLE,
        description="Order facts.", owner_id="u-ann", team_ids=("t-1",),
        created_at=epoch + 10 * DAY, tags=("sales",),
    ))
    left.add_artifact(Artifact(
        id="v-orders", name="Orders Chart",
        artifact_type=ArtifactType.VISUALIZATION,
        description="Chart over ORDERS.", owner_id="u-ann",
        team_ids=("t-1",), created_at=epoch + 11 * DAY, tags=("sales",),
    ))
    left.lineage.add_edge("t-orders", "v-orders", "derives")
    right.add_artifact(Artifact(
        id="d-sales", name="Sales Dashboard",
        artifact_type=ArtifactType.DASHBOARD,
        description="Embeds the orders chart.", owner_id="u-ann",
        team_ids=("t-1",), created_at=epoch + 12 * DAY, tags=("sales",),
    ))
    right.add_artifact(Artifact(
        id="t-returns", name="RETURNS", artifact_type=ArtifactType.TABLE,
        description="Return facts.", owner_id="u-ann", team_ids=("t-1",),
        created_at=epoch + 13 * DAY, tags=("sales",),
    ))
    return left, right


def two_member_federation() -> FederatedCatalog:
    left, right = two_member_stores()
    federation = FederatedCatalog()
    federation.add_member("left", left)
    federation.add_member("right", right)
    return federation


@pytest.fixture(scope="module")
def corpus() -> CatalogStore:
    return generate_catalog(
        SynthConfig(seed=11, n_tables=60, usage_events=1500)
    )


# ---------------------------------------------------------------------------
# refs


class TestRefs:
    def test_validate_catalog_id(self):
        assert validate_catalog_id("sales-eu.v2") == "sales-eu.v2"
        for bad in ("", "with:colon", "with space", "-leading", ":"):
            with pytest.raises(FederationError):
                validate_catalog_id(bad)

    def test_qualified_ref_parses_against_known_member(self):
        ref = parse_ref("sales:table-1", {"sales", "ml"}, default="ml")
        assert ref == CatalogRef("sales", "table-1")
        assert ref.qualified == "sales:table-1"
        assert str(ref) == "sales:table-1"

    def test_bare_ref_resolves_to_default(self):
        ref = parse_ref("table-1", {"sales"}, default="sales")
        assert ref == CatalogRef("sales", "table-1")

    def test_bare_ref_without_default_is_an_error(self):
        with pytest.raises(FederationError, match="no default"):
            parse_ref("table-1", {"sales"}, default=None)

    def test_unknown_qualifier_is_loud_not_silent(self):
        with pytest.raises(UnknownCatalogError, match="unknown catalog 'slaes'"):
            parse_ref("slaes:table-1", {"sales"}, default="sales")

    def test_unqualifiable_head_falls_back_to_default(self):
        # "weird id" cannot be a catalog id (space), so the whole string
        # is a bare artifact id for the default member.
        ref = parse_ref("weird id:x", {"sales"}, default="sales")
        assert ref == CatalogRef("sales", "weird id:x")

    def test_catalog_ref_passthrough(self):
        ref = CatalogRef("ml", "t-1")
        assert parse_ref(ref, {"sales"}, default=None) is ref

    def test_unknown_catalog_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            parse_ref("nope:x", {"sales"}, default="sales")


# ---------------------------------------------------------------------------
# conformance: the acceptance gate


class TestConformance:
    @pytest.fixture(scope="class")
    def setup(self, corpus):
        federation, partition = federate(corpus, 3)
        mono = monolith_evaluator(corpus)
        yield corpus, federation, partition, mono
        mono.engine.close()
        federation.close()

    def _context(self, store):
        user = store.users()[0]
        teams = store.teams_of(user.id)
        return user.id, teams[0].id if teams else ""

    def test_partition_is_disjoint_and_total(self, setup):
        store, federation, partition, _ = setup
        all_ids = set(store.artifact_ids())
        assert set(partition.assignment) == all_ids
        member_ids: list[str] = []
        for member in partition.members.values():
            member_ids.extend(member.artifact_ids())
        assert len(member_ids) == len(all_ids)
        assert set(member_ids) == all_ids

    def test_query_mix_matches_monolith_ids_and_ordering(self, setup):
        store, federation, partition, mono = setup
        user_id, team_id = self._context(store)
        queries = query_pool(store) + [
            "type: table & badged: endorsed",
            "not type: table",
            "orders | sales",
        ]
        for query in queries:
            expected = mono.search(
                query,
                context=RequestContext(user_id=user_id, team_id=team_id),
                limit=50,
            )
            got = federation.search(
                query, user_id=user_id, team_id=team_id, limit=50
            )
            expected_ids = [e.artifact_id for e in expected.entries]
            assert got.bare_ids() == expected_ids, query
            assert got.total == expected.total, query
            assert not got.degraded, query

    def test_zero_cross_catalog_leakage(self, setup):
        store, federation, partition, _ = setup
        user_id, team_id = self._context(store)
        for query in query_pool(store):
            result = federation.search(
                query, user_id=user_id, team_id=team_id, limit=50
            )
            for entry in result.entries:
                assert (
                    partition.assignment[entry.ref.artifact_id]
                    == entry.ref.catalog_id
                ), f"{entry.id} leaked across catalogs for {query!r}"

    def test_scores_match_monolith(self, setup):
        store, federation, partition, mono = setup
        user_id, team_id = self._context(store)
        expected = mono.search(
            "badged: endorsed",
            context=RequestContext(user_id=user_id, team_id=team_id),
            limit=50,
        )
        got = federation.search(
            "badged: endorsed", user_id=user_id, team_id=team_id, limit=50
        )
        assert [e.score for e in got.entries] == [
            e.score for e in expected.entries
        ]


# ---------------------------------------------------------------------------
# degradation: one bad member cannot sink the query


class TestDegradation:
    def test_failing_member_degrades_instead_of_failing(self):
        with two_member_federation() as federation:
            uri = member_search_endpoint_uri("right")
            original = federation.registry.resolve(uri)
            federation.registry.register(
                uri,
                FlakyEndpoint(original, fail_on=lambda i: True, name="right"),
                replace=True,
            )
            result = federation.search("type: table", user_id="u-ann")
            assert result.degraded
            assert result.failed == ("right",)
            assert result.responded == ("left",)
            # Partial answer: only the healthy member's artifacts.
            assert result.artifact_ids() == ["left:t-orders"]
            assert any(m.provider == "right" for m in result.health)

    def test_member_scoping(self):
        with two_member_federation() as federation:
            result = federation.search(
                "type: table", user_id="u-ann", members=["right"]
            )
            assert result.artifact_ids() == ["right:t-returns"]
            assert not result.degraded

    def test_unknown_member_scope_is_an_error(self):
        with two_member_federation() as federation:
            with pytest.raises(UnknownCatalogError):
                federation.search("orders", members=["nope"])

    def test_empty_federation_cannot_search(self):
        federation = FederatedCatalog()
        with pytest.raises(FederationError, match="no member"):
            federation.search("orders")


# ---------------------------------------------------------------------------
# membership, read API, backend mix


class TestMembership:
    def test_duplicate_member_rejected(self):
        left, right = two_member_stores()
        federation = FederatedCatalog()
        federation.add_member("left", left)
        with pytest.raises(FederationError, match="already registered"):
            federation.add_member("left", right)

    def test_first_member_is_default_until_overridden(self):
        with two_member_federation() as federation:
            assert federation.default_id == "left"
            assert federation.artifact("t-orders").name == "ORDERS"
            federation.set_default("right")
            assert federation.artifact("t-returns").name == "RETURNS"

    def test_qualified_reads(self):
        with two_member_federation() as federation:
            assert federation.artifact("right:d-sales").name == "Sales Dashboard"
            assert federation.has_artifact("right:d-sales")
            assert not federation.has_artifact("right:t-orders")
            assert federation.artifact_count == 4
            assert federation.by_type("table") == [
                "left:t-orders", "right:t-returns"
            ]
            assert federation.qualify("left", "t-orders") == "left:t-orders"

    def test_users_are_deduped_across_members(self):
        with two_member_federation() as federation:
            assert [u.id for u in federation.users()] == ["u-ann"]
            assert [t.id for t in federation.teams()] == ["t-1"]

    def test_sqlite_and_memory_members_mix(self, tmp_path):
        left, right = two_member_stores()
        db_path = tmp_path / "right.db"
        with CatalogStore.open(db_path) as disk:
            for user in right.users():
                disk.add_user(user)
            for team in right.teams():
                disk.add_team(team)
            for artifact_id in right.artifact_ids():
                disk.add_artifact(right.artifact(artifact_id))
        federation = FederatedCatalog()
        federation.add_member("mem", left)
        federation.add_member("disk", db_path)
        result = federation.search("type: table", user_id="u-ann")
        assert result.artifact_ids() == ["mem:t-orders", "disk:t-returns"]
        assert federation.artifact("disk:d-sales").name == "Sales Dashboard"
        # Path members are owned: close() must release the sqlite store.
        federation.close()

    def test_member_write_invalidates_federated_search_cache(self):
        with two_member_federation() as federation:
            before = federation.search("type: table", user_id="u-ann")
            assert before.total == 2
            store = federation.member_store("right")
            store.add_artifact(Artifact(
                id="t-new", name="NEW_ORDERS_TABLE",
                artifact_type=ArtifactType.TABLE,
                description="Fresh table.", owner_id="u-ann",
                team_ids=("t-1",),
                created_at=store.clock.now(),
            ))
            after = federation.search("type: table", user_id="u-ann")
            assert after.total == 3
            assert "right:t-new" in after.artifact_ids()


# ---------------------------------------------------------------------------
# cross-catalog lineage stitching


class TestLineageStitching:
    def test_lineage_spans_members_through_cross_edges(self):
        with two_member_federation() as federation:
            federation.add_cross_edge("left:v-orders", "right:d-sales",
                                      kind="embeds")
            lineage = federation.lineage("left:t-orders", depth=2)
            assert lineage.nodes == (
                "left:t-orders", "left:v-orders", "right:d-sales"
            )
            kinds = {(e.src, e.dst): (e.kind, e.cross) for e in lineage.edges}
            assert kinds[("left:t-orders", "left:v-orders")] == (
                "derives", False
            )
            assert kinds[("left:v-orders", "right:d-sales")] == (
                "embeds", True
            )

    def test_depth_bounds_the_cross_walk(self):
        with two_member_federation() as federation:
            federation.add_cross_edge("left:v-orders", "right:d-sales")
            lineage = federation.lineage("left:t-orders", depth=1)
            assert "right:d-sales" not in lineage.nodes

    def test_upstream_walk_crosses_backwards(self):
        with two_member_federation() as federation:
            federation.add_cross_edge("left:v-orders", "right:d-sales")
            lineage = federation.lineage("right:d-sales", depth=2)
            assert "left:t-orders" in lineage.nodes
            assert "left:v-orders" in lineage.nodes

    def test_same_member_cross_edge_rejected(self):
        with two_member_federation() as federation:
            with pytest.raises(FederationError, match="stays inside"):
                federation.add_cross_edge("left:t-orders", "left:v-orders")

    def test_missing_endpoint_rejected(self):
        with two_member_federation() as federation:
            with pytest.raises(FederationError, match="does not exist"):
                federation.add_cross_edge("left:t-orders", "right:ghost")

    def test_cross_edges_dedup(self):
        with two_member_federation() as federation:
            federation.add_cross_edge("left:v-orders", "right:d-sales")
            federation.add_cross_edge("left:v-orders", "right:d-sales")
            assert len(federation.cross_edges()) == 1


# ---------------------------------------------------------------------------
# the Discovery facade


class TestDiscoveryFacade:
    def test_single_catalog_open_names_the_member_main(self):
        left, _ = two_member_stores()
        with Discovery.open(left) as discovery:
            assert discovery.members() == ("main",)
            assert discovery.default_member == "main"
            result = discovery.search("type: table", user_id="u-ann")
            assert result.artifact_ids() == ["main:t-orders"]
            assert discovery.artifact("t-orders").name == "ORDERS"

    def test_federated_open_with_default(self):
        left, right = two_member_stores()
        with Discovery.open(
            members={"left": left, "right": right}, default="right"
        ) as discovery:
            assert discovery.members() == ("left", "right")
            assert discovery.default_member == "right"
            assert discovery.artifact("t-returns").name == "RETURNS"
            assert discovery.has_artifact("left:t-orders")

    def test_open_requires_exactly_one_source(self):
        left, _ = two_member_stores()
        with pytest.raises(FederationError, match="exactly one"):
            Discovery.open()
        with pytest.raises(FederationError, match="exactly one"):
            Discovery.open(left, members={"left": left})

    def test_open_rejects_knobs_with_prebuilt_federation(self):
        federation = two_member_federation()
        with pytest.raises(FederationError, match="fixed by"):
            Discovery.open(federation, spec=default_spec())
        Discovery.open(federation).close()

    def test_concurrent_federated_load_has_no_leaks_or_errors(self, corpus):
        from repro.load import FederatedLoadConfig, run_federated_load

        report = run_federated_load(
            corpus,
            FederatedLoadConfig(sessions=16, ops_per_session=4,
                                concurrency=4, parts=3),
        )
        assert report.errors == 0
        assert report.leakage_violations == 0
        assert report.leakage_checks > 0
        assert report.ops == 16 * 4
        rendered = report.render()
        assert "leakage=0" in rendered
        assert report.to_dict()["parts"] == 3

    def test_lineage_and_health_surface(self):
        left, right = two_member_stores()
        with Discovery.open(members={"left": left, "right": right}) as d:
            d.federation.add_cross_edge("left:v-orders", "right:d-sales")
            lineage = d.lineage("t-orders")
            assert "right:d-sales" in lineage.nodes
            d.search("orders", user_id="u-ann")
            assert isinstance(d.render_health(), str)
            assert d.engine is d.federation.engine
