"""Tests for entity pivots (§7.2 improvement: click an owner/badge/tag)."""

import pytest

from repro.providers.faults import FlakyEndpoint


class TestPivot:
    def test_pivot_on_owner(self, tiny_app):
        session = tiny_app.session("u-bob")
        surfaced = session.pivot("user", "u-ann")
        providers = {s.provider_name for s in surfaced}
        assert "owned_by" in providers
        owned = next(s for s in surfaced if s.provider_name == "owned_by")
        assert set(owned.view.artifact_ids()) == {"t-orders", "v-orders"}
        assert owned.reason == "user = u-ann"

    def test_pivot_on_owner_by_display_name(self, tiny_app):
        session = tiny_app.session("u-bob")
        surfaced = session.pivot("user", "Ann Lee")
        owned = next(s for s in surfaced if s.provider_name == "owned_by")
        assert "t-orders" in owned.view.artifact_ids()

    def test_pivot_on_badge(self, tiny_app):
        session = tiny_app.session("u-ann")
        surfaced = session.pivot("badge", "endorsed")
        badged = next(s for s in surfaced if s.provider_name == "badged")
        assert set(badged.view.artifact_ids()) == {"t-orders", "d-sales"}

    def test_pivot_on_type(self, tiny_app):
        session = tiny_app.session("u-ann")
        surfaced = session.pivot("artifact_type", "workbook")
        of_type = next(s for s in surfaced if s.provider_name == "of_type")
        assert of_type.view.artifact_ids() == ["w-q1"]

    def test_pivot_on_tag(self, tiny_app):
        session = tiny_app.session("u-ann")
        surfaced = session.pivot("text", "crm")
        tagged = next(s for s in surfaced if s.provider_name == "tagged")
        assert tagged.view.artifact_ids() == ["t-customers"]

    def test_pivot_on_artifact_surfaces_relatedness(self, tiny_app):
        session = tiny_app.session("u-ann")
        surfaced = session.pivot("artifact", "t-orders")
        providers = {s.provider_name for s in surfaced}
        assert {"joinable", "lineage", "similar"} <= providers

    def test_pivot_unknown_kind(self, tiny_app):
        with pytest.raises(ValueError, match="unknown input type"):
            tiny_app.session("u-ann").pivot("galaxy", "x")

    def test_pivot_empty_values_dropped(self, tiny_app):
        surfaced = tiny_app.session("u-ann").pivot("badge", "nonexistent")
        assert surfaced == []

    def test_pivot_contains_failures(self, tiny_app):
        original = tiny_app.registry.resolve("catalog://badged")
        tiny_app.registry.register(
            "catalog://badged",
            FlakyEndpoint(original, fail_on=lambda i: True, name="badged"),
            replace=True,
        )
        surfaced = tiny_app.session("u-ann").pivot("badge", "endorsed")
        assert all(s.provider_name != "badged" for s in surfaced)

    def test_pivot_respects_customization(self, tiny_app):
        tiny_app.customization.user_layer("u-ann").hide("owned_by")
        surfaced = tiny_app.session("u-ann").pivot("user", "u-ann")
        providers = {s.provider_name for s in surfaced}
        assert "owned_by" not in providers
        assert "created_by" in providers  # the alias still pivots

    def test_pivot_logs_event(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.pivot("badge", "endorsed")
        events = session.events.of_kind("exploration_shown")
        assert events[0].detail == "pivot badge=endorsed"
