"""Tests for the simulated user study (E1/E2 machinery)."""

import pytest

from repro.study.executor import StudyRun, TaskExecutor, prepare_study_app, run_study
from repro.study.personas import PERSONAS, persona_by_id
from repro.study.questionnaire import (
    STATEMENTS,
    answer_questionnaire,
    measure_affordances,
)
from repro.study.report import full_report, task_outcome_table
from repro.study.stats import category_stats, likert_stats
from repro.study.tasks import TASKS, task_by_id


@pytest.fixture(scope="module")
def run() -> StudyRun:
    return run_study()


class TestPersonas:
    def test_six_participants(self):
        assert len(PERSONAS) == 6
        assert [p.pid for p in PERSONAS] == [f"P{i}" for i in range(1, 7)]

    def test_trait_totals_match_paper(self):
        assert sum(p.search_first for p in PERSONAS) == 3
        assert sum(not p.explore_aware for p in PERSONAS) == 3
        assert sum(not p.thorough_query for p in PERSONAS) == 3
        assert sum(not p.config_familiar for p in PERSONAS) == 2

    def test_lookup(self):
        assert persona_by_id("P4").pid == "P4"
        with pytest.raises(KeyError):
            persona_by_id("P9")


class TestTasks:
    def test_four_tasks(self):
        assert [t.task_id for t in TASKS] == ["T1", "T2", "T3", "T4"]

    def test_prompts_from_paper(self):
        assert "AIRLINES" in task_by_id("T1").prompt
        assert "John Doe" in task_by_id("T3").prompt
        assert "A Team" in task_by_id("T4").prompt


class TestPreparation:
    def test_participants_are_team_admins(self):
        app, team_id = prepare_study_app()
        team = app.store.team(team_id)
        for persona in PERSONAS:
            assert team.is_admin(f"user-{persona.pid.lower()}")


class TestExecution:
    def test_all_tasks_complete(self, run):
        for task_id in ("T1", "T2", "T3", "T4"):
            assert run.completion_rate(task_id) == 1.0

    def test_assisted_counts_match_paper(self, run):
        assert run.assisted_participants("T1") == 0
        assert run.assisted_participants("T2") == 3
        assert run.assisted_participants("T3") == 3
        assert run.assisted_participants("T4") == 2

    def test_t1_strategy_split(self, run):
        split = run.strategy_split("T1")
        assert split == {"search-first": 3, "views-first": 3}

    def test_outcomes_cover_all_cells(self, run):
        assert len(run.outcomes) == 24  # 6 participants x 4 tasks

    def test_assists_recorded_in_event_logs(self, run):
        for persona in PERSONAS:
            session = run.sessions[persona.pid]
            expected = sum(
                o.assists for o in run.outcomes if o.pid == persona.pid
            )
            assert session.events.count("assist") == expected

    def test_t3_detail_counts_workbooks(self, run):
        for outcome in run.outcomes_for("T3"):
            assert outcome.detail == "3/3 workbooks found"

    def test_deterministic(self):
        a = run_study()
        b = run_study()
        assert [(o.task_id, o.pid, o.completed, o.assists)
                for o in a.outcomes] == \
               [(o.task_id, o.pid, o.completed, o.assists)
                for o in b.outcomes]

    def test_single_executor_runs_in_order(self):
        app, team_id = prepare_study_app()
        executor = TaskExecutor(app, PERSONAS[0], team_id)
        outcomes = executor.run_all()
        assert [o.task_id for o in outcomes] == ["T1", "T2", "T3", "T4"]


class TestQuestionnaire:
    def test_full_response_matrix(self, run):
        responses = answer_questionnaire(run)
        assert len(responses) == 6 * 12
        assert all(1 <= r.rating <= 5 for r in responses)

    def test_affordances_measured(self, run):
        affordances = measure_affordances(run)
        assert affordances.n_search_fields >= 12
        assert affordances.autocomplete_coverage > 0.9
        assert affordances.n_view_types == 6
        assert affordances.preview_richness == 1.0
        assert affordances.avg_surfaced_views > 3

    def test_category_shape_matches_figure8(self, run):
        stats = category_stats(answer_questionnaire(run))
        by_cat = stats.by_category
        # search rated highest, entry points lowest — the Figure 8 shape
        assert by_cat["search"].mean > by_cat["entry_points"].mean
        assert by_cat["exploration"].mean > by_cat["entry_points"].mean
        assert by_cat["customization"].mean > by_cat["entry_points"].mean

    def test_overall_near_paper(self, run):
        stats = category_stats(answer_questionnaire(run))
        assert abs(stats.overall.mean - 3.97) < 0.35
        assert abs(stats.overall.std - 0.85) < 0.35

    def test_referenced_statements_close_to_paper(self, run):
        stats = category_stats(answer_questionnaire(run))
        for statement in STATEMENTS:
            if statement.paper_reference is None:
                continue
            measured = stats.by_statement[statement.sid]
            paper_mean, _ = statement.paper_reference
            assert abs(measured.mean - paper_mean) < 0.6, statement.sid

    def test_deterministic(self, run):
        assert answer_questionnaire(run) == answer_questionnaire(run)


class TestStats:
    def test_likert_stats_basic(self):
        stats = likert_stats([5, 5, 5, 4, 4, 3])
        assert stats.mean == 4.33
        assert stats.std == 0.75
        assert stats.percent_positive == pytest.approx(83.3)
        assert stats.percent_negative == 0.0

    def test_likert_stats_empty(self):
        assert likert_stats([]).n == 0

    def test_likert_stats_validates(self):
        with pytest.raises(ValueError):
            likert_stats([0])

    def test_neutral_share(self):
        stats = likert_stats([3, 3, 4, 2])
        assert stats.percent_neutral == 50.0


class TestReport:
    def test_tables_render(self, run):
        report = full_report(run)
        assert "E1 — Task outcomes" in report
        assert "E2 — Post-study questionnaire" in report
        assert "3.97" in report  # paper overall reference shown

    def test_outcome_table_has_paper_columns(self, run):
        table = task_outcome_table(run)
        assert "paper" in table
        assert "search-first" in table

    def test_figure8_chart_renders_all_statements(self, run):
        from repro.study.report import figure8_chart

        chart = figure8_chart(run)
        for statement in STATEMENTS:
            assert statement.sid in chart
        assert "█" in chart  # positive bars exist
        assert chart.count("\n") == len(STATEMENTS) + 2  # header x2 + all

    def test_strategy_effort_table(self, run):
        from repro.study.report import strategy_effort_table

        table = strategy_effort_table(run)
        assert "search-first" in table
        assert "views-first" in table
