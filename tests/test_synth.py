"""Tests for the synthetic catalog generator and workload."""

import pytest

from repro.catalog.model import ArtifactType
from repro.synth.generator import SynthConfig, generate_catalog, study_catalog
from repro.synth.workload import WorkloadConfig, burst_usage, generate_usage, zipf_weights


class TestConfig:
    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            SynthConfig(n_users=0)
        with pytest.raises(ValueError):
            SynthConfig(n_tables=0)

    def test_invalid_badge_ratio(self):
        with pytest.raises(ValueError):
            SynthConfig(badge_ratio=1.5)


class TestGenerator:
    def test_determinism(self):
        a = generate_catalog(SynthConfig(seed=5, n_tables=30, usage_events=200))
        b = generate_catalog(SynthConfig(seed=5, n_tables=30, usage_events=200))
        assert a.artifact_ids() == b.artifact_ids()
        assert [u.id for u in a.users()] == [u.id for u in b.users()]
        names_a = [x.name for x in a.artifacts()]
        names_b = [x.name for x in b.artifacts()]
        assert names_a == names_b
        assert len(a.usage) == len(b.usage)

    def test_different_seeds_differ(self):
        a = generate_catalog(SynthConfig(seed=1, n_tables=30, usage_events=0))
        b = generate_catalog(SynthConfig(seed=2, n_tables=30, usage_events=0))
        assert [x.name for x in a.artifacts()] != [x.name for x in b.artifacts()]

    def test_requested_table_count(self, synth_store):
        assert len(synth_store.by_type("table")) == 60

    def test_all_artifact_types_present(self, synth_store):
        for artifact_type in ArtifactType:
            assert synth_store.by_type(artifact_type), artifact_type

    def test_owners_and_teams_valid(self, synth_store):
        user_ids = {u.id for u in synth_store.users()}
        team_ids = {t.id for t in synth_store.teams()}
        for artifact in synth_store.artifacts():
            assert artifact.owner_id in user_ids
            for team_id in artifact.team_ids:
                assert team_id in team_ids

    def test_badges_granted_within_horizon(self, synth_store):
        now = synth_store.clock.now()
        for artifact in synth_store.artifacts():
            for badge in artifact.badges:
                assert badge.granted_at <= now

    def test_created_before_now(self, synth_store):
        now = synth_store.clock.now()
        for artifact in synth_store.artifacts():
            assert artifact.created_at < now

    def test_lineage_derived_after_source(self, synth_store):
        for edge in synth_store.lineage.edges():
            src = synth_store.artifact(edge.src)
            dst = synth_store.artifact(edge.dst)
            assert src.created_at <= dst.created_at

    def test_tables_have_key_columns(self, synth_store):
        key_names = {"customer_id", "order_id", "product_id",
                     "account_id", "region_id", "event_date"}
        for table_id in synth_store.by_type("table")[:10]:
            columns = {c.name for c in synth_store.artifact(table_id).columns}
            assert columns & key_names

    def test_every_team_has_admin(self, synth_store):
        for team in synth_store.teams():
            assert team.admin_ids


class TestStudyCatalog:
    def test_study_entities_present(self):
        store = study_catalog()
        airlines = store.artifact("table-airlines")
        assert airlines.name == "AIRLINES"
        assert airlines.has_badge("endorsed", granted_by="user-mike")
        assert airlines.owner_id == "user-alex"
        assert store.user("user-john").name == "John Doe"

    def test_flagship_query_target_exists(self):
        store = study_catalog()
        sales = store.artifact("table-sales-numbers")
        assert sales.owner_id == "user-alex"
        assert sales.has_badge("endorsed", granted_by="user-mike")
        assert "sales" in sales.searchable_text().lower()

    def test_john_has_exactly_three_workbooks(self):
        store = study_catalog()
        workbooks = [
            aid for aid in store.by_owner("user-john")
            if store.artifact(aid).artifact_type is ArtifactType.WORKBOOK
        ]
        assert len(workbooks) == 3

    def test_task2_peers_share_type_and_badge(self):
        store = study_catalog()
        endorsed_tables = [
            aid for aid in store.by_badge("endorsed")
            if store.artifact(aid).artifact_type is ArtifactType.TABLE
        ]
        assert len(endorsed_tables) >= 3  # AIRLINES plus peers

    def test_a_team_exists(self):
        store = study_catalog()
        assert any(t.name == "A Team" for t in store.teams())


class TestWorkload:
    def test_zipf_weights_shape(self):
        weights = zipf_weights(5, 1.0)
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)

    def test_zipf_weights_negative_n(self):
        with pytest.raises(ValueError):
            zipf_weights(-1, 1.0)

    def test_share_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            WorkloadConfig(view_share=0.9)

    def test_zipf_s_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(zipf_s=0.0)

    def test_events_are_causally_consistent(self):
        store = generate_catalog(SynthConfig(seed=9, n_tables=20,
                                             usage_events=500))
        for event in store.usage.events():
            artifact = store.artifact(event.artifact_id)
            assert event.timestamp >= min(artifact.created_at,
                                          store.clock.now() - 1.0)
            assert event.timestamp <= store.clock.now()

    def test_skew_concentrates_views(self):
        store = generate_catalog(SynthConfig(seed=9, n_tables=50,
                                             usage_events=3000))
        ranked = store.usage.most_viewed(limit=1000)
        total = sum(count for _, count in ranked)
        top10 = sum(count for _, count in ranked[:10])
        assert top10 / total > 0.25  # heavy head

    def test_empty_store_no_events(self):
        from repro.catalog.store import CatalogStore

        store = CatalogStore()
        assert generate_usage(store, WorkloadConfig(n_events=10)) == 0

    def test_burst_usage_recent(self, tiny_store):
        before = tiny_store.usage_stats("t-web").view_count
        burst_usage(tiny_store, "t-web", ["u-ann", "u-bob"], views=6)
        stats = tiny_store.usage_stats("t-web")
        assert stats.view_count == before + 6
        assert tiny_store.clock.days_since(stats.last_viewed_at) <= 7.0


class TestIngestionRegistry:
    """generate_catalog as a fingerprinted, incremental ingestion pipeline."""

    def test_fingerprint_is_config_sensitive(self):
        from repro.synth.generator import synth_fingerprint

        base = SynthConfig(seed=7, n_tables=40)
        assert synth_fingerprint(base) == synth_fingerprint(
            SynthConfig(seed=7, n_tables=40)
        )
        assert synth_fingerprint(base) != synth_fingerprint(
            SynthConfig(seed=8, n_tables=40)
        )

    def test_usage_fingerprint_ignores_entity_knobs(self):
        from repro.synth.generator import synth_ingestors

        def usage_fp(config):
            registry = synth_ingestors(config)
            return {i.name: i.fingerprint
                    for i in registry._ingestors}["synth:usage"]

        base = SynthConfig(seed=7, n_tables=40)
        assert usage_fp(base) == usage_fp(
            SynthConfig(seed=7, n_tables=99, n_dashboards=1)
        )
        assert usage_fp(base) != usage_fp(
            SynthConfig(seed=7, n_tables=40, usage_events=5)
        )

    def test_registry_matches_direct_generation(self):
        config = SynthConfig(seed=11, n_tables=30)
        direct = generate_catalog(config)
        again = generate_catalog(config)
        assert direct.artifact_ids() == again.artifact_ids()
        assert len(direct.usage) == len(again.usage)

    def test_second_ingest_is_a_noop(self, tmp_path):
        from repro.catalog.store import CatalogStore
        from repro.synth.generator import synth_ingestors

        config = SynthConfig(seed=7, n_tables=25, usage_events=100)
        with CatalogStore.open(tmp_path / "c.db") as store:
            first = synth_ingestors(config).ingest_into(store)
            count = store.artifact_count
        with CatalogStore.open(tmp_path / "c.db") as store:
            second = synth_ingestors(config).ingest_into(store)
            assert store.artifact_count == count
        assert set(first.values()) == {"applied"}
        assert set(second.values()) == {"skipped"}

    def test_changed_config_is_refused(self, tmp_path):
        from repro.catalog.store import CatalogStore
        from repro.errors import CatalogError
        from repro.synth.generator import synth_ingestors

        with CatalogStore.open(tmp_path / "c.db") as store:
            synth_ingestors(
                SynthConfig(seed=7, n_tables=25, usage_events=100)
            ).ingest_into(store)
        with CatalogStore.open(tmp_path / "c.db") as store:
            with pytest.raises(CatalogError, match="different"):
                synth_ingestors(
                    SynthConfig(seed=9, n_tables=25, usage_events=100)
                ).ingest_into(store)

    def test_new_ingestor_applies_incrementally(self, tmp_path):
        """Extending a pipeline applies only the new member — the
        incremental contract of the registry."""
        from repro.catalog.model import Artifact
        from repro.catalog.store import CatalogStore
        from repro.synth.generator import synth_ingestors

        config = SynthConfig(seed=7, n_tables=25, usage_events=100)
        with CatalogStore.open(tmp_path / "c.db") as store:
            synth_ingestors(config).ingest_into(store)
        with CatalogStore.open(tmp_path / "c.db") as store:
            registry = synth_ingestors(config)
            registry.register(
                "extra:marker", "fp-1",
                lambda s: s.add_artifact(Artifact(
                    id="extra-1", name="EXTRA", artifact_type="table")),
            )
            outcomes = registry.ingest_into(store)
            assert outcomes["synth:entities"] == "skipped"
            assert outcomes["extra:marker"] == "applied"
            assert store.has_artifact("extra-1")
