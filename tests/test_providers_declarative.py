"""Tests for declarative endpoints (lookup collections and rule filters)."""

import pytest

from repro.core.spec.model import ProviderSpec, Visibility
from repro.errors import SpecError
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.declarative import LookupEndpoint, RuleEndpoint


def req(limit=20):
    return ProviderRequest(context=RequestContext(limit=limit))


class TestLookupEndpoint:
    def test_serves_curated_order(self, tiny_store):
        endpoint = LookupEndpoint(tiny_store, ["w-q1", "t-orders"])
        assert endpoint(req()).artifact_ids() == ["w-q1", "t-orders"]

    def test_missing_artifacts_skipped(self, tiny_store):
        endpoint = LookupEndpoint(tiny_store, ["ghost", "t-orders"])
        assert endpoint(req()).artifact_ids() == ["t-orders"]

    def test_add_and_remove(self, tiny_store):
        endpoint = LookupEndpoint(tiny_store, ["t-orders"])
        endpoint.add("t-web")
        endpoint.add("t-web")  # idempotent
        assert endpoint.artifact_ids == ["t-orders", "t-web"]
        endpoint.remove("t-orders")
        endpoint.remove("ghost")  # no-op
        assert endpoint(req()).artifact_ids() == ["t-web"]

    def test_limit(self, tiny_store):
        endpoint = LookupEndpoint(tiny_store,
                                  ["t-orders", "t-web", "w-q1"])
        assert len(endpoint(req(limit=2)).artifact_ids()) == 2


class TestRuleEndpointValidation:
    def test_empty_rules_rejected(self, tiny_store):
        with pytest.raises(SpecError, match="at least one rule"):
            RuleEndpoint(tiny_store, [])

    def test_missing_keys_rejected(self, tiny_store):
        with pytest.raises(SpecError, match="missing"):
            RuleEndpoint(tiny_store, [{"field": "type"}])

    def test_unknown_op_rejected(self, tiny_store):
        with pytest.raises(SpecError, match="unknown op"):
            RuleEndpoint(tiny_store,
                         [{"field": "type", "op": "~=", "value": "x"}])


class TestRuleEndpointMatching:
    def test_eq_on_annotation_field(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "type", "op": "eq", "value": "table"},
        ])
        assert set(endpoint(req()).artifact_ids()) == {
            "t-orders", "t-customers", "t-web",
        }

    def test_eq_is_case_insensitive(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "type", "op": "eq", "value": "TABLE"},
        ])
        assert endpoint(req()).artifact_ids()

    def test_gte_on_usage_field(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "views", "op": "gte", "value": 5},
        ])
        assert endpoint(req()).artifact_ids() == ["t-orders"]

    def test_conjunction(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "type", "op": "eq", "value": "table"},
            {"field": "endorsed", "op": "gte", "value": 1},
        ])
        assert endpoint(req()).artifact_ids() == ["t-orders"]

    def test_contains_on_name(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "name", "op": "contains", "value": "order"},
        ])
        assert set(endpoint(req()).artifact_ids()) == {
            "t-orders", "v-orders",
        }

    def test_multivalue_field_any_semantics(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "tags", "op": "eq", "value": "crm"},
        ])
        assert endpoint(req()).artifact_ids() == ["t-customers"]

    def test_in_operator(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "type", "op": "in",
             "value": ["workbook", "dashboard"]},
        ])
        assert set(endpoint(req()).artifact_ids()) == {"w-q1", "d-sales"}

    def test_results_ranked_by_views(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "type", "op": "eq", "value": "table"},
        ])
        items = endpoint(req()).items
        scores = [item.score for item in items]
        assert scores == sorted(scores, reverse=True)

    def test_lt_and_ne(self, tiny_store):
        endpoint = RuleEndpoint(tiny_store, [
            {"field": "views", "op": "lt", "value": 1},
            {"field": "type", "op": "ne", "value": "document"},
        ])
        assert "t-web" in endpoint(req()).artifact_ids()


class TestDeclarativeProvidersEndToEnd:
    def test_curated_collection_in_interface(self, tiny_app):
        """An admin-curated 'golden datasets' view: config only."""
        endpoint = LookupEndpoint(tiny_app.store, ["t-orders", "d-sales"])
        tiny_app.registry.register("lookup://golden", endpoint)
        tiny_app.update_spec(tiny_app.spec.with_provider(ProviderSpec(
            name="golden",
            endpoint="lookup://golden",
            representation="list",
            category="annotation",
            title="Golden Datasets",
        )))
        session = tiny_app.session("u-ann")
        tabs = session.open_home()
        golden = next(t for t in tabs if t.provider_name == "golden")
        assert golden.view.artifact_ids() == ["t-orders", "d-sales"]
        # and it is searchable like any provider
        result = session.search(":golden() & type: table")
        assert result.artifact_ids() == ["t-orders"]

    def test_rule_provider_in_interface(self, tiny_app):
        endpoint = RuleEndpoint(tiny_app.store, [
            {"field": "type", "op": "eq", "value": "table"},
            {"field": "views", "op": "gte", "value": 2},
        ])
        tiny_app.registry.register("rules://hot-tables", endpoint)
        tiny_app.update_spec(tiny_app.spec.with_provider(ProviderSpec(
            name="hot_tables",
            endpoint="rules://hot-tables",
            representation="list",
            category="interaction",
            title="Hot Tables",
            visibility=Visibility(overview=True, exploration=False,
                                  search=True),
        )))
        result, _ = tiny_app.interface.search(":hot_tables()")
        assert set(result.artifact_ids()) == {"t-orders", "t-customers"}
