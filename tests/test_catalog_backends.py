"""Backend conformance: every storage backend behaves identically.

The same store-level assertions run against the in-memory backend
(``CatalogStore()``) and the persistent SQLite backend
(``CatalogStore.open``) — the backend is an implementation detail, so no
observable behaviour may differ.  A hypothesis property drives random
interleaved write/read sequences through both (with a close/reopen in
the middle for the persistent one) and demands identical answers.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.model import Artifact, ArtifactType, Team, User
from repro.catalog.store import CatalogStore
from repro.errors import CatalogError, DuplicateEntityError

BACKENDS = ("memory", "sqlite")


def make_store(kind, tmp_path):
    if kind == "memory":
        return CatalogStore()
    return CatalogStore.open(tmp_path / "catalog.db")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    s = make_store(request.param, tmp_path)
    yield s
    s.close()


def seed_store(store):
    store.add_user(User(id="u1", name="Ada", role="manager"))
    store.add_user(User(id="u2", name="Grace", role="analyst",
                        team_ids=("t1",)))
    store.add_team(Team(id="t1", name="Data",
                        admin_ids=("u1",), member_ids=("u1", "u2")))
    for i in range(4):
        store.add_artifact(Artifact(
            id=f"a{i}", name=f"orders summary {i}",
            artifact_type="table" if i % 2 == 0 else "dashboard",
            owner_id="u1" if i < 2 else "u2",
            team_ids=("t1",), tags=("Sales",),
            description="monthly orders rollup",
        ))
    store.grant_badge("a0", "endorsed", "u1")
    store.grant_badge("a1", "endorsed", "u2")
    store.record("a0", "u2", "view")
    store.record("a0", "u2", "favorite")
    store.lineage.add_edge("a0", "a1", "derives")


class TestConformance:
    def test_entity_crud_and_duplicates(self, store):
        seed_store(store)
        assert len(store) == 4
        assert store.user_count == 2 and store.team_count == 1
        assert store.artifact("a2").owner_id == "u2"
        with pytest.raises(DuplicateEntityError):
            store.add_user(User(id="u1", name="Ada"))
        with pytest.raises(DuplicateEntityError):
            store.add_artifact(Artifact(id="a0", name="x",
                                        artifact_type="table"))
        assert store.resolve(["a1", "missing", "a3"]) == [
            store.artifact("a1"), store.artifact("a3")
        ]

    def test_secondary_indexes(self, store):
        seed_store(store)
        assert store.by_type(ArtifactType.TABLE) == ["a0", "a2"]
        assert store.by_type("dashboard") == ["a1", "a3"]
        assert store.by_owner("u1") == ["a0", "a1"]
        assert store.by_tag("sales") == ["a0", "a1", "a2", "a3"]
        assert store.by_team("t1") == ["a0", "a1", "a2", "a3"]
        assert store.by_badge("endorsed") == ["a0", "a1"]
        assert store.by_badge("endorsed", granted_by="u2") == ["a1"]
        assert store.badges_in_use() == ["endorsed"]
        assert store.tags_in_use() == ["sales"]

    def test_index_size_matches_bucket_lengths(self, store):
        seed_store(store)
        for kind, key in [("type", "table"), ("owner", "u1"),
                          ("badge", "endorsed"), ("tag", "Sales"),
                          ("team", "t1"), ("token", "ORDERS")]:
            lookup = {
                "type": store.by_type, "owner": store.by_owner,
                "badge": store.by_badge, "tag": store.by_tag,
                "team": store.by_team, "token": store.by_token,
            }[kind]
            assert store.index_size(kind, key) == len(lookup(key))
        assert store.index_size("type", "no-such-type") == 0
        assert store.index_size("nonsense", "x") == 0

    def test_search_tokens_is_conjunctive(self, store):
        seed_store(store)
        assert store.search_tokens(["orders", "summary"]) == [
            "a0", "a1", "a2", "a3"
        ]
        assert store.search_tokens(["orders", "3"]) == ["a3"]
        assert store.search_tokens(["orders", "absent"]) == []
        assert store.search_tokens([]) == []

    def test_usage_and_lineage(self, store):
        seed_store(store)
        assert store.usage_stats("a0").view_count == 1
        assert store.usage.favorites_of("u2") == ["a0"]
        assert store.usage.recent_for_user("u2") == ["a0"]
        assert len(store.usage) == 2
        assert sorted(store.lineage.downstream("a0")) == ["a1"]
        assert store.lineage.edge_count == 1

    def test_membership_queries(self, store):
        seed_store(store)
        assert store.find_user_by_name("ada").id == "u1"
        assert store.find_user_by_name("nobody") is None
        assert [t.id for t in store.teams_of("u2")] == ["t1"]

    def test_domain_versions_bump_per_domain(self, store):
        seed_store(store)
        before = store.domain_versions
        store.record("a1", "u1", "view")
        after = store.domain_versions
        assert after["usage"] == before["usage"] + 1
        assert after["entities"] == before["entities"]
        store.grant_badge("a2", "golden", "u1")
        bumped = store.domain_versions
        assert bumped["entities"] == after["entities"] + 1
        assert bumped["text"] == after["text"] + 1
        assert bumped["usage"] == after["usage"]

    def test_lineage_writes_bump_lineage_domain(self, store):
        seed_store(store)
        before = store.domain_version("lineage")
        store.lineage.add_edge("a1", "a2", "embeds")
        assert store.domain_version("lineage") == before + 1

    def test_clear_token_cache_bumps_text_domain(self, store):
        """Satellite fix: dropping memoised token sets is a text write."""
        seed_store(store)
        store.artifact_tokens("a0")  # populate the memo
        text_before = store.domain_version("text")
        total_before = store.version
        store.clear_token_cache()
        assert store.domain_version("text") == text_before + 1
        assert store.version == total_before + 1

    def test_filter_artifacts(self, store):
        seed_store(store)
        tables = store.filter_artifacts(
            lambda a: a.artifact_type is ArtifactType.TABLE
        )
        assert [a.id for a in tables] == ["a0", "a2"]


class TestSqlitePersistence:
    """Behaviour only the persistent backend has: durability and laziness."""

    def test_reload_matches_fresh_rebuild(self, tmp_path):
        """A reloaded store answers exactly like one rebuilt from scratch."""
        persistent = CatalogStore.open(tmp_path / "catalog.db")
        seed_store(persistent)
        persistent.close()

        rebuilt = CatalogStore()
        seed_store(rebuilt)

        reloaded = CatalogStore.open(tmp_path / "catalog.db")
        for tokens in (["orders"], ["orders", "summary"], ["orders", "0"]):
            assert reloaded.search_tokens(tokens) == \
                rebuilt.search_tokens(tokens)
        for kind, key in [("type", "table"), ("owner", "u2"),
                          ("badge", "endorsed"), ("tag", "sales"),
                          ("team", "t1"), ("token", "orders")]:
            assert reloaded.index_size(kind, key) == \
                rebuilt.index_size(kind, key), (kind, key)
        assert reloaded.artifact_ids() == rebuilt.artifact_ids()
        assert len(reloaded.usage) == len(rebuilt.usage)
        assert reloaded.lineage.edge_count == rebuilt.lineage.edge_count
        reloaded.close()

    def test_domain_versions_survive_restart(self, tmp_path):
        store = CatalogStore.open(tmp_path / "catalog.db")
        seed_store(store)
        versions, total = store.domain_versions, store.version
        store.close()
        reloaded = CatalogStore.open(tmp_path / "catalog.db")
        assert reloaded.domain_versions == versions
        assert reloaded.version == total
        reloaded.close()

    def test_clock_survives_restart(self, tmp_path):
        store = CatalogStore.open(tmp_path / "catalog.db")
        store.clock.advance(days=3)
        now = store.clock.now()
        store.close()
        reloaded = CatalogStore.open(tmp_path / "catalog.db")
        assert reloaded.clock.now() == now
        reloaded.close()

    def test_cold_start_stays_lazy(self, tmp_path):
        """Point queries against a reopened store hydrate only what they
        touch — entities and usage stay cold after a token search."""
        store = CatalogStore.open(tmp_path / "catalog.db")
        seed_store(store)
        store.close()
        reloaded = CatalogStore.open(tmp_path / "catalog.db")
        reloaded.search_tokens(["orders", "summary"])
        reloaded.index_size("type", "table")
        hydrated = reloaded.storage_info()["hydrated"]
        assert not hydrated["entities"]
        assert not hydrated["membership"]
        assert not hydrated["usage_stats"]
        assert not hydrated["usage_events"]
        assert not hydrated["lineage"]
        reloaded.close()

    def test_writes_before_flush_are_visible(self, tmp_path):
        store = CatalogStore.open(tmp_path / "catalog.db")
        seed_store(store)
        store.flush()
        store.add_artifact(Artifact(id="a9", name="orders extra",
                                    artifact_type="table", tags=("sales",)))
        # Unflushed writes must be visible through every read path.
        assert "a9" in store.search_tokens(["orders", "extra"])
        assert "a9" in store.by_tag("sales")
        assert store.index_size("token", "extra") == 1
        assert len(store) == 5
        store.close()

    def test_unknown_schema_version_fails_loudly(self, tmp_path):
        path = tmp_path / "catalog.db"
        store = CatalogStore.open(path)
        seed_store(store)
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute("PRAGMA user_version=99")
        with pytest.raises(CatalogError, match="schema version"):
            CatalogStore.open(path)

    def test_compact_preserves_content(self, tmp_path):
        store = CatalogStore.open(tmp_path / "catalog.db")
        seed_store(store)
        store.compact()
        assert store.search_tokens(["orders"]) == ["a0", "a1", "a2", "a3"]
        store.close()


# -- hypothesis: interleaved operations are backend-equivalent ----------------

_TOKENS = ("orders", "revenue", "churn", "daily", "raw")
_TAGS = ("sales", "finance", "ops")
_BADGES = ("endorsed", "golden")

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"),
                  st.integers(0, 14),
                  st.integers(0, len(_TOKENS) - 1),
                  st.integers(0, len(_TAGS) - 1)),
        st.tuples(st.just("badge"),
                  st.integers(0, 14),
                  st.integers(0, len(_BADGES) - 1)),
        st.tuples(st.just("view"), st.integers(0, 14)),
        st.tuples(st.just("edge"), st.integers(0, 14), st.integers(0, 14)),
    ),
    min_size=1,
    max_size=25,
)


def _apply(store, op):
    kind = op[0]
    if kind == "add":
        _, n, token_i, tag_i = op
        aid = f"a{n}"
        if not store.has_artifact(aid):
            store.add_artifact(Artifact(
                id=aid, name=f"{_TOKENS[token_i]} report {n}",
                artifact_type="table" if n % 2 == 0 else "dashboard",
                owner_id="u1", tags=(_TAGS[tag_i],),
            ))
    elif kind == "badge":
        _, n, badge_i = op
        if store.has_artifact(f"a{n}"):
            store.grant_badge(f"a{n}", _BADGES[badge_i], "u1")
    elif kind == "view":
        _, n = op
        if store.has_artifact(f"a{n}"):
            store.record(f"a{n}", "u1", "view")
    elif kind == "edge":
        _, src, dst = op
        if (src != dst and store.has_artifact(f"a{src}")
                and store.has_artifact(f"a{dst}")):
            store.lineage.add_edge(f"a{src}", f"a{dst}")


def _observe(store):
    return {
        "ids": store.artifact_ids(),
        "count": len(store),
        "tokens": {t: store.search_tokens([t]) for t in _TOKENS},
        "pairs": store.search_tokens(["report", _TOKENS[0]]),
        "tags": {t: store.by_tag(t) for t in _TAGS},
        "badges": {
            b: (store.by_badge(b), store.index_size("badge", b))
            for b in _BADGES
        },
        "types": (store.by_type("table"), store.by_type("dashboard")),
        "views": {a: store.usage_stats(a).view_count
                  for a in store.artifact_ids()},
        "events": len(store.usage),
        "edges": store.lineage.edge_count,
        "badge_names": store.badges_in_use(),
    }


class TestBackendEquivalence:
    @given(ops=_ops, split=st.integers(0, 25))
    @settings(max_examples=25, deadline=None)
    def test_interleaved_writes_read_identically(self, ops, split,
                                                 tmp_path_factory):
        """Any op sequence gives byte-identical reads on both backends,
        including across a close/reopen of the persistent one."""
        tmp_path = tmp_path_factory.mktemp("equiv")
        memory = CatalogStore()
        memory.add_user(User(id="u1", name="Ada"))
        sqlite_store = CatalogStore.open(tmp_path / "catalog.db")
        sqlite_store.add_user(User(id="u1", name="Ada"))

        head, tail = ops[:split], ops[split:]
        for op in head:
            _apply(memory, op)
            _apply(sqlite_store, op)
        sqlite_store.close()  # flush + restart mid-sequence
        sqlite_store = CatalogStore.open(tmp_path / "catalog.db")
        for op in tail:
            _apply(memory, op)
            _apply(sqlite_store, op)

        assert _observe(sqlite_store) == _observe(memory)
        sqlite_store.close()
