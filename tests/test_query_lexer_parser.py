"""Tests for the query lexer and parser."""

import pytest

from repro.core.query import lexer
from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    TextTerm,
    flatten_and,
    flatten_or,
)
from repro.core.query.lexer import tokenize_query
from repro.core.query.parser import parse_query
from repro.errors import QuerySyntaxError


def kinds(text):
    return [t.kind for t in tokenize_query(text)]


class TestLexer:
    def test_words_and_eof(self):
        assert kinds("hello world") == [lexer.WORD, lexer.WORD, lexer.EOF]

    def test_symbols(self):
        assert kinds("& | ! : ( )") == [
            lexer.AND, lexer.OR, lexer.NOT, lexer.COLON,
            lexer.LPAREN, lexer.RPAREN, lexer.EOF,
        ]

    def test_word_operators_case_insensitive(self):
        assert kinds("AND or Not") == [lexer.AND, lexer.OR, lexer.NOT,
                                       lexer.EOF]

    def test_quoted_strings(self):
        tokens = tokenize_query("'John Doe' \"sales data\"")
        assert tokens[0].kind == lexer.QUOTED
        assert tokens[0].value == "John Doe"
        assert tokens[1].value == "sales data"

    def test_quote_escapes(self):
        tokens = tokenize_query(r'"say \"hi\""')
        assert tokens[0].value == 'say "hi"'

    def test_unterminated_quote(self):
        with pytest.raises(QuerySyntaxError, match="unterminated"):
            tokenize_query("'oops")

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError, match="unexpected character"):
            tokenize_query("a @ b")

    def test_positions_recorded(self):
        tokens = tokenize_query("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_word_chars_include_dash_dot(self):
        tokens = tokenize_query("v1.2-beta")
        assert tokens[0].value == "v1.2-beta"


class TestParserTerms:
    def test_single_word(self):
        assert parse_query("sales") == TextTerm("sales")

    def test_quoted_text(self):
        assert parse_query("'John Doe'") == TextTerm("John Doe")

    def test_field_term(self):
        assert parse_query("type: table") == FieldTerm("type", "table")

    def test_field_term_quoted_value(self):
        assert parse_query("owned_by: 'Alex'") == FieldTerm("owned_by", "Alex")

    def test_spaced_field_name(self):
        assert parse_query("owned by: 'Alex'") == FieldTerm("owned_by", "Alex")
        assert parse_query("badged by: 'Mike'") == FieldTerm("badged_by", "Mike")

    def test_spaced_field_requires_joiner(self):
        # "sales type: table" must NOT become field "sales_type".
        node = parse_query("sales type: table")
        assert node == And((TextTerm("sales"), FieldTerm("type", "table")))

    def test_detached_colon_is_provider_call(self):
        node = parse_query("bit :recent_documents()")
        assert node == And((TextTerm("bit"),
                            ProviderCall("recent_documents")))

    def test_provider_call_no_arg(self):
        assert parse_query(":recents()") == ProviderCall("recents")

    def test_provider_call_with_arg(self):
        assert parse_query(":owned_by('Alex')") == ProviderCall(
            "owned_by", "Alex"
        )

    def test_field_without_value_errors(self):
        with pytest.raises(QuerySyntaxError, match="expected a value"):
            parse_query("type: &")

    def test_call_missing_paren_errors(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(":recents(")


class TestParserOperators:
    def test_explicit_and(self):
        assert parse_query("a & b") == And((TextTerm("a"), TextTerm("b")))

    def test_implicit_and(self):
        assert parse_query("a b") == And((TextTerm("a"), TextTerm("b")))

    def test_or(self):
        assert parse_query("a | b") == Or((TextTerm("a"), TextTerm("b")))

    def test_word_operators(self):
        assert parse_query("a and b or c") == Or((
            And((TextTerm("a"), TextTerm("b"))), TextTerm("c"),
        ))

    def test_precedence_and_over_or(self):
        node = parse_query("a & b | c & d")
        assert isinstance(node, Or)
        assert all(isinstance(child, And) for child in node.children)

    def test_not(self):
        assert parse_query("!a") == Not(TextTerm("a"))
        assert parse_query("not a") == Not(TextTerm("a"))

    def test_not_binds_tighter_than_and(self):
        node = parse_query("!a & b")
        assert node == And((Not(TextTerm("a")), TextTerm("b")))

    def test_brackets_override(self):
        node = parse_query("a & (b | c)")
        assert node == And((TextTerm("a"),
                            Or((TextTerm("b"), TextTerm("c")))))

    def test_nested_brackets(self):
        node = parse_query("((a))")
        assert node == TextTerm("a")

    def test_unclosed_bracket(self):
        with pytest.raises(QuerySyntaxError, match="closing bracket"):
            parse_query("(a | b")

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError, match="trailing"):
            parse_query("a )")

    def test_empty_query(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")

    def test_double_not(self):
        assert parse_query("!!a") == Not(Not(TextTerm("a")))


class TestPaperQueries:
    def test_flagship_intro_query(self):
        node = parse_query(
            "type: table owned by: 'Alex' badged: endorsed "
            "badged by: 'Mike' & 'sales'"
        )
        assert node == And((
            FieldTerm("type", "table"),
            FieldTerm("owned_by", "Alex"),
            FieldTerm("badged", "endorsed"),
            FieldTerm("badged_by", "Mike"),
            TextTerm("sales"),
        ))

    def test_prefix_language_example(self):
        node = parse_query(":recent_documents() & bit")
        assert node == And((ProviderCall("recent_documents"),
                            TextTerm("bit")))


class TestRoundTrip:
    CASES = [
        "sales",
        "type: table",
        "owned_by: Alex",
        'owned_by: "John Doe"',
        "a & b & c",
        "a | b",
        "!a",
        "a & (b | c)",
        "!(a & b)",
        ":recents()",
        ":owned_by(Alex)",
        "type: table & owned_by: Alex | sales",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_to_text_reparses_identically(self, text):
        node = parse_query(text)
        assert parse_query(node.to_text()) == node


class TestFlatteners:
    def test_flatten_and_unwraps_singleton(self):
        assert flatten_and([TextTerm("a")]) == TextTerm("a")

    def test_flatten_and_merges_nested(self):
        nested = And((TextTerm("a"), TextTerm("b")))
        node = flatten_and([nested, TextTerm("c")])
        assert node == And((TextTerm("a"), TextTerm("b"), TextTerm("c")))

    def test_flatten_or_merges_nested(self):
        nested = Or((TextTerm("a"), TextTerm("b")))
        node = flatten_or([nested, TextTerm("c")])
        assert node == Or((TextTerm("a"), TextTerm("b"), TextTerm("c")))

    def test_flatten_empty_raises(self):
        with pytest.raises(ValueError):
            flatten_and([])

    def test_iter_terms_order(self):
        node = parse_query("a & !(b | c) & type: table")
        terms = node.iter_terms()
        assert terms == [TextTerm("a"), TextTerm("b"), TextTerm("c"),
                         FieldTerm("type", "table")]
