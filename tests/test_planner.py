"""Cost-based planner tests.

The planner's core contract: estimates may be arbitrarily wrong, but the
*result* of a planned search is identical to naive left-to-right
evaluation — selectivity ordering, candidate filtering, Not-as-filter and
planned-empty skips only rearrange work.  The hypothesis property test
drives random query trees at both evaluators; the rest pins estimate
sources, skip accounting, plan explain output and the batch resolver's
snapshot invalidation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.query.ast import And, FieldTerm, Not, Or, TextTerm
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.query.planner import PlanNode, QueryPlanner
from repro.core.ranking import Ranker
from repro.providers.base import (
    ProviderRequest,
    ProviderResult,
    RequestContext,
    Representation,
    ScoredArtifact,
    estimates_with,
)
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import ExecutionEngine
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog


def _make_evaluator(store, planning: bool) -> QueryEvaluator:
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(store))
    evaluator = QueryEvaluator(
        store,
        registry,
        QueryLanguage(default_spec()),
        Ranker(FieldResolver(store)),
    )
    evaluator.planning = planning
    return evaluator


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(
        SynthConfig(seed=23, n_tables=60, usage_events=600)
    )


@pytest.fixture(scope="module")
def planned_eval(catalog):
    return _make_evaluator(catalog, planning=True)


@pytest.fixture(scope="module")
def naive_eval(catalog):
    return _make_evaluator(catalog, planning=False)


# -- planned == naive (property) ------------------------------------------


def _leaves(store):
    """Leaf strategies drawn from the catalog: hits, misses, text terms."""
    tags = store.tags_in_use()[:6] or ["sales"]
    badges = store.badges_in_use()[:4] or ["endorsed"]
    tokens = sorted(
        {tok for a in list(store.artifacts())[:20] for tok in a.name.split()}
    )[:8] or ["report"]
    field_terms = st.one_of(
        st.sampled_from(tags).map(lambda t: FieldTerm("tagged", t)),
        st.sampled_from(badges).map(lambda b: FieldTerm("badged", b)),
        st.sampled_from(["table", "workbook", "document"]).map(
            lambda t: FieldTerm("type", t)
        ),
        # Guaranteed-empty leaves exercise planned-empty short circuits.
        st.just(FieldTerm("tagged", "no-such-tag-xyzzy")),
    )
    text_terms = st.sampled_from(tokens).map(TextTerm)
    return st.one_of(field_terms, text_terms)


def _queries(store):
    leaves = _leaves(store)
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.lists(inner, min_size=2, max_size=3).map(
                lambda cs: And(tuple(cs))
            ),
            st.lists(inner, min_size=2, max_size=3).map(
                lambda cs: Or(tuple(cs))
            ),
            inner.map(Not),
        ),
        max_leaves=5,
    )


class TestPlannedMatchesNaive:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_same_results_and_ordering(self, planned_eval, naive_eval, data):
        """Planned evaluation returns the exact result set AND the exact
        ranked ordering of naive left-to-right evaluation."""
        node = data.draw(_queries(planned_eval.store))
        planned = planned_eval.search(node, limit=10_000)
        naive = naive_eval.search(node, limit=10_000)
        assert planned.total == naive.total
        assert planned.artifact_ids() == naive.artifact_ids()
        assert [e.score for e in planned.entries] == [
            e.score for e in naive.entries
        ]

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_top_k_head_matches(self, planned_eval, naive_eval, data):
        node = data.draw(_queries(planned_eval.store))
        assert (
            planned_eval.search(node, limit=7).artifact_ids()
            == naive_eval.search(node, limit=7).artifact_ids()
        )

    def test_lazy_top_k_matches_full_sort(self, planned_eval):
        """The heap-selected head is bit-identical to rank-all-then-cut."""
        evaluator = planned_eval
        store = evaluator.store
        ids = store.artifact_ids()
        weights = evaluator.language.spec.global_ranking
        ranker = evaluator.ranker
        full = ranker.rank_ids(ids, weights)
        lazy = ranker.top_k(ids, weights, 15)
        assert lazy == full[:15]


# -- estimate() sources ----------------------------------------------------


class TestEngineEstimate:
    def _engine(self, store):
        registry = EndpointRegistry()
        return registry, ExecutionEngine(registry, store=store)

    def test_no_hook_no_cache_is_unknown(self, catalog):
        registry, engine = self._engine(catalog)

        def endpoint(request):
            return ProviderResult(
                representation=Representation.LIST,
                items=(ScoredArtifact(artifact_id="a1"),),
            )

        registry.register("test://plain", endpoint)
        request = ProviderRequest()
        assert engine.estimate("test://plain", request) is None
        assert engine.stats.estimates == 0

    def test_cached_result_is_exact_and_free(self, catalog):
        registry, engine = self._engine(catalog)
        aid = catalog.artifact_ids()[0]

        def endpoint(request):
            return ProviderResult(
                representation=Representation.LIST,
                items=(ScoredArtifact(artifact_id=aid),),
            )

        registry.register("test://cached", endpoint)
        request = ProviderRequest()
        engine.fetch("test://cached", request)
        calls_before = engine.stats.total_calls
        assert engine.estimate("test://cached", request) == 1
        assert engine.stats.total_calls == calls_before  # no fetch happened
        assert engine.stats.estimates == 1

    def test_declared_estimator_hook_is_discovered(self, catalog):
        registry, engine = self._engine(catalog)

        @estimates_with(lambda request: 42)
        def endpoint(request):
            return ProviderResult(representation=Representation.LIST)

        registry.register("test://hooked", endpoint)
        assert engine.estimate("test://hooked", ProviderRequest()) == 42

    def test_broken_estimator_degrades_to_unknown(self, catalog):
        registry, engine = self._engine(catalog)

        def endpoint(request):
            return ProviderResult(representation=Representation.LIST)

        def boom(request):
            raise RuntimeError("estimator crashed")

        registry.register("test://broken", endpoint, estimator=boom)
        assert engine.estimate("test://broken", ProviderRequest()) is None

    def test_unknown_endpoint_is_unknown(self, catalog):
        _, engine = self._engine(catalog)
        assert engine.estimate("test://missing", ProviderRequest()) is None


# -- planned-empty skips and explain output --------------------------------


class TestPlannedSkips:
    def test_planned_empty_branch_skips_other_fetches(self, catalog):
        evaluator = _make_evaluator(catalog, planning=True)
        result = evaluator.search(
            "tagged: no-such-tag-xyzzy & type: table & badged: endorsed"
        )
        assert result.total == 0
        assert result.plan is not None
        assert result.plan.fetches_skipped == 2
        assert evaluator.engine.stats.fetches_skipped == 2
        # The zero-estimate leaf ran; the two skipped ones never fetched.
        assert evaluator.engine.stats.total_calls == 1
        rendered = result.plan.render()
        assert "SKIPPED" in rendered
        assert "2 fetch(es) skipped" in rendered

    def test_skip_accounting_lands_in_snapshot(self, catalog):
        evaluator = _make_evaluator(catalog, planning=True)
        evaluator.search("tagged: no-such-tag-xyzzy & badged: endorsed")
        snapshot = evaluator.engine.stats.snapshot()
        assert snapshot["totals"]["fetches_skipped"] == 1
        assert snapshot["totals"]["estimates"] >= 1

    def test_selective_branch_runs_first(self, catalog):
        evaluator = _make_evaluator(catalog, planning=True)
        tag = catalog.tags_in_use()[0]
        result = evaluator.search(f"type: table & tagged: {tag}")
        plan = result.plan.root
        by_label = {child.label: child for child in plan.children}
        tagged = by_label[f"tagged: {tag}"]
        typed = by_label["type: table"]
        assert tagged.estimated == catalog.index_size("tag", tag)
        assert typed.estimated == catalog.index_size("type", "table")
        if tagged.estimated < typed.estimated:
            assert tagged.order < typed.order

    def test_not_branch_ordered_last_and_applied_as_filter(self, catalog):
        evaluator = _make_evaluator(catalog, planning=True)
        naive = _make_evaluator(catalog, planning=False)
        query = "!badged: deprecated & type: table"
        planned_result = evaluator.search(query, limit=10_000)
        not_plan = next(
            child
            for child in planned_result.plan.root.children
            if child.kind == "not"
        )
        other = next(
            child
            for child in planned_result.plan.root.children
            if child.kind != "not"
        )
        assert not_plan.order > other.order
        assert not_plan.note == "filter"
        assert planned_result.artifact_ids() == naive.search(
            query, limit=10_000
        ).artifact_ids()

    def test_planning_toggle_drops_plan(self, catalog):
        evaluator = _make_evaluator(catalog, planning=False)
        assert evaluator.search("type: table").plan is None


class TestExecutionOrder:
    def test_known_unknown_not_tiers(self):
        plans = [
            PlanNode(label="u", kind="call", estimated=None),
            PlanNode(label="big", kind="field", estimated=500),
            PlanNode(label="neg", kind="not", estimated=10),
            PlanNode(label="small", kind="field", estimated=3),
        ]
        assert QueryPlanner.execution_order(plans) == [3, 1, 0, 2]

    def test_ties_keep_source_order(self):
        plans = [
            PlanNode(label="a", kind="field", estimated=5),
            PlanNode(label="b", kind="field", estimated=5),
        ]
        assert QueryPlanner.execution_order(plans) == [0, 1]


# -- batch resolver snapshot ------------------------------------------------


class TestValuesBatchSnapshot:
    def test_matches_scalar_path(self, catalog):
        resolver = FieldResolver(catalog)
        ids = catalog.artifact_ids()[:30]
        fields = ["views", "recency", "favorite", "freshness", "endorsed"]
        columns = resolver.values_batch(ids, fields)
        for field in fields:
            expected = [resolver.value(aid, field) for aid in ids]
            assert columns[field] == expected, field

    def test_snapshot_invalidates_on_usage_write(self, catalog):
        resolver = FieldResolver(catalog)
        aid = catalog.artifact_ids()[0]
        user = catalog.users()[0].id
        before = resolver.values_batch([aid], ["views"])["views"][0]
        catalog.record(aid, user, "view")
        after = resolver.values_batch([aid], ["views"])["views"][0]
        assert after == before + 1

    def test_custom_resolver_overrides_snapshot(self, catalog):
        resolver = FieldResolver(catalog)
        aid = catalog.artifact_ids()[0]
        resolver.register("views", lambda _aid: 123.0)
        assert resolver.values_batch([aid], ["views"])["views"] == [123.0]
