"""Robustness tests: seeds, scale extremes, degenerate catalogs."""

import pytest

from repro.catalog.store import CatalogStore
from repro.core.render import render_screen_text
from repro.study.executor import run_study
from repro.synth import SynthConfig, generate_catalog
from repro.workbook.app import WorkbookApp


class TestStudyAcrossSeeds:
    @pytest.mark.parametrize("seed", [1, 2, 3, 11, 42])
    def test_all_tasks_complete_for_any_seed(self, seed):
        run = run_study(seed=seed)
        failures = [o for o in run.outcomes if not o.completed]
        assert failures == []


class TestDegenerateCatalogs:
    def test_empty_catalog_interface(self):
        from repro.catalog.model import User

        store = CatalogStore()
        store.add_user(User(id="u", name="Solo"))
        app = WorkbookApp(store)
        session = app.session("u")
        tabs = session.open_home()
        # every generated tab on an empty catalog is empty but valid
        for tab in tabs:
            assert tab.view.count() == 0
        result = session.search("anything at all")
        assert result.is_empty()
        assert session.suggest("") != []  # fields still suggested

    def test_single_artifact_catalog(self):
        from repro.catalog.model import Artifact, User

        store = CatalogStore()
        store.add_user(User(id="u", name="Solo"))
        store.add_artifact(Artifact(id="a", name="ONLY_TABLE",
                                    artifact_type="table", owner_id="u",
                                    created_at=1.0))
        app = WorkbookApp(store)
        session = app.session("u")
        session.open_home()
        result = session.search("only table")
        assert result.artifact_ids() == ["a"]
        session.select_artifact("a")
        # exploring the lone artifact finds nothing similar — no crash
        surfaced = session.explore_selection()
        for view in surfaced:
            assert not view.view.is_empty()

    def test_minimal_synth_config(self):
        store = generate_catalog(SynthConfig(seed=1, n_users=1, n_teams=1,
                                             n_tables=1, n_dashboards=0,
                                             n_workbooks=0, n_documents=0,
                                             usage_events=5))
        app = WorkbookApp(store)
        session = app.session(store.users()[0].id)
        assert session.open_home() is not None


class TestScreenRenderer:
    def test_full_figure7_screen(self, study_app):
        session = study_app.session("user-alex")
        session.open_home()
        session.select_artifact("table-airlines")
        screen = render_screen_text(session, query="badged: endorsed")
        assert "search> badged: endorsed" in screen
        assert "AIRLINES" in screen  # preview pane
        assert "Recents" in screen  # tab strip

    def test_screen_before_home(self, study_app):
        session = study_app.session("user-alex")
        screen = render_screen_text(session)
        assert "no views" in screen

    def test_screen_without_selection(self, study_app):
        session = study_app.session("user-alex")
        session.open_home()
        screen = render_screen_text(session)
        assert "┌─" not in screen  # no preview box


class TestUnicodeAndOddNames:
    def test_unicode_artifact_names(self):
        from repro.catalog.model import Artifact, User

        store = CatalogStore()
        store.add_user(User(id="u", name="Ünal Çağatay"))
        store.add_artifact(Artifact(id="a", name="VERKÄUFE_2024",
                                    artifact_type="table", owner_id="u",
                                    description="Umsätze für Q1 — naïve",
                                    created_at=1.0))
        app = WorkbookApp(store)
        result, view = app.interface.search("verkäufe")
        # tokenizer is ascii-alnum; umlauts split words but search still
        # finds the artifact via its ascii fragments
        result2, _ = app.interface.search("2024")
        assert "a" in result2.artifact_ids()
        from repro.core.render import render_view_html

        html = render_view_html(view)
        assert html  # renders without encoding errors

    def test_quoted_value_with_spaces_everywhere(self, study_app):
        result, _ = study_app.interface.search('owned_by: "John Doe"')
        assert result.total == 4  # 3 workbooks + 1 dashboard
