"""Chaos tests: random fault schedules never corrupt healthy output.

The resilience acceptance bar, as a property: inject an arbitrary mix of
failing providers and (a) the interface still generates, (b) every view
backed by a *healthy* provider is byte-identical to a no-fault run,
(c) every affected section carries an explicit degraded/stale marker —
no silent degradation anywhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interface.discovery import DiscoveryInterface
from repro.core.render import render_view_text
from repro.errors import ProviderError
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    FetchStatus,
)
from repro.providers.faults import FailNTimesEndpoint, FlakyEndpoint
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.util.clock import SimulationClock
from repro.workbook.app import WorkbookApp
from tests.conftest import build_tiny_store

_STORE = build_tiny_store()
_SPEC = default_spec()

#: Overview providers needing no selection-derived input — the fan-out a
#: chaos schedule perturbs.  Name -> endpoint, spec order.
_FAULTABLE = {
    provider.name: provider.endpoint
    for provider in _SPEC.providers
    if provider.visibility.overview and not provider.required_inputs()
}

_MODES = ("ok", "fail_always", "fail_first")


def _make_app(faults: dict[str, str]) -> WorkbookApp:
    """A workbook over the shared store with *faults* injected.

    ``faults`` maps endpoint URI -> mode.  Faulted endpoints also get a
    hair-trigger breaker so a single chaos round exercises it.
    """
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(_STORE))
    policy = ExecutionPolicy.defaults()
    for endpoint, mode in faults.items():
        if mode == "ok":
            continue
        original = registry.resolve(endpoint)
        if mode == "fail_always":
            wrapped = FlakyEndpoint(original, fail_on=lambda i: True,
                                    name=endpoint)
        else:
            wrapped = FailNTimesEndpoint(original, fail_count=1,
                                         name=endpoint)
        registry.register(endpoint, wrapped, replace=True)
        policy = policy.for_endpoint(endpoint, breaker_failure_threshold=1)
    return WorkbookApp(_STORE, registry=registry, policy=policy)


def _baseline_tabs() -> dict[str, str]:
    with _make_app({}) as app:
        return {
            tab.provider_name: render_view_text(tab.view)
            for tab in app.interface.overview_tabs(user_id="u-ann")
        }


_BASELINE = _baseline_tabs()

fault_schedules = st.fixed_dictionaries(
    {endpoint: st.sampled_from(_MODES) for endpoint in _FAULTABLE.values()}
)


class TestOverviewChaos:
    @given(faults=fault_schedules)
    @settings(max_examples=20, deadline=None)
    def test_healthy_tabs_byte_identical_and_faults_flagged(self, faults):
        faulty = {
            name for name, endpoint in _FAULTABLE.items()
            if faults[endpoint] != "ok"
        }
        with _make_app(faults) as app:
            tabs = app.interface.overview_tabs(user_id="u-ann")
            by_name = {tab.provider_name: tab for tab in tabs}

            for name, text in _BASELINE.items():
                if name in faulty:
                    # a broken provider loses its tab, never shows junk
                    assert name not in by_name
                else:
                    # healthy providers are untouched by their broken
                    # neighbours: byte-identical rendering
                    assert render_view_text(by_name[name].view) == text

            # every fault is explicitly reported, and only faults are
            marked = {
                marker.provider
                for marker in app.interface.last_health
                if marker.degraded
            }
            assert faulty <= marked
            assert app.interface.degraded == bool(faulty)

            # zero unflagged degradation: nothing cached in a fresh app,
            # so no tab may claim staleness and every surviving tab is
            # a fresh one
            for tab in tabs:
                assert not tab.view.stale
                if tab.provider_name not in faulty:
                    assert not tab.view.degraded


class TestSearchDegradation:
    QUERY = "badged: endorsed | type: table"

    def test_open_breaker_search_returns_healthy_leaves_flagged(self):
        with _make_app({}) as clean:
            expected = {
                entry.artifact_id
                for entry in clean.interface.search(
                    "type: table", user_id="u-ann"
                )[0].entries
            }
        faults = {"catalog://badged": "fail_always"}
        with _make_app(faults) as app:
            # first evaluation hits the live failure: pre-resilience
            # contract, the error surfaces (and trips the breaker)
            with pytest.raises(ProviderError):
                app.interface.search(self.QUERY, user_id="u-ann")
            result, view = app.interface.search(self.QUERY, user_id="u-ann")
            assert result.degraded
            assert any(
                marker.endpoint == "catalog://badged"
                and marker.status == FetchStatus.SKIPPED.value
                for marker in result.health
            )
            # the healthy leaf still answers, correctly and completely
            assert {e.artifact_id for e in result.entries} == expected
            assert view.degraded and not view.stale
            assert "badged" in view.notice

    def test_recovered_endpoint_clears_degradation(self):
        faults = {"catalog://most_viewed": "fail_first"}
        with _make_app(faults) as app:
            app.interface.overview_tabs(user_id="u-ann")
            assert app.interface.degraded
            # breaker opened on the single failure; wait out the reset
            # window, then the half-open probe hits the recovered endpoint
            engine = app.engine
            original_timer = engine._timer
            offset = ExecutionPolicy.defaults().breaker.reset_timeout_s + 1
            engine._timer = lambda: original_timer() + offset
            tabs = app.interface.overview_tabs(user_id="u-ann")
            assert not app.interface.degraded
            assert "most_viewed" in {tab.provider_name for tab in tabs}


class TestStaleSearch:
    def _interface(self):
        registry = EndpointRegistry()
        install_builtin_endpoints(registry, BuiltinProviders(_STORE))
        original = registry.resolve("catalog://badged")
        flaky = FlakyEndpoint(original, fail_on=lambda i: i > 1,
                              name="badged")
        registry.register("catalog://badged", flaky, replace=True)
        clock = SimulationClock()
        engine = ExecutionEngine(
            registry,
            store=_STORE,
            clock=clock,
            policy=ExecutionPolicy.defaults().for_endpoint(
                "catalog://badged", breaker_failure_threshold=1
            ),
        )
        return DiscoveryInterface(
            store=_STORE, registry=registry, spec=_SPEC, engine=engine
        ), clock

    def test_stale_members_served_and_flagged(self):
        interface, clock = self._interface()
        fresh, _ = interface.search("badged: endorsed")
        assert not fresh.degraded
        fresh_ids = {entry.artifact_id for entry in fresh.entries}

        clock.advance(seconds=ExecutionPolicy.defaults().cache.ttl_s + 1)
        # the revalidation fetch fails live (pre-resilience contract:
        # the error surfaces) and trips the hair-trigger breaker ...
        with pytest.raises(ProviderError):
            interface.search("badged: endorsed")
        # ... so the next search serves the expired entry, marked stale
        result, view = interface.search("badged: endorsed")
        assert result.degraded
        assert {entry.artifact_id for entry in result.entries} == fresh_ids
        assert any(
            marker.status == FetchStatus.STALE.value
            for marker in result.health
        )
        assert view.stale and view.degraded
        assert "STALE" in render_view_text(view)
        assert interface.engine.stats.stale_served >= 1


class TestExplorationDegradation:
    def test_broken_provider_loses_its_panel_with_marker(self):
        with _make_app({}) as clean:
            baseline = {
                surfaced.provider_name
                for surfaced in clean.exploration.explore(
                    "t-orders", user_id="u-ann"
                )
            }
        assert "owned_by" in baseline  # the panel the fault will remove
        faults = {"catalog://owned_by": "fail_always"}
        with _make_app(faults) as app:
            surfaced = app.exploration.explore("t-orders", user_id="u-ann")
            names = {view.provider_name for view in surfaced}
            assert "owned_by" not in names
            assert baseline - {"owned_by"} <= names
            assert any(
                marker.provider == "owned_by" and marker.degraded
                for marker in app.exploration.last_health
            )
