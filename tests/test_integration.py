"""Integration tests: whole-system flows reproducing the paper's scenarios."""

import pytest

from repro import (
    ProviderRequest,
    ProviderResult,
    Representation,
    WorkbookApp,
    study_catalog,
)
from repro.core.render import render_tabs_text, render_view_text
from repro.core.spec import diff_specs
from repro.core.spec.model import ProviderSpec, Visibility
from repro.providers.base import ScoredArtifact


class TestPaperFlagshipQuery:
    """Section 1: 'find the tables created by Alex and endorsed by Mike
    that contain sales numbers'."""

    def test_flagship_query_finds_exactly_the_target(self, study_app):
        session = study_app.session("user-alex")
        result = session.search(
            "type: table owned by: 'Alex' badged: endorsed "
            "badged by: 'Mike' & 'sales'"
        )
        names = [study_app.store.artifact(a).name
                 for a in result.artifact_ids()]
        assert names == ["SALES_NUMBERS"]

    def test_each_constraint_widens_without_it(self, study_app):
        session = study_app.session("user-alex")
        full = session.search(
            "type: table owned_by: 'Alex' badged: endorsed "
            "badged_by: 'Mike' & 'sales'"
        ).total
        without_type = session.search(
            "owned_by: 'Alex' badged: endorsed badged_by: 'Mike'"
        ).total
        assert without_type >= full

    def test_prefix_language_example(self, study_app):
        session = study_app.session("user-john")
        study_app.store.record("workbook-john-1", "user-john", "view")
        result = session.search(":recent_documents()")
        assert "workbook-john-1" in result.artifact_ids()


class TestSpecEvolutionFlow:
    """Section 1: adding an ML provider is 'a matter of adding a few lines
    of specification'."""

    def test_add_provider_end_to_end(self, study_app):
        store = study_app.store

        def quality_model(request: ProviderRequest) -> ProviderResult:
            items = [
                ScoredArtifact(aid, score=float(len(aid)))
                for aid in store.by_type("table")[: request.context.limit]
            ]
            return ProviderResult(
                representation=Representation.LIST, items=tuple(items)
            )

        study_app.registry.register("model://quality", quality_model)
        old_spec = study_app.spec
        new_spec = old_spec.with_provider(ProviderSpec(
            name="quality_scores",
            endpoint="model://quality",
            representation="list",
            category="relatedness",
            title="Quality Scores",
        ))
        diff = diff_specs(old_spec, new_spec)
        assert diff.added == ("quality_scores",)
        assert diff.touched_elements() == 1

        study_app.update_spec(new_spec)
        session = study_app.session("user-alex")
        tabs = session.open_home()
        assert "quality_scores" in [t.provider_name for t in tabs]
        result = session.search(":quality_scores()")
        assert result.total > 0
        # autocomplete knows the new field immediately
        texts = [s.text for s in session.suggest("qual")]
        assert "quality_scores: " in texts

    def test_remove_provider_cleans_everything(self, study_app):
        study_app.update_spec(study_app.spec.without_provider("recents"))
        session = study_app.session("user-alex")
        assert "recents" not in [
            t.provider_name for t in session.open_home()
        ]
        assert "recents" not in study_app.interface.language.field_names()

    def test_ranking_retune_without_code(self, study_app):
        from repro.core.spec.model import RankingWeight

        session = study_app.session("user-alex")
        before = session.search("type: table", limit=5).artifact_ids()
        retuned = study_app.spec.with_global_ranking(
            RankingWeight("freshness", 1000.0)
        )
        study_app.update_spec(retuned)
        session2 = study_app.session("user-alex")
        after = session2.search("type: table", limit=5).artifact_ids()
        assert before != after  # ordering policy changed, spec-only edit


class TestFigure6AllViews:
    """All six view types generate from one catalog (Figure 6)."""

    def test_all_representations_reachable(self, study_app):
        session = study_app.session("user-alex")
        seen = {t.view.representation for t in session.open_home()}
        session.select_artifact("table-airlines")
        seen |= {s.view.representation for s in session.explore_selection()}
        assert seen == {"tiles", "list", "hierarchy", "graph",
                        "categories", "embedding"}

    def test_all_views_render_text(self, study_app):
        session = study_app.session("user-alex")
        tabs = session.open_home()
        text = render_tabs_text(tabs)
        assert text
        session.select_artifact("table-airlines")
        for surfaced in session.explore_selection():
            assert render_view_text(surfaced.view)


class TestSearchFilterComposition:
    """Section 5.3: same query machinery searches globally and filters
    any view."""

    def test_filter_is_search_restricted_to_view(self, study_app):
        session = study_app.session("user-alex")
        session.open_home()
        tab = session.select_tab("Type")
        view_ids = set(tab.view.artifact_ids())
        global_hits = set(
            session.search("tagged: travel", limit=1000).artifact_ids()
        )
        session.select_tab("Type")
        filtered = session.filter_active_view("tagged: travel")
        assert set(filtered.artifact_ids()) == view_ids & global_hits

    def test_graph_view_filterable(self, study_app):
        """§6.4: keyword search can filter the joinability graph."""
        interface = study_app.interface
        view = interface.open_view(
            "joinable", inputs={"artifact": "table-airlines"}
        )
        filtered = interface.filter_view(view, "airlines | airports")
        assert set(filtered.artifact_ids()) <= set(view.artifact_ids())
        assert "table-airlines" in filtered.artifact_ids()


class TestPersistedCatalogIntegration:
    def test_interface_on_reloaded_catalog(self, tmp_path):
        from repro.catalog.persistence import load_catalog, save_catalog

        store = study_catalog()
        path = save_catalog(store, tmp_path / "catalog.json")
        app = WorkbookApp(load_catalog(path))
        session = app.session("user-alex")
        result = session.search("badged: endorsed AIRLINES")
        assert "table-airlines" in result.artifact_ids()


class TestCustomizationIsolation:
    def test_user_customization_does_not_leak(self, study_app):
        alice = study_app.session("user-alex")
        alice.hide_provider("most_viewed")
        mike = study_app.session("user-mike")
        mike_tabs = [t.provider_name for t in mike.open_home()]
        alex_tabs = [t.provider_name for t in alice.open_browse()]
        assert "most_viewed" in mike_tabs
        assert "most_viewed" not in alex_tabs
