"""Tests for the built-in provider suite against the tiny catalog."""

import pytest

from repro.errors import MissingInputError
from repro.providers.base import ProviderRequest, Representation, RequestContext
from repro.providers.builtin import group_ids_by


def req(inputs=None, user="", team="", limit=20):
    return ProviderRequest(
        inputs=dict(inputs or {}),
        context=RequestContext(user_id=user, team_id=team, limit=limit),
    )


class TestInteractionProviders:
    def test_recents_user_specific(self, tiny_providers):
        result = tiny_providers.recents(req(user="u-dee"))
        assert result.artifact_ids() == ["w-q1", "d-sales"]

    def test_recents_unknown_user_empty(self, tiny_providers):
        assert tiny_providers.recents(req(user="ghost")).is_empty()

    def test_most_viewed_is_tiles_sorted(self, tiny_providers):
        result = tiny_providers.most_viewed(req())
        assert result.representation is Representation.TILES
        assert result.artifact_ids()[0] == "t-orders"

    def test_newest_ordering(self, tiny_providers):
        result = tiny_providers.newest(req(limit=3))
        assert result.artifact_ids()[0] == "w-q1"  # created last

    def test_favorites(self, tiny_providers):
        result = tiny_providers.favorites(req(user="u-ann"))
        assert result.artifact_ids() == ["t-orders"]

    def test_recent_documents_filters_types(self, tiny_providers, tiny_store):
        result = tiny_providers.recent_documents(req(user="u-dee"))
        ids = result.artifact_ids()
        assert ids == ["w-q1"]  # dashboard d-sales excluded

    def test_limit_respected(self, tiny_providers):
        result = tiny_providers.newest(req(limit=2))
        assert len(result.artifact_ids()) == 2


class TestAnnotationProviders:
    def test_owned_by_display_name(self, tiny_providers):
        result = tiny_providers.owned_by(req({"user": "Ann Lee"}))
        assert set(result.artifact_ids()) == {"t-orders", "v-orders"}

    def test_owned_by_user_id(self, tiny_providers):
        result = tiny_providers.owned_by(req({"user": "u-ann"}))
        assert set(result.artifact_ids()) == {"t-orders", "v-orders"}

    def test_owned_by_first_name_if_unique(self, tiny_providers):
        result = tiny_providers.owned_by(req({"user": "Bob"}))
        assert "t-customers" in result.artifact_ids()

    def test_owned_by_unresolvable_empty(self, tiny_providers):
        assert tiny_providers.owned_by(req({"user": "Nobody"})).is_empty()

    def test_owned_by_missing_input_raises(self, tiny_providers):
        with pytest.raises(MissingInputError):
            tiny_providers.owned_by(req())

    def test_of_type(self, tiny_providers):
        result = tiny_providers.of_type(req({"artifact_type": "workbook"}))
        assert result.artifact_ids() == ["w-q1"]

    def test_of_type_invalid_empty(self, tiny_providers):
        assert tiny_providers.of_type(req({"artifact_type": "blob"})).is_empty()

    def test_types_categories(self, tiny_providers):
        result = tiny_providers.types(req())
        assert result.representation is Representation.CATEGORIES
        by_name = {c.name: c.count for c in result.categories}
        assert by_name["table"] == 3
        assert "document" not in by_name  # empty types omitted

    def test_badges_categories(self, tiny_providers):
        result = tiny_providers.badges(req())
        names = [c.name for c in result.categories]
        assert set(names) == {"endorsed", "certified"}

    def test_badged(self, tiny_providers):
        result = tiny_providers.badged(req({"badge": "endorsed"}))
        assert set(result.artifact_ids()) == {"t-orders", "d-sales"}

    def test_badged_case_insensitive(self, tiny_providers):
        result = tiny_providers.badged(req({"badge": "ENDORSED"}))
        assert result.artifact_ids()

    def test_badged_by(self, tiny_providers):
        result = tiny_providers.badged_by(req({"user": "Bob Ray"}))
        assert set(result.artifact_ids()) == {"t-orders", "t-customers"}

    def test_tagged(self, tiny_providers):
        result = tiny_providers.tagged(req({"text": "crm"}))
        assert result.artifact_ids() == ["t-customers"]

    def test_items_carry_rankable_fields(self, tiny_providers):
        result = tiny_providers.badged(req({"badge": "endorsed"}))
        for item in result.items:
            assert "views" in item.fields
            assert "favorite" in item.fields


class TestTeamProviders:
    def test_team_docs(self, tiny_providers):
        result = tiny_providers.team_docs(req({"team": "t-2"}))
        assert set(result.artifact_ids()) == {"t-web", "w-q1"}

    def test_team_docs_by_name(self, tiny_providers):
        result = tiny_providers.team_docs(req({"team": "Beta"}))
        assert set(result.artifact_ids()) == {"t-web", "w-q1"}

    def test_team_from_context(self, tiny_providers):
        result = tiny_providers.team_docs(req(team="t-1"))
        assert "t-orders" in result.artifact_ids()

    def test_team_popular_restricted_to_members(self, tiny_providers):
        result = tiny_providers.team_popular(req({"team": "t-2"}))
        ids = result.artifact_ids()
        # u-dee viewed d-sales; u-cyd viewed nothing
        assert "d-sales" in ids
        assert "t-customers" not in ids

    def test_team_missing_raises(self, tiny_providers):
        with pytest.raises(MissingInputError):
            tiny_providers.team_popular(req())

    def test_unknown_team_empty(self, tiny_providers):
        assert tiny_providers.team_docs(req({"team": "Gamma"})).is_empty()


class TestRelatednessProviders:
    def test_joinable_graph(self, tiny_providers):
        result = tiny_providers.joinable(req({"artifact": "t-orders"}))
        assert result.representation is Representation.GRAPH
        assert "t-customers" in result.nodes
        assert any("customer_id" in e.label for e in result.edges)

    def test_joinable_unknown_artifact_empty_graph(self, tiny_providers):
        result = tiny_providers.joinable(req({"artifact": "ghost"}))
        assert result.nodes == ()

    def test_lineage_hierarchy(self, tiny_providers):
        result = tiny_providers.lineage(req({"artifact": "t-orders"}))
        assert result.representation is Representation.HIERARCHY
        root = result.roots[0]
        assert root.artifact_id == "t-orders"
        assert root.depth() == 3  # orders -> chart -> dashboard

    def test_lineage_graph_both_directions(self, tiny_providers):
        result = tiny_providers.lineage_graph(req({"artifact": "v-orders"}))
        assert set(result.nodes) >= {"t-orders", "v-orders", "d-sales"}

    def test_similar_excludes_missing(self, tiny_providers):
        result = tiny_providers.similar(req({"artifact": "t-orders"}))
        ids = result.artifact_ids()
        assert "t-orders" not in ids
        assert ids  # finds related artifacts

    def test_similar_requires_artifact(self, tiny_providers):
        with pytest.raises(MissingInputError):
            tiny_providers.similar(req())

    def test_embedding_map_covers_catalog(self, tiny_providers, tiny_store):
        result = tiny_providers.embedding_map(req())
        assert len(result.points) == tiny_store.artifact_count


class TestGroupIdsBy:
    def test_group_by_owner(self, tiny_store):
        categories = group_ids_by(
            tiny_store, tiny_store.artifact_ids(), "owner"
        )
        by_name = {c.name: set(c.artifact_ids) for c in categories}
        assert by_name["u-ann"] == {"t-orders", "v-orders"}

    def test_group_by_multivalue_field(self, tiny_store):
        categories = group_ids_by(
            tiny_store, tiny_store.artifact_ids(), "tags"
        )
        by_name = {c.name: set(c.artifact_ids) for c in categories}
        assert "t-customers" in by_name["crm"]
        assert len(by_name["sales"]) == 5

    def test_skips_missing_artifacts(self, tiny_store):
        categories = group_ids_by(tiny_store, ["ghost", "t-web"], "type")
        assert [c.name for c in categories] == ["table"]
