"""Property-based tests for view filtering invariants.

For every view type: ``filtered(S)`` shows a subset of the original
artifacts, only artifacts in ``S``, is idempotent, and filtering with
the full id set loses nothing (except hierarchy nodes kept only as
ancestors, which by construction are already in the set).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import Ranker
from repro.core.views.factory import ViewFactory
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.builtin import BuiltinProviders
from repro.providers.fields import FieldResolver
from repro.providers.suite import default_spec
from tests.conftest import build_tiny_store

_STORE = build_tiny_store()
_PROVIDERS = BuiltinProviders(_STORE)
_SPEC = default_spec()
_FACTORY = ViewFactory(_STORE, _SPEC, Ranker(FieldResolver(_STORE)))


def _build(name, inputs=None, user=""):
    request = ProviderRequest(
        inputs=dict(inputs or {}),
        context=RequestContext(user_id=user, limit=50),
    )
    result = _PROVIDERS.endpoints()[name](request)
    return _FACTORY.build(_SPEC.provider(name), result,
                          inputs=dict(inputs or {}))


_VIEWS = {
    "list": _build("of_type", {"artifact_type": "table"}),
    "tiles": _build("most_viewed"),
    "hierarchy": _build("lineage", {"artifact": "t-orders"}),
    "graph": _build("joinable", {"artifact": "t-orders"}),
    "categories": _build("types"),
    "embedding": _build("embedding_map"),
}

_ALL_IDS = sorted(_STORE.artifact_ids())

id_subsets = st.sets(st.sampled_from(_ALL_IDS))


@pytest.mark.parametrize("view_kind", sorted(_VIEWS))
class TestFilterInvariants:
    @given(allowed=id_subsets)
    @settings(max_examples=30, deadline=None)
    def test_filtered_is_subset_of_original(self, view_kind, allowed):
        view = _VIEWS[view_kind]
        filtered = view.filtered(allowed)
        assert set(filtered.artifact_ids()) <= set(view.artifact_ids())

    @given(allowed=id_subsets)
    @settings(max_examples=30, deadline=None)
    def test_filtered_only_contains_allowed(self, view_kind, allowed):
        view = _VIEWS[view_kind]
        filtered = view.filtered(allowed)
        if view_kind == "hierarchy":
            # ancestors of allowed nodes survive to keep paths navigable
            survivors = set(filtered.artifact_ids())
            leaves_allowed = survivors & allowed
            extra = survivors - allowed
            # every extra node must be an ancestor of some allowed node
            for node in extra:
                descendants = set(_STORE.lineage.downstream(node))
                assert descendants & leaves_allowed, node
        else:
            assert set(filtered.artifact_ids()) <= allowed

    @given(allowed=id_subsets)
    @settings(max_examples=30, deadline=None)
    def test_filtering_is_idempotent(self, view_kind, allowed):
        view = _VIEWS[view_kind]
        once = view.filtered(allowed)
        twice = once.filtered(allowed)
        assert once.artifact_ids() == twice.artifact_ids()

    def test_full_set_preserves_content(self, view_kind):
        view = _VIEWS[view_kind]
        filtered = view.filtered(set(_ALL_IDS))
        assert filtered.artifact_ids() == view.artifact_ids()

    def test_empty_set_empties_view(self, view_kind):
        view = _VIEWS[view_kind]
        assert view.filtered(set()).artifact_ids() == []

    @given(a=id_subsets, b=id_subsets)
    @settings(max_examples=20, deadline=None)
    def test_sequential_filters_compose_like_intersection(self, view_kind,
                                                          a, b):
        if view_kind == "hierarchy":
            # ancestor-preservation makes tree filtering non-compositional
            # by design; skip.
            return
        view = _VIEWS[view_kind]
        sequential = view.filtered(a).filtered(b)
        direct = view.filtered(a & b)
        assert sequential.artifact_ids() == direct.artifact_ids()
